//! A from-scratch implementation of the Porter stemming algorithm.
//!
//! Follows M.F. Porter, *An algorithm for suffix stripping*, Program 14(3),
//! 1980 — the classic five-step suffix-stripping procedure used by the
//! paper's linguistic pre-processing stage. Input is expected to be a
//! lowercase ASCII word; non-alphabetic inputs are returned unchanged.

/// Stems an English word with the Porter algorithm.
///
/// ```
/// use xsdf_lingproc::porter_stem;
/// assert_eq!(porter_stem("caresses"), "caress");
/// assert_eq!(porter_stem("ponies"), "poni");
/// assert_eq!(porter_stem("relational"), "relat");
/// assert_eq!(porter_stem("directing"), "direct");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w: Vec<u8> = word.bytes().collect();
    step_1a(&mut w);
    step_1b(&mut w);
    step_1c(&mut w);
    step_2(&mut w);
    step_3(&mut w);
    step_4(&mut w);
    step_5a(&mut w);
    step_5b(&mut w);
    String::from_utf8(w).expect("ascii")
}

/// Is `w[i]` a consonant, per Porter's definition (y is a consonant when
/// preceded by a vowel or at position 0)?
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// Porter's measure *m* of the stem `w[..len]`: the number of VC sequences
/// in the form `[C](VC)^m[V]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        m += 1;
        // Skip consonants.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
    }
}

/// Does the stem `w[..len]` contain a vowel?
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// Does the stem end in a double consonant?
fn ends_double_consonant(w: &[u8]) -> bool {
    let n = w.len();
    n >= 2 && w[n - 1] == w[n - 2] && is_consonant(w, n - 1)
}

/// Does the stem `w[..len]` end consonant-vowel-consonant, where the final
/// consonant is not w, x or y?
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.ends_with(suffix.as_bytes())
}

/// If the word ends with `suffix` and the remaining stem has measure > `min_m`,
/// replace the suffix with `replacement` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, replacement: &str, min_m: usize) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > min_m {
        w.truncate(stem_len);
        w.extend_from_slice(replacement.as_bytes());
        true
    } else {
        // Suffix matched but the condition failed: the rule list for this
        // step still stops here (longest-match semantics).
        true
    }
}

fn step_1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") {
        w.truncate(w.len() - 2); // sses → ss
    } else if ends_with(w, "ies") {
        w.truncate(w.len() - 2); // ies → i
    } else if ends_with(w, "ss") {
        // ss → ss (no change)
    } else if ends_with(w, "s") {
        w.truncate(w.len() - 1); // s →
    }
}

fn step_1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        if measure(w, w.len() - 3) > 0 {
            w.truncate(w.len() - 1); // eed → ee
        }
        return;
    }
    let stripped = if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else {
        false
    };
    if stripped {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e'); // conflat(ed) → conflate
        } else if ends_double_consonant(w) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
            w.truncate(w.len() - 1); // hopp(ing) → hop
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e'); // fil(ing) → file
        }
    }
}

fn step_1c(w: &mut [u8]) {
    let n = w.len();
    if n >= 2 && w[n - 1] == b'y' && has_vowel(w, n - 1) {
        w[n - 1] = b'i'; // happy → happi
    }
}

fn step_2(w: &mut Vec<u8>) {
    // Longest-match on the penultimate letter, per Porter's published table.
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    apply_rule_list(w, RULES, 0);
}

fn step_3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    apply_rule_list(w, RULES, 0);
}

fn step_4(w: &mut Vec<u8>) {
    const RULES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // Longest match first.
    let mut candidates: Vec<&str> = RULES.to_vec();
    candidates.sort_by_key(|s| std::cmp::Reverse(s.len()));
    for suffix in candidates {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            // Special condition for -ion: stem must end in s or t.
            if suffix == "ent" && ends_with(&w[..w.len()], "ion") {
                // handled below by the dedicated ion rule
            }
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
    // (m>1 and (*S or *T)) ION →
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if stem_len > 0 && matches!(w[stem_len - 1], b's' | b't') && measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
    }
}

fn step_5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step_5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_consonant(w) && w[w.len() - 1] == b'l' {
        w.truncate(w.len() - 1);
    }
}

fn apply_rule_list(w: &mut Vec<u8>, rules: &[(&str, &str)], min_m: usize) {
    let mut candidates: Vec<&(&str, &str)> = rules.iter().collect();
    candidates.sort_by_key(|(s, _)| std::cmp::Reverse(s.len()));
    for (suffix, replacement) in candidates {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, replacement, min_m);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic examples from Porter's paper and the canonical test set.
    #[test]
    fn porter_paper_examples() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "porter_stem({input:?})");
        }
    }

    #[test]
    fn domain_vocabulary() {
        // Words from the evaluation corpus that must normalize predictably.
        assert_eq!(porter_stem("movies"), "movi");
        assert_eq!(porter_stem("pictures"), "pictur");
        assert_eq!(porter_stem("actors"), "actor");
        assert_eq!(porter_stem("directed"), "direct");
        assert_eq!(porter_stem("directing"), "direct");
        assert_eq!(porter_stem("plays"), "plai");
        assert_eq!(porter_stem("stars"), "star");
        assert_eq!(porter_stem("casting"), "cast");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("by"), "by");
    }

    #[test]
    fn non_alpha_untouched() {
        assert_eq!(porter_stem("1954"), "1954");
        assert_eq!(porter_stem("mp3"), "mp3");
        assert_eq!(porter_stem("Kelly"), "Kelly"); // uppercase → unchanged
        assert_eq!(porter_stem("café"), "café"); // non-ascii → unchanged
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in ["cat", "star", "direct", "movi", "plot", "actor", "genr"] {
            assert_eq!(porter_stem(&porter_stem(w)), porter_stem(w));
        }
    }

    #[test]
    fn measure_examples() {
        // From Porter's paper: tr=0, ee=0 (as stems: "tr", "ee", "tree", "y", "by" m=0;
        // "trouble", "oats", "trees", "ivy" m=1; "troubles", "private" m=2).
        let m = |s: &str| measure(s.as_bytes(), s.len());
        assert_eq!(m("tr"), 0);
        assert_eq!(m("ee"), 0);
        assert_eq!(m("tree"), 0);
        assert_eq!(m("by"), 0);
        assert_eq!(m("trouble"), 1);
        assert_eq!(m("oats"), 1);
        assert_eq!(m("trees"), 1);
        assert_eq!(m("ivy"), 1);
        assert_eq!(m("troubles"), 2);
        assert_eq!(m("private"), 2);
        assert_eq!(m("oaten"), 2);
    }

    #[test]
    fn cvc_rules() {
        assert!(ends_cvc(b"hop", 3));
        assert!(!ends_cvc(b"box", 3)); // ends in x
        assert!(!ends_cvc(b"low", 3)); // ends in w
        assert!(!ends_cvc(b"ee", 2)); // too short
    }

    #[test]
    fn y_as_vowel() {
        // 'y' after consonant acts as vowel: "syzygy" has vowels.
        assert!(has_vowel(b"sky", 3));
        assert!(!has_vowel(b"shh", 3));
    }
}
