//! Tokenization of XML tag names and text values.
//!
//! The paper distinguishes three inputs (Section 3.2): single-word tag
//! names, compound tag names (`Directed_By`, `FirstName`), and text values
//! (sentences). [`split_identifier`] handles the first two; [`tokenize_text`]
//! handles the third.

/// Splits an XML identifier (tag or attribute name) into its constituent
/// words.
///
/// Delimiters are underscores, hyphens, dots, colons and whitespace;
/// additionally lower→upper case transitions (`FirstName`), acronym
/// boundaries (`XMLTree` → `XML`, `Tree`) and letter/digit boundaries
/// (`track2` → `track`, `2`) start a new token. Tokens are lowercased.
///
/// ```
/// use xsdf_lingproc::split_identifier;
/// assert_eq!(split_identifier("Directed_By"), vec!["directed", "by"]);
/// assert_eq!(split_identifier("FirstName"), vec!["first", "name"]);
/// assert_eq!(split_identifier("XMLSchema"), vec!["xml", "schema"]);
/// ```
pub fn split_identifier(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let chars: Vec<char> = name.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == '-' || c == '.' || c == ':' || c.is_whitespace() {
            flush(&mut tokens, &mut current);
            continue;
        }
        let boundary = if current.is_empty() {
            false
        } else {
            let prev = chars[i - 1];
            // lower→Upper (fooBar), digit↔letter, or Upper followed by lower
            // after an acronym run (XMLTree → XML | Tree).
            (prev.is_lowercase() && c.is_uppercase())
                || (prev.is_ascii_digit() != c.is_ascii_digit()
                    && (prev.is_ascii_digit() || c.is_ascii_digit()))
                || (prev.is_uppercase()
                    && c.is_uppercase()
                    && chars.get(i + 1).is_some_and(|n| n.is_lowercase()))
        };
        if boundary {
            flush(&mut tokens, &mut current);
        }
        current.extend(c.to_lowercase());
    }
    flush(&mut tokens, &mut current);
    tokens
}

fn flush(tokens: &mut Vec<String>, current: &mut String) {
    if !current.is_empty() {
        tokens.push(std::mem::take(current));
    }
}

/// Tokenizes free text: splits on anything that is not a letter, digit or
/// apostrophe, lowercases, and drops possessive `'s` suffixes and empty
/// tokens. Hyphenated words are split (`wheelchair-bound` → two tokens).
///
/// Typographic apostrophes — the right single quotation mark U+2019 and
/// the modifier letter apostrophe U+02BC — are treated exactly like the
/// ASCII `'`, so `photographer’s` is one possessive token, not a word
/// plus an orphan `s` polluting the context vector.
///
/// ```
/// use xsdf_lingproc::tokenize_text;
/// assert_eq!(
///     tokenize_text("A wheelchair-bound photographer's camera."),
///     vec!["a", "wheelchair", "bound", "photographer", "camera"],
/// );
/// assert_eq!(tokenize_text("photographer’s"), vec!["photographer"]);
/// ```
pub fn tokenize_text(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if is_apostrophe(c) {
            // Normalize every apostrophe variant to ASCII so the
            // possessive stripping below sees one spelling.
            current.push('\'');
        } else if c.is_alphanumeric() {
            current.extend(c.to_lowercase());
        } else {
            push_text_token(&mut tokens, &mut current);
        }
    }
    push_text_token(&mut tokens, &mut current);
    tokens
}

/// The apostrophe characters treated as intra-word: ASCII `'`, the
/// typographic right single quotation mark, and the modifier letter
/// apostrophe.
fn is_apostrophe(c: char) -> bool {
    matches!(c, '\'' | '\u{2019}' | '\u{02BC}')
}

fn push_text_token(tokens: &mut Vec<String>, current: &mut String) {
    if current.is_empty() {
        return;
    }
    let mut tok = std::mem::take(current);
    if let Some(stripped) = tok.strip_suffix("'s") {
        tok = stripped.to_string();
    }
    let tok: String = tok.chars().filter(|&c| c != '\'').collect();
    if !tok.is_empty() {
        tokens.push(tok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underscore_compound() {
        assert_eq!(split_identifier("directed_by"), ["directed", "by"]);
        assert_eq!(split_identifier("Directed_By"), ["directed", "by"]);
    }

    #[test]
    fn camel_case_compound() {
        assert_eq!(split_identifier("FirstName"), ["first", "name"]);
        assert_eq!(split_identifier("lastName"), ["last", "name"]);
    }

    #[test]
    fn acronym_boundaries() {
        assert_eq!(split_identifier("XMLSchema"), ["xml", "schema"]);
        assert_eq!(split_identifier("parseXML"), ["parse", "xml"]);
        assert_eq!(split_identifier("HTTPServer"), ["http", "server"]);
    }

    #[test]
    fn digits_split() {
        assert_eq!(split_identifier("track2"), ["track", "2"]);
        assert_eq!(split_identifier("mp3Player"), ["mp", "3", "player"]);
    }

    #[test]
    fn hyphen_and_dot() {
        assert_eq!(split_identifier("food-menu"), ["food", "menu"]);
        assert_eq!(split_identifier("a.b"), ["a", "b"]);
        assert_eq!(split_identifier("ns:tag"), ["ns", "tag"]);
    }

    #[test]
    fn single_word_unchanged() {
        assert_eq!(split_identifier("cast"), ["cast"]);
        assert_eq!(split_identifier("Picture"), ["picture"]);
    }

    #[test]
    fn empty_and_delimiters_only() {
        assert!(split_identifier("").is_empty());
        assert!(split_identifier("___").is_empty());
        assert!(split_identifier("-").is_empty());
    }

    #[test]
    fn all_caps_is_one_token() {
        assert_eq!(split_identifier("DVD"), ["dvd"]);
        assert_eq!(split_identifier("ISBN"), ["isbn"]);
    }

    #[test]
    fn text_basic() {
        assert_eq!(
            tokenize_text("A wheelchair bound photographer spies on his neighbors"),
            [
                "a",
                "wheelchair",
                "bound",
                "photographer",
                "spies",
                "on",
                "his",
                "neighbors"
            ]
        );
    }

    #[test]
    fn text_punctuation_stripped() {
        assert_eq!(
            tokenize_text("Hello, world! (really)"),
            ["hello", "world", "really"]
        );
    }

    #[test]
    fn text_possessives() {
        assert_eq!(tokenize_text("Hitchcock's movies"), ["hitchcock", "movies"]);
        assert_eq!(tokenize_text("don't"), ["dont"]);
    }

    #[test]
    fn typographic_apostrophes_match_ascii() {
        // U+2019 (right single quotation mark) — the common typographic
        // possessive. Before the fix this split into "photographer" + "s".
        assert_eq!(tokenize_text("photographer\u{2019}s"), ["photographer"]);
        // U+02BC (modifier letter apostrophe).
        assert_eq!(tokenize_text("photographer\u{02BC}s"), ["photographer"]);
        // All three spellings tokenize identically.
        for apostrophe in ["'", "\u{2019}", "\u{02BC}"] {
            assert_eq!(
                tokenize_text(&format!("Hitchcock{apostrophe}s movies")),
                ["hitchcock", "movies"]
            );
            assert_eq!(tokenize_text(&format!("don{apostrophe}t")), ["dont"]);
        }
    }

    #[test]
    fn doubled_and_trailing_quotes_leave_no_orphans() {
        // Trailing plural possessive: the bare apostrophe is dropped.
        assert_eq!(
            tokenize_text("the stars\u{2019} camera"),
            ["the", "stars", "camera"]
        );
        assert_eq!(
            tokenize_text("the stars' camera"),
            ["the", "stars", "camera"]
        );
        // Quote-wrapped words: no empty or orphan tokens appear.
        assert_eq!(
            tokenize_text("\u{2019}\u{2019}quoted\u{2019}\u{2019}"),
            ["quoted"]
        );
        assert_eq!(tokenize_text("''quoted''"), ["quoted"]);
        assert_eq!(
            tokenize_text("rock \u{2019}n\u{2019} roll"),
            ["rock", "n", "roll"]
        );
        // Apostrophes alone produce nothing at all.
        assert!(tokenize_text("'' \u{2019}\u{2019} \u{02BC}").is_empty());
    }

    #[test]
    fn text_numbers_kept() {
        assert_eq!(
            tokenize_text("released in 1954"),
            ["released", "in", "1954"]
        );
    }

    #[test]
    fn text_unicode() {
        assert_eq!(tokenize_text("café naïve"), ["café", "naïve"]);
    }

    #[test]
    fn text_empty() {
        assert!(tokenize_text("").is_empty());
        assert!(tokenize_text("  ... !!!").is_empty());
    }
}
