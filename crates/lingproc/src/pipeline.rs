//! The linguistic pre-processing pipeline of Section 3.2.
//!
//! A [`Preprocessor`] turns raw tag names and text values into node labels.
//! Because "found in the reference semantic network" drives both compound
//! handling and conditional stemming, the pipeline takes the lexicon as a
//! predicate closure rather than depending on the semantic-network crate:
//! `lexicon(word)` must return `true` iff the (lowercase, possibly
//! multi-word) expression has at least one sense.

use crate::stem::porter_stem;
use crate::stopwords::is_stop_word;
use crate::tokenize::{split_identifier, tokenize_text};

/// How a processed label should be looked up in the semantic network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelKind {
    /// A single token (or a compound that matched one concept, e.g.
    /// `first name`). Sense candidates come from one lookup.
    Single(String),
    /// A compound whose two tokens matched no single concept: they stay in
    /// one node label, and disambiguation assigns the best *pair* of senses
    /// (Equations 10 and 12 of the paper).
    Compound(String, String),
}

/// A processed node label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// The raw spelling from the document.
    pub original: String,
    /// Lookup structure for sense candidates.
    pub kind: LabelKind,
}

impl Label {
    /// The display form used as the tree-node label and as a context-vector
    /// dimension: the single token, or the two tokens joined with a space.
    pub fn display(&self) -> String {
        match &self.kind {
            LabelKind::Single(t) => t.clone(),
            LabelKind::Compound(a, b) => format!("{a} {b}"),
        }
    }

    /// Convenience constructor for a single-token label.
    pub fn single(original: impl Into<String>, token: impl Into<String>) -> Self {
        Self {
            original: original.into(),
            kind: LabelKind::Single(token.into()),
        }
    }
}

/// WordNet-morphy-style inflection candidates for a noun token: the
/// detachment rules `-s`, `-es`, `-ies → -y` (applied before falling back
/// to the aggressive Porter stem, which over-stems forms like *movies* →
/// *movi*).
pub fn morphy_variants(token: &str) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(stripped) = token.strip_suffix("ies") {
        if !stripped.is_empty() {
            out.push(format!("{stripped}y"));
        }
    }
    if let Some(stripped) = token.strip_suffix("es") {
        if stripped.len() > 1 {
            out.push(stripped.to_string());
        }
    }
    if let Some(stripped) = token.strip_suffix('s') {
        if stripped.len() > 1 && !stripped.ends_with('s') {
            out.push(stripped.to_string());
        }
    }
    out
}

/// The three-phase pre-processor: tokenization, stop-word removal,
/// conditional stemming, plus the paper's compound-word policy.
#[derive(Debug, Clone)]
pub struct Preprocessor {
    /// Remove stop words from text values and multi-token tag names.
    pub remove_stop_words: bool,
    /// Stem words that are not found in the lexicon.
    pub stem_unknown: bool,
}

impl Default for Preprocessor {
    fn default() -> Self {
        Self {
            remove_stop_words: true,
            stem_unknown: true,
        }
    }
}

impl Preprocessor {
    /// A pre-processor with the paper's default behaviour.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalizes one token: keep it if the lexicon knows it, otherwise try
    /// WordNet-morphy-style plural stripping, then the Porter stem, and
    /// otherwise keep the original lowercase form.
    fn normalize_token(&self, token: &str, lexicon: &dyn Fn(&str) -> bool) -> String {
        if !self.stem_unknown || lexicon(token) {
            return token.to_string();
        }
        for variant in morphy_variants(token) {
            if lexicon(&variant) {
                return variant;
            }
        }
        let stemmed = porter_stem(token);
        if stemmed != token && lexicon(&stemmed) {
            stemmed
        } else {
            token.to_string()
        }
    }

    /// Processes an element/attribute tag name into a [`Label`]
    /// (Section 3.2's three input cases).
    ///
    /// * single word → `Single`, stemmed only if unknown to the lexicon;
    /// * compound (`Directed_By`, `FirstName`): if the joined expression
    ///   (`directed by`) matches a single concept, it becomes one `Single`
    ///   token; otherwise stop words are removed and the (up to two)
    ///   remaining tokens form a `Compound` (or collapse to `Single` when
    ///   only one survives);
    /// * names with no alphabetic content yield `None`.
    pub fn process_tag_name(&self, name: &str, lexicon: &dyn Fn(&str) -> bool) -> Option<Label> {
        let tokens = split_identifier(name);
        if tokens.is_empty() {
            return None;
        }
        if tokens.len() == 1 {
            let tok = self.normalize_token(&tokens[0], lexicon);
            return Some(Label {
                original: name.to_string(),
                kind: LabelKind::Single(tok),
            });
        }
        // Compound: try the whole expression as a single concept first.
        let joined = tokens.join(" ");
        if lexicon(&joined) {
            return Some(Label {
                original: name.to_string(),
                kind: LabelKind::Single(joined),
            });
        }
        // Otherwise: stop-word removal + conditional stemming, keeping at
        // most the first two content tokens in one label.
        let mut content: Vec<String> = tokens
            .iter()
            .filter(|t| !self.remove_stop_words || !is_stop_word(t))
            .map(|t| self.normalize_token(t, lexicon))
            .collect();
        if content.is_empty() {
            // All tokens were stop words: fall back to the raw tokens.
            content = tokens
                .iter()
                .map(|t| self.normalize_token(t, lexicon))
                .collect();
        }
        let kind = if content.len() == 1 {
            LabelKind::Single(content.remove(0))
        } else {
            let b = content.swap_remove(1);
            let a = content.swap_remove(0);
            LabelKind::Compound(a, b)
        };
        Some(Label {
            original: name.to_string(),
            kind,
        })
    }

    /// Processes an element/attribute text value into word tokens, applying
    /// tokenization, stop-word removal, and conditional stemming. Each
    /// returned token becomes one leaf node of the XML tree.
    pub fn process_text_value(&self, text: &str, lexicon: &dyn Fn(&str) -> bool) -> Vec<String> {
        tokenize_text(text)
            .into_iter()
            .filter(|t| !self.remove_stop_words || !is_stop_word(t))
            .map(|t| self.normalize_token(&t, lexicon))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy lexicon for the tests.
    fn lexicon(word: &str) -> bool {
        matches!(
            word,
            "cast"
                | "star"
                | "picture"
                | "first name"
                | "name"
                | "first"
                | "last"
                | "direct"
                | "director"
                | "kelly"
                | "stewart"
                | "photographer"
                | "neighbor"
                | "spy"
                | "movie"
                | "year"
        )
    }

    #[test]
    fn single_known_word_untouched() {
        let p = Preprocessor::new();
        let l = p.process_tag_name("cast", &lexicon).unwrap();
        assert_eq!(l.kind, LabelKind::Single("cast".into()));
        assert_eq!(l.display(), "cast");
        assert_eq!(l.original, "cast");
    }

    #[test]
    fn single_unknown_word_stemmed() {
        let p = Preprocessor::new();
        // "directed" is unknown, its stem "direct" is known.
        let l = p.process_tag_name("directed", &lexicon).unwrap();
        assert_eq!(l.kind, LabelKind::Single("direct".into()));
    }

    #[test]
    fn unknown_even_after_stemming_kept() {
        let p = Preprocessor::new();
        let l = p.process_tag_name("zorble", &lexicon).unwrap();
        assert_eq!(l.kind, LabelKind::Single("zorble".into()));
    }

    #[test]
    fn compound_matching_single_concept() {
        // "FirstName" → "first name" is one concept in the lexicon.
        let p = Preprocessor::new();
        let l = p.process_tag_name("FirstName", &lexicon).unwrap();
        assert_eq!(l.kind, LabelKind::Single("first name".into()));
    }

    #[test]
    fn compound_with_stop_word_collapses() {
        // "Directed_By" → "directed by" is not a concept; "by" is a stop
        // word; "directed" stems to "direct".
        let p = Preprocessor::new();
        let l = p.process_tag_name("Directed_By", &lexicon).unwrap();
        assert_eq!(l.kind, LabelKind::Single("direct".into()));
        assert_eq!(l.original, "Directed_By");
    }

    #[test]
    fn compound_without_single_match_stays_compound() {
        let p = Preprocessor::new();
        let l = p.process_tag_name("star_picture", &lexicon).unwrap();
        assert_eq!(l.kind, LabelKind::Compound("star".into(), "picture".into()));
        assert_eq!(l.display(), "star picture");
    }

    #[test]
    fn three_token_name_keeps_first_two_content_tokens() {
        let p = Preprocessor::new();
        let l = p
            .process_tag_name("date_of_publication_year", &lexicon)
            .unwrap();
        match l.kind {
            LabelKind::Compound(a, b) => {
                assert_eq!(a, "date");
                assert_eq!(b, "publication");
            }
            other => panic!("expected compound, got {other:?}"),
        }
    }

    #[test]
    fn all_stop_word_name_falls_back() {
        let p = Preprocessor::new();
        let l = p.process_tag_name("for_each", &lexicon).unwrap();
        // Both are stop words: fall back to raw tokens as a compound.
        assert_eq!(l.kind, LabelKind::Compound("for".into(), "each".into()));
    }

    #[test]
    fn empty_name_yields_none() {
        let p = Preprocessor::new();
        assert!(p.process_tag_name("___", &lexicon).is_none());
    }

    #[test]
    fn text_value_full_pipeline() {
        let p = Preprocessor::new();
        let toks = p.process_text_value(
            "A wheelchair bound photographer spies on his neighbors",
            &lexicon,
        );
        // Stop words removed; "spies"→"spi" is not in lexicon so kept as-is?
        // Porter: spies→spi; spi unknown → keep "spies".
        assert!(toks.contains(&"photographer".to_string()));
        assert!(!toks.contains(&"a".to_string()));
        assert!(!toks.contains(&"on".to_string()));
        assert!(!toks.contains(&"his".to_string()));
        // "neighbors" stems to "neighbor" which is in the lexicon.
        assert!(toks.contains(&"neighbor".to_string()));
    }

    #[test]
    fn text_value_stemming_only_when_unknown() {
        let p = Preprocessor::new();
        // "cast" is known → untouched even though the stemmer would keep it.
        let toks = p.process_text_value("cast casting", &lexicon);
        assert_eq!(toks[0], "cast");
        // "casting" unknown → stem "cast" known → normalized.
        assert_eq!(toks[1], "cast");
    }

    #[test]
    fn stop_word_removal_can_be_disabled() {
        let p = Preprocessor {
            remove_stop_words: false,
            stem_unknown: true,
        };
        let toks = p.process_text_value("the cast", &lexicon);
        assert_eq!(toks, ["the", "cast"]);
    }

    #[test]
    fn stemming_can_be_disabled() {
        let p = Preprocessor {
            remove_stop_words: true,
            stem_unknown: false,
        };
        let l = p.process_tag_name("directed", &lexicon).unwrap();
        assert_eq!(l.kind, LabelKind::Single("directed".into()));
    }

    #[test]
    fn proper_nouns_lowercased_for_lookup() {
        let p = Preprocessor::new();
        let toks = p.process_text_value("Grace Kelly", &lexicon);
        assert_eq!(toks, ["grace", "kelly"]);
    }
}
