//! # xsdf-lingproc
//!
//! Linguistic pre-processing for the XSDF framework (Section 3.2 of
//! *Resolving XML Semantic Ambiguity*, EDBT 2015):
//!
//! 1. **tokenization** — splitting element/attribute tag names on
//!    underscores, hyphens, digits and case transitions (`Directed_By`,
//!    `FirstName`), and text values on whitespace/punctuation,
//! 2. **stop-word removal** — a standard English stop list,
//! 3. **stemming** — a full from-scratch implementation of the Porter
//!    stemming algorithm (M.F. Porter, *An algorithm for suffix stripping*,
//!    1980).
//!
//! The [`Preprocessor`] combines all three and implements the paper's
//! compound-word policy: a two-token tag name is first tried as a single
//! expression against the reference lexicon (`first name` → one concept);
//! only if no single concept matches are the tokens treated separately —
//! but they stay inside one node label so one sense is eventually assigned
//! to the pair (Section 3.2, contrast with \[29, 56\]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

pub use pipeline::{morphy_variants, Label, LabelKind, Preprocessor};
pub use stem::porter_stem;
pub use stopwords::is_stop_word;
pub use tokenize::{split_identifier, tokenize_text};
