//! English stop-word list used by the pre-processing pipeline.
//!
//! The list is the classic Van Rijsbergen-style IR stop list restricted to
//! the function words that actually appear in XML tag names and short text
//! values (articles, prepositions, conjunctions, pronouns, auxiliaries).
//! Lookup is a binary search over a sorted static table.

/// Sorted stop-word table. Keep sorted — [`is_stop_word`] binary-searches it
/// (enforced by a test).
static STOP_WORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "per",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "upon",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Returns `true` if `word` (expected lowercase) is an English stop word.
///
/// ```
/// use xsdf_lingproc::is_stop_word;
/// assert!(is_stop_word("the"));
/// assert!(is_stop_word("by"));
/// assert!(!is_stop_word("cast"));
/// ```
pub fn is_stop_word(word: &str) -> bool {
    STOP_WORDS.binary_search(&word).is_ok()
}

/// The number of stop words in the table (exposed for diagnostics).
pub fn stop_word_count() -> usize {
    STOP_WORDS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_deduped() {
        let mut sorted = STOP_WORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, STOP_WORDS, "STOP_WORDS must be sorted and unique");
    }

    #[test]
    fn common_function_words() {
        for w in ["a", "the", "of", "by", "and", "with", "is", "on"] {
            assert!(is_stop_word(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in [
            "cast", "star", "picture", "state", "address", "director", "name",
        ] {
            assert!(!is_stop_word(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn case_sensitive_lowercase_contract() {
        // Callers must lowercase first; "The" is not in the table.
        assert!(!is_stop_word("The"));
    }

    #[test]
    fn count_reasonable() {
        assert!(stop_word_count() > 100);
    }
}
