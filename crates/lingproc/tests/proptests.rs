//! Property-based tests for tokenization and stemming.

use proptest::prelude::*;
use xsdf_lingproc::{is_stop_word, porter_stem, split_identifier, tokenize_text, Preprocessor};

/// An independent model of the tokenizer as it behaved before Unicode
/// apostrophes were recognized: split on anything that is not alphanumeric
/// or ASCII `'`, lowercase, strip a possessive `'s`, drop remaining
/// apostrophes and empties. On ASCII input the production tokenizer must
/// agree with this model exactly.
fn ascii_reference_tokenize(text: &str) -> Vec<String> {
    fn flush(tokens: &mut Vec<String>, current: &mut String) {
        let mut tok = std::mem::take(current);
        if let Some(stripped) = tok.strip_suffix("'s") {
            tok = stripped.to_string();
        }
        let tok: String = tok.chars().filter(|&c| c != '\'').collect();
        if !tok.is_empty() {
            tokens.push(tok);
        }
    }
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c == '\'' {
            current.push(c);
        } else if c.is_alphanumeric() {
            current.extend(c.to_lowercase());
        } else {
            flush(&mut tokens, &mut current);
        }
    }
    flush(&mut tokens, &mut current);
    tokens
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The stemmer never panics and never grows a word.
    #[test]
    fn stem_never_grows(word in "[a-z]{1,20}") {
        let stem = porter_stem(&word);
        prop_assert!(stem.len() <= word.len());
        prop_assert!(!stem.is_empty());
    }

    /// Stemming is idempotent in the overwhelming common case the pipeline
    /// relies on: we check it exactly for stems the algorithm produces from
    /// plural/gerund forms (full idempotence is not guaranteed by Porter,
    /// e.g. -ational chains, so we restrict to one representative family).
    #[test]
    fn stem_of_plural_is_stem_of_singular(word in "[bcdfgmprt][aeiou][bcdfgmprt]{1,3}") {
        let plural = format!("{word}s");
        prop_assert_eq!(porter_stem(&plural), porter_stem(&word));
    }

    /// The stemmer passes through anything containing non-lowercase chars.
    #[test]
    fn stem_ignores_non_lowercase(word in "[A-Z0-9]{1,10}") {
        prop_assert_eq!(porter_stem(&word), word);
    }

    /// Identifier splitting produces lowercase, delimiter-free tokens whose
    /// letters appear in the input, in order.
    #[test]
    fn split_tokens_are_clean(name in "[A-Za-z0-9_\\-\\.]{0,30}") {
        let tokens = split_identifier(&name);
        let lower = name.to_lowercase();
        let mut cursor = 0usize;
        for tok in &tokens {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            // Tokens occur in order within the lowercased input.
            let found = lower[cursor..].find(tok.as_str());
            prop_assert!(found.is_some(), "token {tok:?} not found in {lower:?}");
            cursor += found.unwrap() + tok.len();
        }
    }

    /// split_identifier is invariant under case-insensitive inputs that have
    /// no internal case structure.
    #[test]
    fn split_lowercase_roundtrip(name in "[a-z]{1,15}(_[a-z]{1,15}){0,3}") {
        let tokens = split_identifier(&name);
        prop_assert_eq!(tokens.join("_"), name);
    }

    /// Text tokenization yields lowercase tokens and never panics.
    #[test]
    fn tokenize_text_clean(text in "\\PC{0,120}") {
        for tok in tokenize_text(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(!tok.chars().any(char::is_whitespace));
            prop_assert_eq!(tok.to_lowercase(), tok.clone());
        }
    }

    /// ASCII-only inputs tokenize exactly as a reference model of the
    /// pre-Unicode-apostrophe tokenizer: the U+2019/U+02BC fix must be
    /// byte-invisible to ASCII corpora.
    #[test]
    fn ascii_tokenization_matches_reference_model(text in "[ -~]{0,120}") {
        prop_assert_eq!(tokenize_text(&text), ascii_reference_tokenize(&text));
    }

    /// Every apostrophe spelling — ASCII ', U+2019 ’, U+02BC ʼ — tokenizes
    /// identically: possessives strip, contractions merge, no orphan "s".
    #[test]
    fn apostrophe_variants_are_interchangeable(
        words in prop::collection::vec("[a-z]{1,10}('s)? ?", 0..8),
    ) {
        let ascii = words.concat();
        let typographic = ascii.replace('\'', "\u{2019}");
        let modifier = ascii.replace('\'', "\u{02BC}");
        let reference = tokenize_text(&ascii);
        prop_assert_eq!(&tokenize_text(&typographic), &reference);
        prop_assert_eq!(&tokenize_text(&modifier), &reference);
    }

    /// Apostrophe runs never leave empty or orphan tokens behind.
    #[test]
    fn apostrophe_runs_leave_no_empty_tokens(text in "['’ʼa-z ]{0,60}") {
        for tok in tokenize_text(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().any(|c| c.is_alphanumeric()), "token {tok:?} is all apostrophes");
        }
    }

    /// With stop-word removal on, no produced token is a stop word.
    #[test]
    fn pipeline_removes_stop_words(text in "([a-z]{1,8} ){0,10}") {
        let p = Preprocessor::new();
        let none = |_: &str| false;
        for tok in p.process_text_value(&text, &none) {
            prop_assert!(!is_stop_word(&tok), "stop word {tok:?} survived");
        }
    }

    /// Tag-name processing never panics and the display form is non-empty
    /// whenever a label is produced.
    #[test]
    fn tag_processing_total(name in "\\PC{0,40}") {
        let p = Preprocessor::new();
        if let Some(label) = p.process_tag_name(&name, &|_| false) {
            prop_assert!(!label.display().is_empty());
        }
    }
}
