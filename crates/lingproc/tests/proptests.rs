//! Property-based tests for tokenization and stemming.

use proptest::prelude::*;
use xsdf_lingproc::{is_stop_word, porter_stem, split_identifier, tokenize_text, Preprocessor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The stemmer never panics and never grows a word.
    #[test]
    fn stem_never_grows(word in "[a-z]{1,20}") {
        let stem = porter_stem(&word);
        prop_assert!(stem.len() <= word.len());
        prop_assert!(!stem.is_empty());
    }

    /// Stemming is idempotent in the overwhelming common case the pipeline
    /// relies on: we check it exactly for stems the algorithm produces from
    /// plural/gerund forms (full idempotence is not guaranteed by Porter,
    /// e.g. -ational chains, so we restrict to one representative family).
    #[test]
    fn stem_of_plural_is_stem_of_singular(word in "[bcdfgmprt][aeiou][bcdfgmprt]{1,3}") {
        let plural = format!("{word}s");
        prop_assert_eq!(porter_stem(&plural), porter_stem(&word));
    }

    /// The stemmer passes through anything containing non-lowercase chars.
    #[test]
    fn stem_ignores_non_lowercase(word in "[A-Z0-9]{1,10}") {
        prop_assert_eq!(porter_stem(&word), word);
    }

    /// Identifier splitting produces lowercase, delimiter-free tokens whose
    /// letters appear in the input, in order.
    #[test]
    fn split_tokens_are_clean(name in "[A-Za-z0-9_\\-\\.]{0,30}") {
        let tokens = split_identifier(&name);
        let lower = name.to_lowercase();
        let mut cursor = 0usize;
        for tok in &tokens {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            // Tokens occur in order within the lowercased input.
            let found = lower[cursor..].find(tok.as_str());
            prop_assert!(found.is_some(), "token {tok:?} not found in {lower:?}");
            cursor += found.unwrap() + tok.len();
        }
    }

    /// split_identifier is invariant under case-insensitive inputs that have
    /// no internal case structure.
    #[test]
    fn split_lowercase_roundtrip(name in "[a-z]{1,15}(_[a-z]{1,15}){0,3}") {
        let tokens = split_identifier(&name);
        prop_assert_eq!(tokens.join("_"), name);
    }

    /// Text tokenization yields lowercase tokens and never panics.
    #[test]
    fn tokenize_text_clean(text in "\\PC{0,120}") {
        for tok in tokenize_text(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(!tok.chars().any(char::is_whitespace));
            prop_assert_eq!(tok.to_lowercase(), tok.clone());
        }
    }

    /// With stop-word removal on, no produced token is a stop word.
    #[test]
    fn pipeline_removes_stop_words(text in "([a-z]{1,8} ){0,10}") {
        let p = Preprocessor::new();
        let none = |_: &str| false;
        for tok in p.process_text_value(&text, &none) {
            prop_assert!(!is_stop_word(&tok), "stop word {tok:?} survived");
        }
    }

    /// Tag-name processing never panics and the display form is non-empty
    /// whenever a label is produced.
    #[test]
    fn tag_processing_total(name in "\\PC{0,40}") {
        let p = Preprocessor::new();
        if let Some(label) = p.process_tag_name(&name, &|_| false) {
            prop_assert!(!label.display().is_empty());
        }
    }
}
