//! Pathological XML generators for robustness and chaos testing.
//!
//! Where the dataset generators ([`crate::gen`]) imitate the paper's
//! *realistic* corpus, these produce documents that are deliberately
//! hostile along one resource axis each — nesting depth, fanout, entity
//! density, or polysemy — so the runtime's resource limits and deadlines
//! have something real to trip on. All generators are pure functions of
//! their arguments: no RNG, byte-identical output on every call.

/// A document that is nothing but `depth` nested `<section>` elements.
///
/// Stresses the parser's recursion (and its `max_depth` guard): node count
/// grows linearly but the element stack grows just as fast.
pub fn deep_nesting(depth: usize) -> String {
    let mut xml = String::with_capacity(depth * 20 + 32);
    xml.push_str("<archive>");
    for _ in 0..depth {
        xml.push_str("<section>");
    }
    xml.push_str("core");
    for _ in 0..depth {
        xml.push_str("</section>");
    }
    xml.push_str("</archive>");
    xml
}

/// A two-level document whose root has `children` identical children.
///
/// Stresses anything linear in node count — tree building, selection, and
/// the node-budget check — without any depth at all.
pub fn mega_fanout(children: usize) -> String {
    let mut xml = String::with_capacity(children * 24 + 32);
    xml.push_str("<catalog>");
    for i in 0..children {
        xml.push_str("<item>entry ");
        xml.push_str(&i.to_string());
        xml.push_str("</item>");
    }
    xml.push_str("</catalog>");
    xml
}

/// A document whose text content is saturated with character entities.
///
/// Every text value is almost entirely `&amp;`/`&lt;`/`&gt;`/`&quot;`
/// escapes, so the byte size is many times the decoded size — the shape
/// that makes byte limits and parse-time budgets diverge from node counts.
pub fn entity_heavy(values: usize) -> String {
    let mut xml = String::with_capacity(values * 64 + 32);
    xml.push_str("<feed>");
    for _ in 0..values {
        xml.push_str("<entry>&amp;&lt;&gt;&quot;&apos;&amp;&lt;&gt;&quot;&apos;</entry>");
    }
    xml.push_str("</feed>");
    xml
}

/// A document built entirely from the most polysemous labels in the
/// reference vocabulary (`star`, `play`, `cast`, …), each repeated
/// `repeats` times.
///
/// Node count stays modest but the number of candidate sense pairs the
/// scoring loop must evaluate explodes — the axis the sense-pair budget
/// and per-document deadline exist for.
pub fn hyper_polysemous(repeats: usize) -> String {
    const AMBIGUOUS: [&str; 6] = ["play", "star", "cast", "picture", "character", "state"];
    let mut xml = String::with_capacity(repeats * AMBIGUOUS.len() * 24 + 32);
    xml.push_str("<plays>");
    for _ in 0..repeats {
        for label in AMBIGUOUS {
            xml.push('<');
            xml.push_str(label);
            xml.push('>');
            xml.push_str("star");
            xml.push_str("</");
            xml.push_str(label);
            xml.push('>');
        }
    }
    xml.push_str("</plays>");
    xml
}

/// The standard pathological document set for cross-crate harnesses (the
/// conformance differential suite in particular): one or two
/// representatives per hostility axis, each paired with a stable name for
/// failure reports, and every document parseable under the **default**
/// parser limits (nesting depths stay below the parser's `max_depth` of
/// 256 — generators above can exceed it when called directly).
pub fn suite() -> Vec<(&'static str, String)> {
    vec![
        ("deep_nesting_48", deep_nesting(48)),
        ("deep_nesting_200", deep_nesting(200)),
        ("mega_fanout_64", mega_fanout(64)),
        ("entity_heavy_16", entity_heavy(16)),
        ("hyper_polysemous_2", hyper_polysemous(2)),
        ("hyper_polysemous_6", hyper_polysemous(6)),
    ]
}

/// Stamps a chaos marker onto a document's root element as an attribute,
/// so marker-targeted failpoints (`panic-if`/`delay-if`) can select it by
/// substring while the document stays well-formed.
///
/// ```
/// let doc = xsdf_corpus::pathological::with_marker("<a><b/></a>", "CHAOS_PANIC");
/// assert_eq!(doc, "<a chaos=\"CHAOS_PANIC\"><b/></a>");
/// ```
pub fn with_marker(xml: &str, marker: &str) -> String {
    debug_assert!(
        !marker.contains('"') && !marker.contains('&') && !marker.contains('<'),
        "marker must be attribute-safe"
    );
    match xml.find(['>', '/']) {
        Some(end) => format!("{} chaos=\"{marker}\"{}", &xml[..end], &xml[end..]),
        None => xml.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_nesting_has_exact_depth() {
        let xml = deep_nesting(300);
        let mut parser = xmltree::parser::Parser::new(&xml);
        parser.max_depth = 400;
        let doc = parser.parse_document().expect("well-formed");
        assert_eq!(doc.element_count(), 301);
        // The default parser guard (256) must reject it.
        assert!(xmltree::parse(&xml).is_err());
    }

    #[test]
    fn mega_fanout_has_exact_node_count() {
        let doc = xmltree::parse(&mega_fanout(500)).expect("well-formed");
        assert_eq!(doc.element_count(), 501);
    }

    #[test]
    fn entity_heavy_parses_and_inflates_bytes() {
        let xml = entity_heavy(50);
        let doc = xmltree::parse(&xml).expect("well-formed");
        assert_eq!(doc.element_count(), 51);
        // Escapes make the raw form several times the decoded text.
        assert!(xml.len() > 50 * 40);
    }

    #[test]
    fn hyper_polysemous_is_well_formed() {
        let doc = xmltree::parse(&hyper_polysemous(10)).expect("well-formed");
        assert_eq!(doc.element_count(), 61);
    }

    #[test]
    fn suite_parses_under_default_limits() {
        let docs = suite();
        assert!(docs.len() >= 5);
        let mut names = std::collections::HashSet::new();
        for (name, xml) in &docs {
            assert!(names.insert(*name), "duplicate suite name {name}");
            xmltree::parse(xml).unwrap_or_else(|e| panic!("{name} must parse: {e:?}"));
        }
    }

    #[test]
    fn marker_keeps_documents_well_formed() {
        for xml in [
            deep_nesting(5),
            mega_fanout(3),
            entity_heavy(2),
            hyper_polysemous(1),
            "<solo/>".to_string(),
        ] {
            let marked = with_marker(&xml, "CHAOS_X");
            assert!(marked.contains("CHAOS_X"));
            let a = xmltree::parse(&xml).expect("input well-formed");
            let b = xmltree::parse(&marked).expect("marked still well-formed");
            assert_eq!(a.element_count(), b.element_count());
        }
    }
}
