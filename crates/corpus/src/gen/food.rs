//! Dataset 7 — W3Schools breakfast menu (`food_menu.dtd`, Group 4).

use rand::Rng;
use semnet::SemanticNetwork;

use crate::docgen::{AnnotatedDocument, DocGen, GoldSense};
use crate::gen::vocab;
use crate::spec::DatasetId;

fn g(key: &str) -> Option<GoldSense> {
    Some(GoldSense::single(key))
}

pub(crate) fn generate<R: Rng>(sn: &SemanticNetwork, rng: &mut R) -> AnnotatedDocument {
    let (mut gen, root) = DocGen::new(sn, "menu", g("menu.list"));
    let num_foods = rng.gen_range(1..=2);
    for _ in 0..num_foods {
        let dish = vocab::pick(rng, vocab::DISHES).to_owned();
        let food = gen.elem(root, "food", g("food.substance"));
        gen.leaf(food, "name", g("name.label"), &[(dish.0, Some(dish.1))]);
        gen.plain_leaf(
            food,
            "price",
            g("price.amount"),
            &format!("{}", rng.gen_range(4..15)),
        );
        let ingredients = {
            let n = 1;
            vocab::pick_distinct(rng, vocab::INGREDIENTS, n)
        };
        let mut description: Vec<(&str, Option<&str>)> =
            vec![(dish.0, Some(dish.1)), ("with", None)];
        for (word, key) in &ingredients {
            description.push((word, Some(key)));
        }
        gen.leaf(food, "description", g("description.account"), &description);
        gen.plain_leaf(
            food,
            "calories",
            g("calorie.n"),
            &format!("{}", rng.gen_range(150..900)),
        );
    }
    gen.finish(DatasetId::FoodMenu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use semnet::mini_wordnet;

    #[test]
    fn menu_shape() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(7);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        assert_eq!(t.label(t.root()), "menu");
        for label in ["food", "name", "price", "description"] {
            assert!(t.preorder().any(|n| t.label(n) == label), "missing {label}");
        }
        // "calories" normalizes via morphy to "calorie".
        assert!(t
            .preorder()
            .any(|n| t.label(n) == "calorie" || t.label(n) == "calories"));
    }

    #[test]
    fn descriptions_carry_ingredient_gold() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(12);
        let doc = generate(sn, &mut rng);
        let ingredient_keys: Vec<String> = doc.gold.values().map(|g| g.key()).collect();
        assert!(ingredient_keys.iter().any(|k| k.contains('.')));
        assert!(doc.gold_count() >= 6);
    }
}
