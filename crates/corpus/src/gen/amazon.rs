//! Dataset 2 — Amazon product files (`amazon_product.dtd`, Group 2).
//!
//! Flat, repetitive product records whose tag vocabulary is the most
//! polysemous of the corpus (*stock*, *weight*, *model*, *brand*, *title*,
//! *feature*, *order*, …): high ambiguity with poor structure.

use rand::Rng;
use semnet::SemanticNetwork;

use crate::docgen::{AnnotatedDocument, DocGen, GoldSense};
use crate::gen::vocab;
use crate::spec::DatasetId;

fn g(key: &str) -> Option<GoldSense> {
    Some(GoldSense::single(key))
}

pub(crate) fn generate<R: Rng>(sn: &SemanticNetwork, rng: &mut R) -> AnnotatedDocument {
    let (mut gen, root) = DocGen::new(sn, "products", g("product.merchandise"));
    let num_products = rng.gen_range(3..=3);
    for product_no in 0..num_products {
        // Repeated record tags are one annotation decision: the first two
        // products' tags carry gold, the third record only contributes
        // token gold (and identical disambiguation contexts for every
        // method).
        let tg = |key: &str| if product_no < 2 { g(key) } else { None };
        let item = vocab::pick(rng, vocab::PRODUCTS).to_owned();
        let product = gen.elem(root, "product", tg("product.merchandise"));
        gen.attr(product, "category", tg("category.n"), &{
            let cat = vocab::pick(rng, vocab::CATEGORIES).to_owned();
            vec![(cat.0, Some(cat.1))]
        });

        gen.leaf(
            product,
            "title",
            tg("title.work"),
            &[(item.0, Some(item.1))],
        );
        gen.leaf(
            product,
            "brand",
            tg("brand.trademark"),
            &[(vocab::unknown_name(rng), None)],
        );
        gen.plain_leaf(
            product,
            "price",
            tg("price.amount"),
            &format!("{}", rng.gen_range(10..500)),
        );
        gen.plain_leaf(
            product,
            "list_price",
            tg("list_price.n"),
            &format!("{}", rng.gen_range(10..600)),
        );
        gen.plain_leaf(
            product,
            "weight",
            tg("weight.heaviness"),
            &format!("{}", rng.gen_range(1..40)),
        );
        gen.plain_leaf(
            product,
            "stock",
            tg("stock.inventory"),
            &format!("{}", rng.gen_range(0..90)),
        );
        gen.plain_leaf(
            product,
            "model",
            tg("model.version"),
            &format!("X{}", rng.gen_range(10..99)),
        );
        let color = vocab::pick(rng, vocab::COLORS).to_owned();
        gen.leaf(product, "color", tg("color.n"), &[(color.0, Some(color.1))]);
        gen.plain_leaf(
            product,
            "rating",
            tg("rating.score"),
            &format!("{}", rng.gen_range(1..=5)),
        );

        // Review: free text of high-polysemy commerce words.
        let review_words = {
            let n = rng.gen_range(2..=3);
            vocab::pick_distinct(rng, vocab::COMMERCE_WORDS, n)
        };
        let mut review: Vec<(&str, Option<&str>)> = vec![("the", None)];
        for (i, (word, key)) in review_words.iter().enumerate() {
            review.push((word, Some(key)));
            if i == 0 {
                review.push((vocab::unknown_name(rng), None));
                review.push(("and", None));
            }
        }
        review.push((vocab::unknown_name(rng), None));
        gen.leaf(product, "review", tg("review.critique"), &review);

        // Description: the product word plus more commerce vocabulary.
        let desc_words = {
            let n = rng.gen_range(1..=2);
            vocab::pick_distinct(rng, vocab::COMMERCE_WORDS, n)
        };
        let mut description: Vec<(&str, Option<&str>)> =
            vec![(item.0, Some(item.1)), ("with", None)];
        for (word, key) in &desc_words {
            description.push((word, Some(key)));
        }
        gen.leaf(
            product,
            "description",
            tg("description.account"),
            &description,
        );

        // A feature bullet (value mostly brand-speak the lexicon lacks).
        let f = vocab::pick(rng, vocab::COMMERCE_WORDS).to_owned();
        gen.leaf(
            product,
            "feature",
            tg("feature.characteristic"),
            &[(vocab::unknown_name(rng), None), (f.0, Some(f.1))],
        );
        gen.leaf(product, "shipping", tg("shipping.transport"), &{
            let d = ("delivery", "delivery.goods");
            vec![(d.0, Some(d.1))]
        });
    }
    gen.finish(DatasetId::Amazon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use semnet::mini_wordnet;

    #[test]
    fn flat_product_records() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(2);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        assert_eq!(t.label(t.root()), "product");
        // Products root → "products" stems to "product".
        assert!(t.max_depth() <= 4, "Amazon records are shallow");
        for label in [
            "title", "brand", "price", "stock", "weight", "model", "review",
        ] {
            assert!(t.preorder().any(|n| t.label(n) == label), "missing {label}");
        }
    }

    #[test]
    fn tag_vocabulary_is_highly_polysemous() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(4);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        let mut polysemy_sum = 0usize;
        let mut count = 0usize;
        for n in t.preorder() {
            if t.node(n).kind == xmltree::NodeKind::Element {
                polysemy_sum += sn.polysemy(t.label(n));
                count += 1;
            }
        }
        let avg = polysemy_sum as f64 / count as f64;
        assert!(
            avg >= 2.5,
            "Group 2 tags should be polysemous on average, got {avg:.2}"
        );
    }

    #[test]
    fn size_near_target() {
        let sn = mini_wordnet();
        let mut total = 0;
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            total += generate(sn, &mut rng).tree.len();
        }
        let avg = total as f64 / 6.0;
        assert!(
            (70.0..=160.0).contains(&avg),
            "avg {avg} vs Table 3 target 113"
        );
    }
}
