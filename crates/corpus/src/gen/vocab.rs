//! Shared vocabulary pools: `(word, gold concept key)` pairs whose words
//! all resolve in MiniWordNet, plus invented out-of-vocabulary names that
//! deliberately stay unannotated (like real-world proper nouns absent from
//! WordNet).

use rand::seq::SliceRandom;
use rand::Rng;

/// A vocabulary entry: the surface word and its intended concept key.
pub type Entry = (&'static str, &'static str);

/// Picks a random entry from a pool.
pub fn pick<'a, R: Rng>(rng: &mut R, pool: &'a [Entry]) -> &'a Entry {
    pool.choose(rng).expect("non-empty pool")
}

/// Picks `n` distinct entries (or fewer if the pool is smaller).
pub fn pick_distinct<R: Rng>(rng: &mut R, pool: &[Entry], n: usize) -> Vec<Entry> {
    let mut pool: Vec<Entry> = pool.to_vec();
    pool.shuffle(rng);
    pool.truncate(n);
    pool
}

/// Invented proper names with no senses in the network (unannotated).
pub static UNKNOWN_NAMES: &[&str] = &[
    "Durand",
    "Nakamura",
    "Olsson",
    "Petrov",
    "Marchetti",
    "Okafor",
    "Lindqvist",
    "Costa",
    "Haddad",
    "Novak",
    "Bergstrom",
    "Tanaka",
    "Moreau",
    "Silva",
    "Kovacs",
    "Armand",
];

/// Picks an invented name.
pub fn unknown_name<R: Rng>(rng: &mut R) -> &'static str {
    UNKNOWN_NAMES[rng.gen_range(0..UNKNOWN_NAMES.len())]
}

/// Elizabethan content words for Shakespeare line text (high polysemy,
/// Group 1's ambiguity driver).
pub static ELIZABETHAN: &[Entry] = &[
    ("love", "love.emotion"),
    ("death", "death.event"),
    ("king", "king.monarch"),
    ("queen", "queen.monarch"),
    ("crown", "crown.monarchy"),
    ("ghost", "ghost.spirit"),
    ("sword", "sword.n"),
    ("blood", "blood.fluid"),
    ("heart", "heart.courage"),
    ("night", "night.period"),
    ("honor", "honor.respect"),
    ("murder", "murder.n"),
    ("poison", "poison.substance"),
    ("revenge", "revenge.n"),
    ("fate", "fate.n"),
    ("storm", "storm.weather"),
    ("grave", "grave.burial"),
    ("madness", "madness.insanity"),
    ("battle", "battle.fight"),
    ("war", "war.n"),
    ("throne", "throne.power"),
    ("kingdom", "kingdom.realm"),
    ("castle", "castle.building"),
    ("dagger", "dagger.knife"),
    ("witch", "witch.n"),
    ("prophecy", "prophecy.n"),
    ("soul", "soul.spirit"),
    ("friend", "friend.n"),
    ("enemy", "enemy.n"),
    ("father", "father.n"),
    ("mother", "mother.n"),
    ("daughter", "daughter.n"),
    ("son", "son.n"),
    ("brother", "brother.n"),
];

/// Thematic sub-pools for line text: a line stays within one theme, so
/// the immediate (radius-1) context of each word is maximally coherent
/// while farther rings mix themes — producing the paper's observation that
/// small spheres suit rich ambiguous data (Section 4.3.1).
pub static THEMES: &[&[Entry]] = &[
    // Royal court.
    &[
        ("king", "king.monarch"),
        ("queen", "queen.monarch"),
        ("crown", "crown.monarchy"),
        ("throne", "throne.power"),
        ("kingdom", "kingdom.realm"),
        ("castle", "castle.building"),
        ("prince", "prince.n"),
        ("duke", "duke.n"),
        ("lord", "lord.noble"),
        ("lady", "lady.noble"),
    ],
    // War.
    &[
        ("battle", "battle.fight"),
        ("war", "war.n"),
        ("sword", "sword.n"),
        ("dagger", "dagger.knife"),
        ("blood", "blood.fluid"),
        ("soldier", "soldier.n"),
        ("enemy", "enemy.military"),
        ("captain", "captain.n"),
        ("honor", "honor.respect"),
    ],
    // Love and kinship.
    &[
        ("love", "love.emotion"),
        ("heart", "heart.courage"),
        ("friend", "friend.n"),
        ("father", "father.n"),
        ("mother", "mother.n"),
        ("daughter", "daughter.n"),
        ("son", "son.n"),
        ("brother", "brother.n"),
        ("soul", "soul.spirit"),
    ],
    // Night and doom.
    &[
        ("death", "death.event"),
        ("night", "night.period"),
        ("ghost", "ghost.spirit"),
        ("grave", "grave.burial"),
        ("murder", "murder.n"),
        ("poison", "poison.substance"),
        ("revenge", "revenge.n"),
        ("fate", "fate.n"),
        ("storm", "storm.weather"),
        ("madness", "madness.insanity"),
        ("witch", "witch.n"),
        ("prophecy", "prophecy.n"),
    ],
];

/// Dramatis personae role words.
pub static PERSONAE: &[Entry] = &[
    ("king", "king.monarch"),
    ("queen", "queen.monarch"),
    ("prince", "prince.n"),
    ("duke", "duke.n"),
    ("lord", "lord.noble"),
    ("lady", "lady.noble"),
    ("ghost", "ghost.spirit"),
    ("messenger", "messenger.n"),
    ("servant", "servant.n"),
    ("soldier", "soldier.n"),
    ("captain", "captain.n"),
    ("fool", "fool.jester"),
    ("witch", "witch.n"),
];

/// Famous movie people: `(surname, concept key)`.
pub static MOVIE_STARS: &[Entry] = &[
    ("Kelly", "kelly.grace"),
    ("Stewart", "stewart.james"),
    ("Grant", "grant.cary"),
    ("Bergman", "bergman.ingrid"),
    ("Bogart", "bogart.humphrey"),
    ("Hepburn", "hepburn.audrey"),
    ("Monroe", "monroe.marilyn"),
];

/// Famous directors.
pub static DIRECTORS: &[Entry] = &[
    ("Hitchcock", "hitchcock.alfred"),
    ("Welles", "welles.orson"),
    ("Kubrick", "kubrick.stanley"),
    ("Ford", "ford.john"),
    ("Wilder", "wilder.billy"),
];

/// Movie genres.
pub static GENRES: &[Entry] = &[
    ("mystery", "mystery.story"),
    ("western", "western.genre"),
    ("comedy", "comedy.genre"),
    ("thriller", "thriller.n"),
    ("romance", "romance.story"),
    ("horror", "horror.genre"),
    ("drama", "drama.play"),
];

/// Products sold by the retail generator: concrete nouns.
pub static PRODUCTS: &[Entry] = &[
    ("camera", "camera.n"),
    ("guitar", "guitar.n"),
    ("piano", "piano.instrument"),
    ("phone", "phone.telephone"),
    ("sword", "sword.n"),
    ("curtain", "curtain.n"),
    ("costume", "costume.n"),
];

/// Product categories.
pub static CATEGORIES: &[Entry] = &[
    ("music", "music.n"),
    ("equipment", "equipment.n"),
    ("clothing", "clothing.n"),
    ("food", "food.substance"),
    ("furniture", "furniture.n"),
];

/// Product colors (the polysemous color words).
pub static COLORS: &[Entry] = &[
    ("rose", "rose.color"),
    ("violet", "violet.color"),
    ("coffee", "coffee.color"),
];

/// Review/description words (high-polysemy commerce vocabulary, the
/// Group 2 ambiguity driver).
pub static COMMERCE_WORDS: &[Entry] = &[
    ("product", "product.merchandise"),
    ("delivery", "delivery.goods"),
    ("price", "price.amount"),
    ("stock", "stock.inventory"),
    ("weight", "weight.heaviness"),
    ("model", "model.version"),
    ("brand", "brand.trademark"),
    ("package", "package.parcel"),
    ("store", "store.shop"),
    ("market", "market.place"),
    ("discount", "discount.reduction"),
    ("warranty", "warranty.n"),
    ("customer", "customer.n"),
    ("seller", "seller.n"),
    ("gift", "gift.present"),
    ("order", "order.purchase"),
    ("return", "return.goods"),
    ("quality", "quality.n"),
];

/// Database-flavored title words for SIGMOD articles.
pub static DB_WORDS: &[Entry] = &[
    ("database", "database.n"),
    ("query", "query.n"),
    ("index", "index.list"),
    ("record", "record.document"),
    ("information", "information.n"),
    ("knowledge", "cognition.n"),
    ("data", "information.n"),
    ("processing", "process.n"),
];

/// Book-title words for the bib dataset.
pub static BOOK_WORDS: &[Entry] = &[
    ("database", "database.n"),
    ("history", "history.study"),
    ("poetry", "verse.poetry"),
    ("music", "music.n"),
    ("botany", "botany.n"),
    ("information", "information.n"),
    ("knowledge", "cognition.n"),
];

/// CD title words.
pub static CD_TITLES: &[Entry] = &[
    ("blues", "blues.music"),
    ("soul", "soul.music"),
    ("rock", "rock.music"),
    ("jazz", "jazz.music"),
    ("folk", "folk.music"),
];

/// Countries for the CD catalog.
pub static COUNTRIES: &[Entry] = &[
    ("Norway", "norway.n"),
    ("USA", "america.n"),
    ("England", "england.n"),
    ("France", "france.n"),
    ("Italy", "italy.n"),
    ("Scotland", "scotland.n"),
];

/// Breakfast dishes.
pub static DISHES: &[Entry] = &[
    ("waffle", "waffle.food"),
    ("pancake", "pancake.n"),
    ("toast", "toast.bread"),
    ("omelet", "omelet.n"),
    ("salad", "salad.n"),
    ("soup", "soup.n"),
    ("pie", "pie.n"),
];

/// Menu description ingredients.
pub static INGREDIENTS: &[Entry] = &[
    ("egg", "egg.food"),
    ("cream", "cream.dairy"),
    ("syrup", "syrup.n"),
    ("berry", "berry.fruit"),
    ("honey", "honey.food"),
    ("butter", "butter.n"),
    ("sugar", "sugar.food"),
    ("milk", "milk.drink"),
    ("coffee", "coffee.drink"),
    ("juice", "juice.drink"),
    ("bacon", "bacon.n"),
    ("bread", "bread.food"),
];

/// Garden plants for the plant catalog.
pub static PLANTS: &[Entry] = &[
    ("rose", "rose.flower"),
    ("violet", "violet.flower"),
    ("tulip", "tulip.n"),
    ("daisy", "daisy.n"),
    ("fern", "fern.n"),
    ("lily", "lily.flower"),
    ("orchid", "orchid.n"),
    ("iris", "iris.flower"),
    ("columbine", "columbine.flower"),
    ("anemone", "anemone.flower"),
    ("marigold", "marigold.n"),
    ("primrose", "primrose.n"),
];

/// Light conditions for the plant catalog.
pub static LIGHT_CONDITIONS: &[Entry] = &[
    ("shade", "shade.shadow"),
    ("sun", "sun.light"),
    ("sunlight", "sun.light"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    /// Every pool entry's word must resolve to senses including its gold
    /// key in MiniWordNet (otherwise gold alignment would be impossible).
    #[test]
    fn all_pool_entries_resolve() {
        let sn = mini_wordnet();
        let pools: &[(&str, &[Entry])] = &[
            ("ELIZABETHAN", ELIZABETHAN),
            ("PERSONAE", PERSONAE),
            ("MOVIE_STARS", MOVIE_STARS),
            ("DIRECTORS", DIRECTORS),
            ("GENRES", GENRES),
            ("PRODUCTS", PRODUCTS),
            ("CATEGORIES", CATEGORIES),
            ("COLORS", COLORS),
            ("COMMERCE_WORDS", COMMERCE_WORDS),
            ("DB_WORDS", DB_WORDS),
            ("BOOK_WORDS", BOOK_WORDS),
            ("CD_TITLES", CD_TITLES),
            ("COUNTRIES", COUNTRIES),
            ("DISHES", DISHES),
            ("INGREDIENTS", INGREDIENTS),
            ("PLANTS", PLANTS),
            ("LIGHT_CONDITIONS", LIGHT_CONDITIONS),
        ];
        for (pool_name, pool) in pools {
            for (word, key) in *pool {
                let senses = sn.senses_normalized(word, lingproc::porter_stem);
                assert!(!senses.is_empty(), "{pool_name}: {word:?} has no senses");
                let keys: Vec<&str> = senses.iter().map(|&c| sn.concept(c).key.as_str()).collect();
                assert!(
                    keys.contains(key),
                    "{pool_name}: {word:?} gold {key:?} not among senses {keys:?}"
                );
            }
        }
    }

    /// Unknown names must really be unknown (no accidental senses).
    #[test]
    fn unknown_names_are_unknown() {
        let sn = mini_wordnet();
        for name in UNKNOWN_NAMES {
            let senses = sn.senses_normalized(name, lingproc::porter_stem);
            assert!(senses.is_empty(), "{name:?} unexpectedly has senses");
        }
    }

    #[test]
    fn pick_distinct_returns_distinct() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 13);
        let picked = pick_distinct(&mut rng, ELIZABETHAN, 5);
        assert_eq!(picked.len(), 5);
        let mut words: Vec<&str> = picked.iter().map(|e| e.0).collect();
        words.sort_unstable();
        words.dedup();
        assert_eq!(words.len(), 5);
    }
}
