//! The ten dataset generators (Table 3 of the paper).
//!
//! Every generator is deterministic in its `(dataset, doc_index, seed)`
//! inputs, emits documents from the dataset's DTD vocabulary, and attaches
//! gold senses to every token whose word exists in the reference network
//! (names invented for realism — authors, brands, people — stay
//! unannotated, exactly like out-of-vocabulary words in the real corpus).

pub mod amazon;
pub mod bib;
pub mod cd;
pub mod club;
pub mod food;
pub mod imdb;
pub mod personnel;
pub mod plants;
pub mod shakespeare;
pub mod sigmod;
pub mod vocab;

use rand::rngs::StdRng;
use rand::SeedableRng;
use semnet::SemanticNetwork;

use crate::docgen::AnnotatedDocument;
use crate::spec::DatasetId;

/// Generates document `index` of a dataset (0-based), deterministically
/// derived from `seed`.
pub fn generate_document(
    sn: &SemanticNetwork,
    dataset: DatasetId,
    index: usize,
    seed: u64,
) -> AnnotatedDocument {
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((dataset.number() as u64) << 32)
            .wrapping_add(index as u64),
    );
    match dataset {
        DatasetId::Shakespeare => shakespeare::generate(sn, &mut rng),
        DatasetId::Amazon => amazon::generate(sn, &mut rng),
        DatasetId::Sigmod => sigmod::generate(sn, &mut rng),
        DatasetId::Imdb => imdb::generate(sn, &mut rng),
        DatasetId::Bib => bib::generate(sn, &mut rng),
        DatasetId::CdCatalog => cd::generate(sn, &mut rng),
        DatasetId::FoodMenu => food::generate(sn, &mut rng),
        DatasetId::PlantCatalog => plants::generate(sn, &mut rng),
        DatasetId::Personnel => personnel::generate(sn, &mut rng),
        DatasetId::Club => club::generate(sn, &mut rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docgen::GoldSense;
    use semnet::mini_wordnet;
    use xsdf::senses::candidates_for_label;

    #[test]
    fn generation_is_deterministic() {
        let sn = mini_wordnet();
        for &ds in &DatasetId::ALL {
            let a = generate_document(sn, ds, 0, 42);
            let b = generate_document(sn, ds, 0, 42);
            assert_eq!(a.tree.len(), b.tree.len(), "{ds}");
            assert_eq!(a.gold.len(), b.gold.len(), "{ds}");
            let c = generate_document(sn, ds, 1, 42);
            // Different index gives a different document (usually size or
            // content); at minimum, gold concepts can differ. Just assert
            // the generator doesn't panic and produces nodes.
            assert!(c.tree.len() > 3, "{ds}");
        }
    }

    #[test]
    fn every_dataset_produces_gold() {
        let sn = mini_wordnet();
        for &ds in &DatasetId::ALL {
            let doc = generate_document(sn, ds, 0, 7);
            assert!(
                doc.gold_count() >= 5,
                "{ds} produced only {} gold nodes",
                doc.gold_count()
            );
        }
    }

    #[test]
    fn gold_senses_are_reachable_candidates() {
        // Invariant: for every gold node, the gold concept key is among the
        // label's candidate senses — otherwise no method could ever be
        // scored correct on it.
        let sn = mini_wordnet();
        for &ds in &DatasetId::ALL {
            for idx in 0..2 {
                let doc = generate_document(sn, ds, idx, 11);
                for (&node, gold) in &doc.gold {
                    let label = doc.tree.label(node);
                    let keys: Vec<String> = match candidates_for_label(sn, label) {
                        xsdf::SenseCandidates::Unknown => Vec::new(),
                        xsdf::SenseCandidates::Single(senses) => {
                            senses.iter().map(|&c| sn.concept(c).key.clone()).collect()
                        }
                        xsdf::SenseCandidates::Compound { first, second } => first
                            .iter()
                            .flat_map(|&a| {
                                second.iter().map(move |&b| {
                                    format!("{}+{}", sn.concept(a).key, sn.concept(b).key)
                                })
                            })
                            .collect(),
                    };
                    let gold_key = gold.key();
                    assert!(
                        keys.contains(&gold_key),
                        "{ds}: node {label:?} gold {gold_key:?} not among candidates {keys:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn node_counts_near_table3_targets() {
        let sn = mini_wordnet();
        for &ds in &DatasetId::ALL {
            let spec = ds.spec();
            let mut total = 0usize;
            for idx in 0..spec.num_docs {
                total += generate_document(sn, ds, idx, 3).tree.len();
            }
            let avg = total as f64 / spec.num_docs as f64;
            let target = spec.target_nodes_per_doc;
            assert!(
                (avg - target).abs() / target < 0.45,
                "{ds}: avg nodes {avg:.1} too far from Table 3 target {target:.1}"
            );
        }
    }

    #[test]
    fn documents_parse_back_from_xml() {
        let sn = mini_wordnet();
        for &ds in &DatasetId::ALL {
            let doc = generate_document(sn, ds, 0, 5);
            let xml = xmltree::serialize::to_string_pretty(&doc.doc);
            let reparsed = xmltree::parse(&xml).unwrap_or_else(|e| panic!("{ds}: {e}"));
            assert_eq!(reparsed.element_count(), doc.doc.element_count(), "{ds}");
        }
    }

    #[test]
    fn root_labels_match_grammars() {
        let sn = mini_wordnet();
        let expect = [
            (DatasetId::Shakespeare, "play"),
            (DatasetId::Sigmod, "proceedings"),
            (DatasetId::Personnel, "personnel"),
            (DatasetId::Club, "club"),
            (DatasetId::FoodMenu, "menu"),
        ];
        for (ds, root) in expect {
            let doc = generate_document(sn, ds, 0, 1);
            assert_eq!(doc.tree.label(doc.tree.root()), root, "{ds}");
        }
    }

    #[test]
    fn personnel_contains_the_papers_state_example() {
        // Section 4.2's Doc 9 example: child node "state" under "address".
        let sn = mini_wordnet();
        let doc = generate_document(sn, DatasetId::Personnel, 0, 1);
        let t = &doc.tree;
        let state = t
            .preorder()
            .find(|&n| t.label(n) == "state")
            .expect("state node");
        let parent = t.parent(state).unwrap();
        assert_eq!(t.label(parent), "address");
        assert_eq!(doc.gold[&state], GoldSense::single("state.province"));
    }
}
