//! Dataset 3 — SIGMOD Record proceedings (`ProceedingsPage.dtd`, Group 3).

use rand::Rng;
use semnet::SemanticNetwork;

use crate::docgen::{AnnotatedDocument, DocGen, GoldSense};
use crate::gen::vocab;
use crate::spec::DatasetId;

fn g(key: &str) -> Option<GoldSense> {
    Some(GoldSense::single(key))
}

pub(crate) fn generate<R: Rng>(sn: &SemanticNetwork, rng: &mut R) -> AnnotatedDocument {
    let (mut gen, root) = DocGen::new(sn, "proceedings", g("proceedings.record"));
    gen.leaf(
        root,
        "conference",
        g("conference.meeting"),
        &[("database", None), ("conference", None)],
    );
    let num_sections = rng.gen_range(1..=1);
    for _ in 0..num_sections {
        let section = gen.elem(root, "section", g("section.division"));
        let sw = vocab::pick(rng, vocab::DB_WORDS).to_owned();
        gen.leaf(
            section,
            "title",
            g("title.work"),
            &[(sw.0, Some(sw.1)), ("research", None)],
        );
        let num_articles = rng.gen_range(2..=2);
        for _ in 0..num_articles {
            let article = gen.elem(section, "article", g("article.text"));
            let words = vocab::pick_distinct(rng, vocab::DB_WORDS, 2);
            let mut title: Vec<(&str, Option<&str>)> = vec![("on", None)];
            for (word, key) in &words {
                title.push((word, Some(key)));
            }
            gen.leaf(article, "title", g("title.work"), &title);
            for _ in 0..rng.gen_range(1..=2) {
                gen.leaf(
                    article,
                    "author",
                    g("writer.n"),
                    &[(vocab::unknown_name(rng), None)],
                );
            }
            gen.plain_leaf(
                article,
                "volume",
                g("volume.series"),
                &format!("{}", rng.gen_range(10..40)),
            );
            gen.plain_leaf(
                article,
                "number",
                g("issue.periodical"),
                &format!("{}", rng.gen_range(1..4)),
            );
            let start = rng.gen_range(1..300);
            gen.plain_leaf(article, "page", g("page.sheet"), &format!("{start}"));
        }
    }
    gen.finish(DatasetId::Sigmod)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use semnet::mini_wordnet;

    #[test]
    fn proceedings_shape() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(9);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        assert_eq!(t.label(t.root()), "proceedings");
        for label in [
            "section", "article", "title", "author", "volume", "number", "page",
        ] {
            assert!(t.preorder().any(|n| t.label(n) == label), "missing {label}");
        }
        let size = t.len();
        assert!(
            (25..=55).contains(&size),
            "size {size} vs Table 3 target 39"
        );
    }

    #[test]
    fn article_titles_carry_db_gold() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(5);
        let doc = generate(sn, &mut rng);
        let gold_keys: Vec<String> = doc.gold.values().map(|g| g.key()).collect();
        assert!(gold_keys.iter().any(|k| k == "article.text"));
        assert!(gold_keys.iter().any(|k| k == "title.work"));
    }
}
