//! Dataset 10 — Niagara club membership records (`club.dtd`, Group 4).

use rand::Rng;
use semnet::SemanticNetwork;

use crate::docgen::{AnnotatedDocument, DocGen, GoldSense};
use crate::gen::vocab;
use crate::spec::DatasetId;

fn g(key: &str) -> Option<GoldSense> {
    Some(GoldSense::single(key))
}

pub(crate) fn generate<R: Rng>(sn: &SemanticNetwork, rng: &mut R) -> AnnotatedDocument {
    let (mut gen, root) = DocGen::new(sn, "club", g("club.association"));
    gen.leaf(
        root,
        "president",
        g("president.organization"),
        &[(vocab::unknown_name(rng), None)],
    );
    if rng.gen_bool(0.6) {
        gen.leaf(
            root,
            "treasurer",
            g("treasurer.n"),
            &[(vocab::unknown_name(rng), None)],
        );
    }
    let num_members = rng.gen_range(1..=2);
    for _ in 0..num_members {
        let member = gen.elem(root, "member", g("member.person"));
        gen.leaf(
            member,
            "name",
            g("name.label"),
            &[(vocab::unknown_name(rng), None)],
        );
        gen.plain_leaf(
            member,
            "age",
            g("age.duration"),
            &format!("{}", rng.gen_range(18..80)),
        );
        gen.plain_leaf(
            member,
            "phone",
            g("phone.telephone"),
            &format!("{}", rng.gen_range(1000000..9999999)),
        );
        if rng.gen_bool(0.5) {
            gen.leaf(
                member,
                "interest",
                g("interest.hobby"),
                &[(match rng.gen_range(0..3) {
                    0 => ("music", Some("music.n")),
                    1 => ("poetry", Some("verse.poetry")),
                    _ => ("garden", Some("garden.n")),
                })],
            );
        }
    }
    gen.leaf(
        root,
        "meeting",
        g("meeting.gathering"),
        &[("Tuesday", None)],
    );
    gen.finish(DatasetId::Club)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use semnet::mini_wordnet;

    #[test]
    fn club_shape() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(16);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        assert_eq!(t.label(t.root()), "club");
        for label in ["president", "member", "name", "age", "phone", "meeting"] {
            assert!(t.preorder().any(|n| t.label(n) == label), "missing {label}");
        }
    }

    #[test]
    fn member_gold_is_person_sense() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(17);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        let member = t.preorder().find(|&n| t.label(n) == "member").unwrap();
        assert_eq!(doc.gold[&member], GoldSense::single("member.person"));
    }

    #[test]
    fn size_near_target() {
        let sn = mini_wordnet();
        let mut total = 0;
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            total += generate(sn, &mut rng).tree.len();
        }
        let avg = total as f64 / 6.0;
        assert!(
            (10.0..=24.0).contains(&avg),
            "avg {avg} vs Table 3 target 15.5"
        );
    }
}
