//! Dataset 8 — W3Schools plant catalog (`plant_catalog.dtd`, Group 4).

use rand::Rng;
use semnet::SemanticNetwork;

use crate::docgen::{AnnotatedDocument, DocGen, GoldSense};
use crate::gen::vocab;
use crate::spec::DatasetId;

fn g(key: &str) -> Option<GoldSense> {
    Some(GoldSense::single(key))
}

pub(crate) fn generate<R: Rng>(sn: &SemanticNetwork, rng: &mut R) -> AnnotatedDocument {
    let (mut gen, root) = DocGen::new(sn, "catalog", g("catalog.list"));
    let num_plants = rng.gen_range(1..=1);
    for _ in 0..num_plants {
        let plant = gen.elem(root, "plant", g("plant.organism"));
        let species = vocab::pick(rng, vocab::PLANTS).to_owned();
        gen.leaf(
            plant,
            "common",
            g("common_name.n"),
            &[(species.0, Some(species.1))],
        );
        gen.leaf(
            plant,
            "botanical",
            g("botanical.a"),
            &[(vocab::unknown_name(rng), None)],
        );
        gen.plain_leaf(
            plant,
            "zone",
            g("zone.climate"),
            &format!("{}", rng.gen_range(3..9)),
        );
        let light = vocab::pick(rng, vocab::LIGHT_CONDITIONS).to_owned();
        gen.leaf(
            plant,
            "light",
            g("light.radiation"),
            &[(light.0, Some(light.1))],
        );
        gen.plain_leaf(
            plant,
            "price",
            g("price.amount"),
            &format!("{}", rng.gen_range(2..12)),
        );
        if rng.gen_bool(0.6) {
            gen.leaf(
                plant,
                "availability",
                g("availability.n"),
                &[("spring", Some("spring.season"))],
            );
        }
    }
    gen.finish(DatasetId::PlantCatalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use semnet::mini_wordnet;

    #[test]
    fn plant_catalog_shape() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(13);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        assert_eq!(t.label(t.root()), "catalog");
        for label in ["plant", "common", "botanical", "zone", "light", "price"] {
            assert!(t.preorder().any(|n| t.label(n) == label), "missing {label}");
        }
        let size = t.len();
        assert!(
            (8..=18).contains(&size),
            "size {size} vs Table 3 target 11.7"
        );
    }

    #[test]
    fn light_leaf_disambiguates_radiation() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(21);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        let light = t.preorder().find(|&n| t.label(n) == "light").unwrap();
        assert_eq!(doc.gold[&light], GoldSense::single("light.radiation"));
    }
}
