//! Dataset 4 — IMDB movie records (`movies.dtd`, Group 3). The dataset of
//! the paper's Figure 1.

use rand::Rng;
use semnet::SemanticNetwork;

use crate::docgen::{AnnotatedDocument, DocGen, GoldSense};
use crate::gen::vocab;
use crate::spec::DatasetId;

fn g(key: &str) -> Option<GoldSense> {
    Some(GoldSense::single(key))
}

pub(crate) fn generate<R: Rng>(sn: &SemanticNetwork, rng: &mut R) -> AnnotatedDocument {
    let (mut gen, root) = DocGen::new(sn, "movies", g("film.movie"));
    let movie = gen.elem(root, "movie", g("film.movie"));
    gen.attr(
        movie,
        "year",
        g("year.calendar"),
        &[(
            match rng.gen_range(0..4) {
                0 => "1954",
                1 => "1958",
                2 => "1960",
                _ => "1946",
            },
            None,
        )],
    );
    // Title: one or two evocative words.
    let title_word = match rng.gen_range(0..4) {
        0 => ("window", Some("window.n")),
        1 => ("vertigo", Some("vertigo.film")),
        2 => ("storm", Some("storm.weather")),
        _ => ("night", Some("night.period")),
    };
    gen.leaf(
        movie,
        "title",
        g("title.work"),
        &[("the", None), title_word],
    );
    let director = vocab::pick(rng, vocab::DIRECTORS).to_owned();
    gen.leaf(
        movie,
        "director",
        g("director.film"),
        &[(director.0, Some(director.1))],
    );
    let genre = vocab::pick(rng, vocab::GENRES).to_owned();
    gen.leaf(movie, "genre", g("genre.kind"), &[(genre.0, Some(genre.1))]);
    let cast = gen.elem(movie, "cast", g("cast.actors"));
    for (star, key) in vocab::pick_distinct(rng, vocab::MOVIE_STARS, 2) {
        gen.leaf(cast, "star", g("star.performer"), &[(star, Some(key))]);
    }
    if rng.gen_bool(0.5) {
        gen.leaf(
            movie,
            "plot",
            g("plot.story"),
            &[
                ("a", None),
                ("photographer", Some("photographer.n")),
                ("spies", None),
                ("on", None),
                ("his", None),
                ("neighbors", Some("neighbor.n")),
            ],
        );
    }
    gen.finish(DatasetId::Imdb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use semnet::mini_wordnet;

    #[test]
    fn figure1_shape() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(0);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        // "movies" stems to "movi"? No: "movies" → unknown, stem "movi"
        // unknown → kept as "movies"... the lexicon has "movie" so the stem
        // fallback tries porter("movies") = "movi" which is NOT "movie".
        // Hence the root label is whatever pre-processing decided; assert
        // the cast/star structure instead.
        for label in ["movie", "cast", "star", "director", "genre", "title"] {
            assert!(t.preorder().any(|n| t.label(n) == label), "missing {label}");
        }
        let size = t.len();
        assert!(
            (12..=25).contains(&size),
            "size {size} vs Table 3 target 15.5"
        );
    }

    #[test]
    fn stars_have_person_gold() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(8);
        let doc = generate(sn, &mut rng);
        let star_golds: Vec<String> = doc
            .gold
            .iter()
            .filter(|(n, _)| {
                doc.tree.parent(**n).map(|p| doc.tree.label(p) == "star") == Some(true)
            })
            .map(|(_, g)| g.key())
            .collect();
        assert_eq!(star_golds.len(), 2);
        for k in &star_golds {
            assert!(
                [
                    "kelly.grace",
                    "stewart.james",
                    "grant.cary",
                    "bergman.ingrid",
                    "bogart.humphrey",
                    "hepburn.audrey",
                    "monroe.marilyn"
                ]
                .contains(&k.as_str()),
                "unexpected star gold {k}"
            );
        }
    }
}
