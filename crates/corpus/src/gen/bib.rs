//! Dataset 5 — Niagara bibliography (`bib.dtd`, Group 3).

use rand::Rng;
use semnet::SemanticNetwork;

use crate::docgen::{AnnotatedDocument, DocGen, GoldSense};
use crate::gen::vocab;
use crate::spec::DatasetId;

fn g(key: &str) -> Option<GoldSense> {
    Some(GoldSense::single(key))
}

pub(crate) fn generate<R: Rng>(sn: &SemanticNetwork, rng: &mut R) -> AnnotatedDocument {
    let (mut gen, root) = DocGen::new(sn, "bib", g("bibliography.n"));
    let num_books = rng.gen_range(2..=2);
    for _ in 0..num_books {
        let book = gen.elem(root, "book", g("book.publication"));
        let words = vocab::pick_distinct(rng, vocab::BOOK_WORDS, 2);
        let mut title: Vec<(&str, Option<&str>)> = Vec::new();
        for (i, (word, key)) in words.iter().enumerate() {
            title.push((word, if i == 0 { Some(key) } else { None }));
        }
        gen.leaf(book, "title", g("title.work"), &title);
        gen.leaf(
            book,
            "author",
            g("writer.n"),
            &[(vocab::unknown_name(rng), None)],
        );
        gen.leaf(
            book,
            "publisher",
            g("publisher.company"),
            &[(vocab::unknown_name(rng), None)],
        );
        gen.plain_leaf(
            book,
            "year",
            g("year.calendar"),
            &format!("{}", rng.gen_range(1970..2015)),
        );
        gen.plain_leaf(
            book,
            "price",
            g("price.amount"),
            &format!("{}", rng.gen_range(15..120)),
        );
    }
    if rng.gen_bool(0.6) {
        let article = gen.elem(root, "article", g("article.text"));
        let w = vocab::pick(rng, vocab::DB_WORDS).to_owned();
        gen.leaf(article, "title", g("title.work"), &[(w.0, Some(w.1))]);
        gen.leaf(
            article,
            "author",
            g("writer.n"),
            &[(vocab::unknown_name(rng), None)],
        );
        gen.leaf(
            article,
            "journal",
            g("journal.periodical"),
            &[("information", None), ("systems", None)],
        );
    }
    gen.finish(DatasetId::Bib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use semnet::mini_wordnet;

    #[test]
    fn bib_shape_and_size() {
        let sn = mini_wordnet();
        let mut total = 0;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let doc = generate(sn, &mut rng);
            let t = &doc.tree;
            assert_eq!(t.label(t.root()), "bib");
            assert!(t.preorder().any(|n| t.label(n) == "book"));
            assert!(t.preorder().any(|n| t.label(n) == "publisher"));
            total += t.len();
        }
        let avg = total as f64 / 5.0;
        assert!(
            (18.0..=38.0).contains(&avg),
            "avg {avg} vs Table 3 target 26.5"
        );
    }
}
