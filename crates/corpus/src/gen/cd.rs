//! Dataset 6 — W3Schools CD catalog (`cd_catalog.dtd`, Group 4).

use rand::Rng;
use semnet::SemanticNetwork;

use crate::docgen::{AnnotatedDocument, DocGen, GoldSense};
use crate::gen::vocab;
use crate::spec::DatasetId;

fn g(key: &str) -> Option<GoldSense> {
    Some(GoldSense::single(key))
}

pub(crate) fn generate<R: Rng>(sn: &SemanticNetwork, rng: &mut R) -> AnnotatedDocument {
    let (mut gen, root) = DocGen::new(sn, "catalog", g("catalog.list"));
    let num_cds = rng.gen_range(1..=2);
    for _ in 0..num_cds {
        let cd = gen.elem(root, "cd", g("cd.disc"));
        let title = vocab::pick(rng, vocab::CD_TITLES).to_owned();
        gen.leaf(cd, "title", g("title.work"), &[(title.0, Some(title.1))]);
        gen.leaf(
            cd,
            "artist",
            g("artist.n"),
            &[(vocab::unknown_name(rng), None)],
        );
        let country = vocab::pick(rng, vocab::COUNTRIES).to_owned();
        gen.leaf(
            cd,
            "country",
            g("country.nation"),
            &[(country.0, Some(country.1))],
        );
        gen.leaf(
            cd,
            "company",
            g("company.firm"),
            &[(vocab::unknown_name(rng), None)],
        );
        gen.plain_leaf(
            cd,
            "price",
            g("price.amount"),
            &format!("{}", rng.gen_range(8..25)),
        );
        gen.plain_leaf(
            cd,
            "year",
            g("year.calendar"),
            &format!("{}", rng.gen_range(1970..2000)),
        );
        if rng.gen_bool(0.5) {
            gen.plain_leaf(
                cd,
                "track",
                g("track.song"),
                &format!("{}", rng.gen_range(2..14)),
            );
        }
    }
    gen.finish(DatasetId::CdCatalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use semnet::mini_wordnet;

    #[test]
    fn cd_catalog_shape() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(6);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        assert_eq!(t.label(t.root()), "catalog");
        for label in [
            "cd", "title", "artist", "country", "company", "price", "year",
        ] {
            assert!(t.preorder().any(|n| t.label(n) == label), "missing {label}");
        }
        assert!(t.max_depth() <= 3, "flat catalog records");
    }

    #[test]
    fn size_near_target() {
        let sn = mini_wordnet();
        let mut total = 0;
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            total += generate(sn, &mut rng).tree.len();
        }
        let avg = total as f64 / 6.0;
        assert!(
            (11.0..=26.0).contains(&avg),
            "avg {avg} vs Table 3 target 16.5"
        );
    }
}
