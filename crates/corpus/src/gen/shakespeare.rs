//! Dataset 1 — Shakespeare collection (`shakespeare.dtd`, Group 1).
//!
//! Deep PLAY / PERSONAE / ACT / SCENE / SPEECH / LINE structure with highly
//! polysemous tag labels (*play*, *act*, *scene*, *line*, *title*) and
//! Elizabethan content words: the paper's high-ambiguity, rich-structure
//! group.

use rand::Rng;
use semnet::SemanticNetwork;

use crate::docgen::{AnnotatedDocument, DocGen, GoldSense};
use crate::gen::vocab::{self, Entry};
use crate::spec::DatasetId;

fn g(key: &str) -> Option<GoldSense> {
    Some(GoldSense::single(key))
}

/// Builds the word list of one spoken line: six content words mixing a
/// dominant theme (royal court, war, love, doom) with a secondary one —
/// coherent enough to disambiguate, figurative enough that a human reader
/// still feels the ambiguity (verse crosses imagery freely).
fn line_words<R: Rng>(rng: &mut R) -> Vec<Entry> {
    let primary = vocab::THEMES[rng.gen_range(0..vocab::THEMES.len())];
    let secondary = vocab::THEMES[rng.gen_range(0..vocab::THEMES.len())];
    let mut words = vocab::pick_distinct(rng, primary, 3);
    words.extend(vocab::pick_distinct(rng, secondary, 3));
    words.dedup_by_key(|e| e.0);
    words
}

pub(crate) fn generate<R: Rng>(sn: &SemanticNetwork, rng: &mut R) -> AnnotatedDocument {
    let (mut gen, play) = DocGen::new(sn, "PLAY", g("play.drama"));

    // Play title, e.g. "The Tragedy of the King of Denmark".
    let title_noun = vocab::pick(rng, vocab::PERSONAE).to_owned();
    gen.leaf(
        play,
        "TITLE",
        g("title.work"),
        &[
            ("The", None),
            ("Tragedy", Some("tragedy.drama")),
            ("of", None),
            ("the", None),
            (title_noun.0, Some(title_noun.1)),
        ],
    );

    // Dramatis personae.
    let personae = gen.elem(play, "PERSONAE", g("cast.actors"));
    let roles = {
        let n = rng.gen_range(4..=6);
        vocab::pick_distinct(rng, vocab::PERSONAE, n)
    };
    for (word, key) in &roles {
        let name = vocab::unknown_name(rng);
        gen.leaf(
            personae,
            "PERSONA",
            g("character.role"),
            &[(name, None), ("the", None), (word, Some(key))],
        );
    }

    // Acts, scenes, speeches, lines.
    let num_acts = 2;
    for act_no in 1..=num_acts {
        let act = gen.elem(play, "ACT", g("act.play-division"));
        gen.plain_leaf(act, "TITLE", g("title.work"), &format!("Act {act_no}"));
        let num_scenes = rng.gen_range(2..=2);
        for scene_no in 1..=num_scenes {
            let scene = gen.elem(act, "SCENE", g("scene.play-division"));
            let place = if rng.gen_bool(0.5) {
                ("castle", "castle.building")
            } else {
                ("street", "street.n")
            };
            let scene_title = format!("Scene {scene_no} the {}", place.0);
            let scene_title_words: Vec<(&str, Option<&str>)> = scene_title
                .split_whitespace()
                .map(|w| {
                    if w == place.0 {
                        (place.0, Some(place.1))
                    } else if w == "Scene" {
                        ("Scene", Some("scene.play-division"))
                    } else {
                        (w, None)
                    }
                })
                .collect();
            let st = gen.elem(scene, "TITLE", g("title.work"));
            gen.text(st, &scene_title_words);
            // A stage direction: "Enter the <role>".
            let dir_role = vocab::pick(rng, vocab::PERSONAE).to_owned();
            gen.leaf(
                scene,
                "STAGEDIR",
                g("stage_direction.n"),
                &[
                    ("Enter", None),
                    ("the", None),
                    (dir_role.0, Some(dir_role.1)),
                ],
            );
            let num_speeches = 2;
            for speech_no in 0..num_speeches {
                // Repeated structural tags are one annotation decision: a
                // representative subset carries gold (like the paper's
                // testers, who rated 12-13 nodes per document rather than
                // every one of a play's dozens of identical LINE tags).
                let tag_gold = speech_no == 0;
                let speech = gen.elem(
                    scene,
                    "SPEECH",
                    if tag_gold {
                        g("speech.communication")
                    } else {
                        None
                    },
                );
                let speaker = vocab::pick(rng, vocab::PERSONAE).to_owned();
                gen.leaf(
                    speech,
                    "SPEAKER",
                    if tag_gold { g("speaker.person") } else { None },
                    &[(speaker.0, Some(speaker.1))],
                );
                let num_lines = rng.gen_range(2..=2);
                for line_no in 0..num_lines {
                    let words = line_words(rng);
                    let mut spec: Vec<(&str, Option<&str>)> = vec![("the", None)];
                    for (i, (word, key)) in words.iter().enumerate() {
                        // Only the first three content words carry gold:
                        // the rest still shape every method's context but
                        // keep the evaluated-target density realistic.
                        let gold = if i < 3 { Some(*key) } else { None };
                        spec.push((word, gold));
                        if i == 0 {
                            spec.push(("of", None));
                        }
                    }
                    let line_gold = tag_gold && line_no == 0;
                    gen.leaf(
                        speech,
                        "LINE",
                        if line_gold { g("line.text") } else { None },
                        &spec,
                    );
                }
            }
        }
    }
    gen.finish(DatasetId::Shakespeare)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use semnet::mini_wordnet;

    #[test]
    fn structure_is_deep_and_labeled() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(1);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        assert_eq!(t.label(t.root()), "play");
        assert!(t.max_depth() >= 5, "speech lines should nest deeply");
        // Tag vocabulary present.
        for label in ["act", "scene", "speech", "speaker", "line", "title"] {
            assert!(t.preorder().any(|n| t.label(n) == label), "missing {label}");
        }
    }

    #[test]
    fn node_count_in_group1_range() {
        let sn = mini_wordnet();
        let mut sizes = Vec::new();
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            sizes.push(generate(sn, &mut rng).tree.len());
        }
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            (120.0..=260.0).contains(&avg),
            "avg {avg} out of the Table 3 ballpark (192)"
        );
    }

    #[test]
    fn lines_carry_elizabethan_gold() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(3);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        let line_tokens: Vec<_> = t
            .preorder()
            .filter(|&n| {
                t.node(n).kind == xmltree::NodeKind::ValueToken
                    && t.parent(n).map(|p| t.label(p) == "line") == Some(true)
            })
            .collect();
        assert!(!line_tokens.is_empty());
        let annotated = line_tokens
            .iter()
            .filter(|n| doc.gold.contains_key(n))
            .count();
        assert!(
            annotated * 2 >= line_tokens.len(),
            "most line tokens carry gold"
        );
    }
}
