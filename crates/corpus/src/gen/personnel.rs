//! Dataset 9 — Niagara personnel records (`personnel.dtd`, Group 4).
//!
//! Contains the paper's Section 4.2 example: the node `state` under
//! `address`, whose meaning is obvious to humans (postal state) but
//! lexically carries WordNet's 8 senses — the document with the most
//! negative human/system ambiguity correlation in Table 2.

use rand::Rng;
use semnet::SemanticNetwork;

use crate::docgen::{AnnotatedDocument, DocGen, GoldSense};
use crate::gen::vocab;
use crate::spec::DatasetId;

fn g(key: &str) -> Option<GoldSense> {
    Some(GoldSense::single(key))
}

pub(crate) fn generate<R: Rng>(sn: &SemanticNetwork, rng: &mut R) -> AnnotatedDocument {
    let (mut gen, root) = DocGen::new(sn, "personnel", g("personnel.staff"));
    let num_persons = if rng.gen_bool(0.4) { 2 } else { 1 };
    for i in 0..num_persons {
        let person = gen.elem(root, "person", g("person.n"));
        let name = gen.elem(person, "name", g("name.label"));
        gen.leaf(
            name,
            "family",
            g("family.lineage"),
            &[(vocab::unknown_name(rng), None)],
        );
        gen.leaf(
            name,
            "given",
            g("given_name.n"),
            &[(vocab::unknown_name(rng), None)],
        );
        if i == 0 {
            gen.leaf(
                person,
                "email",
                g("email.message"),
                &[(vocab::unknown_name(rng), None)],
            );
        }
        // The first person always carries the paper's address/state block.
        if i == 0 {
            let address = gen.elem(person, "address", g("address.location"));
            gen.leaf(
                address,
                "street",
                g("street.n"),
                &[(vocab::unknown_name(rng), None)],
            );
            gen.leaf(
                address,
                "city",
                g("city.n"),
                &[(vocab::unknown_name(rng), None)],
            );
            gen.plain_leaf(address, "state", g("state.province"), "NY");
            gen.plain_leaf(
                address,
                "zip",
                g("zip.code"),
                &format!("{}", rng.gen_range(10000..99999)),
            );
        }
        if i == 0 {
            gen.plain_leaf(
                person,
                "office",
                g("office.room"),
                &format!("{}", rng.gen_range(100..400)),
            );
        }
    }
    gen.finish(DatasetId::Personnel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use semnet::mini_wordnet;

    #[test]
    fn personnel_shape() {
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(14);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        assert_eq!(t.label(t.root()), "personnel");
        for label in [
            "person", "name", "family", "given", "email", "address", "state",
        ] {
            assert!(t.preorder().any(|n| t.label(n) == label), "missing {label}");
        }
    }

    #[test]
    fn given_is_the_compound_concept_probe() {
        // "given" matches the lemma on given_name.n directly; "FirstName"
        // style compounds are exercised elsewhere. Here we assert the gold.
        let sn = mini_wordnet();
        let mut rng = StdRng::seed_from_u64(15);
        let doc = generate(sn, &mut rng);
        let t = &doc.tree;
        let given = t.preorder().find(|&n| t.label(n) == "given").unwrap();
        assert_eq!(doc.gold[&given], GoldSense::single("given_name.n"));
    }

    #[test]
    fn size_near_target() {
        let sn = mini_wordnet();
        let mut total = 0;
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            total += generate(sn, &mut rng).tree.len();
        }
        let avg = total as f64 / 6.0;
        assert!(
            (13.0..=30.0).contains(&avg),
            "avg {avg} vs Table 3 target 19"
        );
    }
}
