//! The simulated human annotator panel (substituting the paper's five
//! graduate-student raters of Section 4.2).
//!
//! The paper's central observation about Table 2 is that **humans judge
//! ambiguity contextually** — "the meaning of child node label *state*
//! under node label *address* was obvious for our human testers (providing
//! an ambiguity score of 0/4)" — while `Amb_Deg` judges it lexically from
//! the sense inventory. The simulated rater reproduces exactly that
//! behaviour:
//!
//! 1. it scores every candidate sense of the node in its local context
//!    (concept-based evidence at radius 1, what a human skimming the
//!    neighborhood perceives);
//! 2. *clarity* is how far the best sense stands out from the runner-up —
//!    if the context makes one reading obvious, perceived ambiguity
//!    collapses to ≈ 0 regardless of the sense count;
//! 3. residual ambiguity grows with the (log-scaled) number of senses;
//! 4. each of the five raters adds independent seeded noise and rounds to
//!    the paper's 0–4 integer scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semnet::SemanticNetwork;
use semsim::CombinedSimilarity;
use xmltree::{NodeId, XmlTree};
use xsdf::concept_based::ConceptContext;
use xsdf::senses::{disambiguation_candidates, SenseCandidates};

/// Number of simulated raters (the paper used five testers).
pub const PANEL_SIZE: usize = 5;

/// The 0–4 integer ratings of each panel member for one node.
#[derive(Debug, Clone)]
pub struct NodeRatings {
    /// Rated node.
    pub node: NodeId,
    /// One rating per rater, each in `0..=4`.
    pub ratings: [u8; PANEL_SIZE],
}

impl NodeRatings {
    /// The panel's mean rating.
    pub fn mean(&self) -> f64 {
        self.ratings.iter().map(|&r| r as f64).sum::<f64>() / PANEL_SIZE as f64
    }
}

/// Document-level calmness: how unambiguous the document's vocabulary is
/// on average, in `\[0, 1\]`. Raters anchor on it (a contrast effect): in a
/// mostly-clear record document they resolve the remaining polysemous tags
/// by elimination, while uniformly ambiguous material offers no anchor.
pub fn document_calmness(sn: &SemanticNetwork, tree: &XmlTree) -> f64 {
    // Only the structural vocabulary (tag labels) sets the anchor: that is
    // what tells a reader "this is a calm record document" vs "this is
    // uniformly ambiguous material".
    let mut senses_sum = 0.0f64;
    let mut counted = 0usize;
    for n in tree.preorder() {
        if tree.node(n).kind == xmltree::NodeKind::ValueToken {
            continue;
        }
        let s = sn
            .senses_normalized(tree.label(n), lingproc::porter_stem)
            .len();
        if s > 0 {
            senses_sum += s as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        return 1.0;
    }
    let avg = senses_sum / counted as f64;
    (1.0 - (avg - 2.0) / 2.0).clamp(0.0, 1.0)
}

/// The perceived (contextual) ambiguity of one node in `\[0, 1\]`, before
/// rater noise (computing the document calmness internally; `rate_tree`
/// precomputes it).
pub fn perceived_ambiguity(sn: &SemanticNetwork, tree: &XmlTree, node: NodeId) -> f64 {
    perceived_with_calmness(sn, tree, node, document_calmness(sn, tree))
}

/// The rater model core with the document calmness supplied by the caller.
///
/// Three behavioural effects compose the perceived ambiguity:
///
/// * **Structural clarity** — a tag label inside a well-populated record
///   reads unambiguously to a human ("*state* under *address* is obviously
///   the postal state"), however many senses the dictionary lists; only
///   *unambiguous* neighbors clarify. A free text token (verse, a review
///   sentence) keeps its lexical ambiguity unless the immediate context
///   decisively selects one reading.
/// * **Anchoring** — tags in calm documents (see [`document_calmness`])
///   get resolved by elimination even at high sense counts.
/// * **Familiarity** — raters over-report ambiguity for words they find
///   rare or bookish, and under-report it for everyday words; since
///   everyday words are the polysemous ones (Zipf), this pulls the
///   correlation with the lexicon-driven `Amb_Deg` *down* on data whose
///   context already feels clear — the paper's Groups 2–4 observation.
pub fn perceived_with_calmness(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    node: NodeId,
    calmness: f64,
) -> f64 {
    let kind = tree.node(node).kind;
    let candidates = disambiguation_candidates(sn, tree.label(node), kind);
    let senses: Vec<_> = match candidates {
        SenseCandidates::Unknown => return 0.0,
        SenseCandidates::Single(senses) => senses,
        SenseCandidates::Compound { mut first, second } => {
            first.extend(second);
            first
        }
    };
    if senses.len() <= 1 {
        return 0.0;
    }
    // Residual lexical ambiguity, log-scaled against a "feels very
    // ambiguous" anchor of 8 senses (the paper's state example).
    let lexical = ((senses.len() as f64).ln_1p() / 9.0f64.ln()).min(1.0);

    let clarity = if kind == xmltree::NodeKind::ValueToken {
        // Content word: how decisively does local evidence single out one
        // reading? Near-synonymous rivals don't count (the
        // province/territory readings of "state" feel like one).
        let ctx = ConceptContext::build(sn, tree, node, 1);
        let sim = CombinedSimilarity::default();
        let scores: Vec<(semnet::ConceptId, f64)> = senses
            .iter()
            .map(|&s| (s, ctx.score_single(sn, &sim, s)))
            .collect();
        let &(best_sense, best) = scores
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        let rival = scores
            .iter()
            .filter(|&&(s, _)| s != best_sense && sim.similarity(sn, best_sense, s) < 0.5)
            .map(|&(_, score)| score)
            .fold(0.0f64, f64::max);
        // Even decisive context only halves a reader's felt ambiguity for
        // running text — poetry and prose keep their figurative shimmer.
        if best <= 0.0 {
            0.0
        } else {
            0.5 * ((best - rival) / best).clamp(0.0, 1.0)
        }
    } else {
        // Tag label: humans read record semantics off the surrounding
        // structure — but only *unambiguous* neighbors clarify. A `state`
        // among `street`/`city`/`zip` is obvious; a `line` among `act`,
        // `scene` and `title` (all just as polysemous) stays murky, which
        // is exactly the Group 1 / Group 4 divergence of Table 2.
        let clarifying = xmltree::distance::sphere(tree, node, 2)
            .into_iter()
            .filter(|&(n, _)| {
                sn.senses_normalized(tree.label(n), lingproc::porter_stem)
                    .len()
                    == 1
            })
            .count();
        (clarifying as f64 / 3.0).min(1.0)
    };

    // Familiarity: everyday words (high corpus frequency of the dominant
    // sense) feel unambiguous; rare ones feel uncertain.
    let first_freq = sn.frequency(senses[0]) as f64;
    let unfamiliarity = 1.0 - ((1.0 + first_freq).ln() / (521.0f64).ln()).min(1.0);

    // The anchoring effect: tag labels inside calm documents get resolved
    // by elimination even when their own sense count is high; free text
    // does not benefit (reading verse stays hard in any document).
    let anchor = if kind == xmltree::NodeKind::ValueToken {
        1.0
    } else {
        (1.0 - calmness).powf(1.7)
    };

    (0.7 * lexical * (1.0 - clarity) * anchor + 0.3 * unfamiliarity).clamp(0.0, 1.0)
}

/// Rates every node of a tree with the full panel. Deterministic in
/// `seed`.
pub fn rate_tree(sn: &SemanticNetwork, tree: &XmlTree, seed: u64) -> Vec<NodeRatings> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-rater bias: some testers rate systematically higher.
    let biases: Vec<f64> = (0..PANEL_SIZE).map(|_| rng.gen_range(-0.3..0.3)).collect();
    let calmness = document_calmness(sn, tree);
    tree.preorder()
        .map(|node| {
            let perceived = perceived_with_calmness(sn, tree, node, calmness);
            let mut ratings = [0u8; PANEL_SIZE];
            for (r, rating) in ratings.iter_mut().enumerate() {
                let noise: f64 = rng.gen_range(-0.6..0.6);
                let value = 4.0 * perceived + biases[r] + noise;
                *rating = value.round().clamp(0.0, 4.0) as u8;
            }
            NodeRatings { node, ratings }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;
    use xmltree::tree::TreeBuilder;
    use xsdf::LingTokenizer;

    fn tree(xml: &str) -> XmlTree {
        let doc = xmltree::parse(xml).unwrap();
        TreeBuilder::with_tokenizer(LingTokenizer::new(mini_wordnet()))
            .build(&doc)
            .unwrap()
            .tree
    }

    #[test]
    fn state_under_address_is_obvious_to_humans() {
        // The paper's personnel example: raters give ≈ 0 despite 8 senses.
        let sn = mini_wordnet();
        let t = tree("<person><address><street/><city/><state/><zip/></address></person>");
        let state = t.preorder().find(|&n| t.label(n) == "state").unwrap();
        let perceived = perceived_ambiguity(sn, &t, state);
        assert!(
            perceived < 0.45,
            "state under address should look clear, got {perceived}"
        );
    }

    #[test]
    fn isolated_polysemous_word_looks_ambiguous() {
        let sn = mini_wordnet();
        // "play" with an uninformative neighborhood.
        let t = tree("<root><play/><thing/><stuff/></root>");
        let play = t.preorder().find(|&n| t.label(n) == "play").unwrap();
        let perceived = perceived_ambiguity(sn, &t, play);
        assert!(
            perceived > 0.3,
            "context-free 'play' should look ambiguous, got {perceived}"
        );
    }

    #[test]
    fn monosemous_and_unknown_words_rate_zero() {
        let sn = mini_wordnet();
        let t = tree("<club><treasurer/><zorbleflux/></club>");
        for label in ["treasurer", "zorbleflux"] {
            let n = t.preorder().find(|&n| t.label(n) == label).unwrap();
            assert_eq!(perceived_ambiguity(sn, &t, n), 0.0, "{label}");
        }
    }

    #[test]
    fn panel_is_deterministic_and_bounded() {
        let sn = mini_wordnet();
        let t = tree("<films><picture><cast><star>Kelly</star></cast></picture></films>");
        let a = rate_tree(sn, &t, 99);
        let b = rate_tree(sn, &t, 99);
        assert_eq!(a.len(), t.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.ratings, rb.ratings);
            for &r in &ra.ratings {
                assert!(r <= 4);
            }
        }
        // A different seed changes at least one rating somewhere.
        let c = rate_tree(sn, &t, 100);
        assert!(a.iter().zip(&c).any(|(x, y)| x.ratings != y.ratings));
    }

    #[test]
    fn mean_rating_reflects_perceived_ambiguity() {
        let sn = mini_wordnet();
        let t = tree("<root><play/><treasurer/></root>");
        let ratings = rate_tree(sn, &t, 7);
        let play = t.preorder().find(|&n| t.label(n) == "play").unwrap();
        let treasurer = t.preorder().find(|&n| t.label(n) == "treasurer").unwrap();
        let play_mean = ratings.iter().find(|r| r.node == play).unwrap().mean();
        let treasurer_mean = ratings.iter().find(|r| r.node == treasurer).unwrap().mean();
        assert!(play_mean > treasurer_mean);
    }
}
