//! Gold-annotating document construction.
//!
//! [`DocGen`] wraps [`xmltree::Document`] building and records the
//! *intended sense* of every element tag, attribute tag, and text token it
//! emits. [`DocGen::finish`] then builds the pre-processed rooted ordered
//! labeled tree (with the same [`xsdf::LingTokenizer`] the pipeline uses)
//! and aligns the recorded senses onto tree [`NodeId`]s, yielding an
//! [`AnnotatedDocument`] whose gold standard is keyed exactly like the
//! disambiguators' outputs.

use std::collections::HashMap;

use semnet::SemanticNetwork;
use xmltree::tree::TreeBuilder;
use xmltree::{DocNodeId, Document, NodeId, XmlTree};
use xsdf::LingTokenizer;

use crate::spec::DatasetId;

/// The intended sense of one node: a concept key, or a pair of keys for an
/// unmatched compound label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldSense {
    /// One concept key (e.g. `"kelly.grace"`).
    Single(String),
    /// A pair of keys for a compound label (e.g. `star picture`).
    Pair(String, String),
}

impl GoldSense {
    /// Renders the gold sense the same way [`xsdf::SenseChoice`] keys are
    /// rendered (`a+b` for pairs).
    pub fn key(&self) -> String {
        match self {
            Self::Single(k) => k.clone(),
            Self::Pair(a, b) => format!("{a}+{b}"),
        }
    }

    /// Convenience constructor.
    pub fn single(key: &str) -> Self {
        Self::Single(key.to_string())
    }
}

/// A generated document with its pre-processed tree and gold senses.
#[derive(Debug, Clone)]
pub struct AnnotatedDocument {
    /// Which dataset produced it.
    pub dataset: DatasetId,
    /// The raw document (serializable back to XML).
    pub doc: Document,
    /// The pre-processed rooted ordered labeled tree.
    pub tree: XmlTree,
    /// Intended sense per tree node (nodes without lexical content, e.g.
    /// numbers, are absent).
    pub gold: HashMap<NodeId, GoldSense>,
}

impl AnnotatedDocument {
    /// Number of gold-annotated nodes.
    pub fn gold_count(&self) -> usize {
        self.gold.len()
    }
}

/// One queued text value: `(words, golds)` where each word may carry a
/// gold key. Words the pre-processor drops (stop words) must carry `None`.
type TextSpec = Vec<(String, Option<String>)>;

/// Builds a [`Document`] while recording gold senses.
pub struct DocGen<'sn> {
    sn: &'sn SemanticNetwork,
    doc: Document,
    elem_gold: HashMap<DocNodeId, GoldSense>,
    attr_gold: HashMap<(DocNodeId, usize), GoldSense>,
    text_gold: HashMap<DocNodeId, TextSpec>,
    attr_text_gold: HashMap<(DocNodeId, usize), TextSpec>,
}

impl<'sn> DocGen<'sn> {
    /// Starts a document whose root element has the given tag and gold.
    pub fn new(
        sn: &'sn SemanticNetwork,
        root_tag: &str,
        root_gold: Option<GoldSense>,
    ) -> (Self, DocNodeId) {
        let mut doc = Document::new();
        let root = doc.add_element(None, root_tag);
        let mut gen = Self {
            sn,
            doc,
            elem_gold: HashMap::new(),
            attr_gold: HashMap::new(),
            text_gold: HashMap::new(),
            attr_text_gold: HashMap::new(),
        };
        if let Some(g) = root_gold {
            gen.elem_gold.insert(root, g);
        }
        (gen, root)
    }

    /// Adds an element with an optional gold sense for its tag.
    pub fn elem(&mut self, parent: DocNodeId, tag: &str, gold: Option<GoldSense>) -> DocNodeId {
        let e = self.doc.add_element(Some(parent), tag);
        if let Some(g) = gold {
            self.elem_gold.insert(e, g);
        }
        e
    }

    /// Adds an attribute with an optional gold sense for its name and gold
    /// keys per value word.
    pub fn attr(
        &mut self,
        element: DocNodeId,
        name: &str,
        name_gold: Option<GoldSense>,
        value_words: &[(&str, Option<&str>)],
    ) {
        let idx = self.doc.attributes(element).len();
        let value: String = value_words
            .iter()
            .map(|(w, _)| *w)
            .collect::<Vec<_>>()
            .join(" ");
        self.doc
            .add_attribute(element, name, value)
            .expect("unique attribute names");
        if let Some(g) = name_gold {
            self.attr_gold.insert((element, idx), g);
        }
        self.attr_text_gold.insert(
            (element, idx),
            value_words
                .iter()
                .map(|(w, g)| (w.to_string(), g.map(str::to_string)))
                .collect(),
        );
    }

    /// Adds a text value under `parent`, one `(word, gold)` pair per word.
    pub fn text(&mut self, parent: DocNodeId, words: &[(&str, Option<&str>)]) -> DocNodeId {
        let value: String = words.iter().map(|(w, _)| *w).collect::<Vec<_>>().join(" ");
        let t = self.doc.add_text(parent, value);
        self.text_gold.insert(
            t,
            words
                .iter()
                .map(|(w, g)| (w.to_string(), g.map(str::to_string)))
                .collect(),
        );
        t
    }

    /// Shorthand: an element containing a single text value.
    pub fn leaf(
        &mut self,
        parent: DocNodeId,
        tag: &str,
        tag_gold: Option<GoldSense>,
        words: &[(&str, Option<&str>)],
    ) -> DocNodeId {
        let e = self.elem(parent, tag, tag_gold);
        self.text(e, words);
        e
    }

    /// Shorthand: a leaf with a plain (unannotated) value such as a number.
    pub fn plain_leaf(
        &mut self,
        parent: DocNodeId,
        tag: &str,
        tag_gold: Option<GoldSense>,
        value: &str,
    ) {
        let e = self.elem(parent, tag, tag_gold);
        let words: Vec<(String, Option<String>)> = value
            .split_whitespace()
            .map(|w| (w.to_string(), None))
            .collect();
        let t = self.doc.add_text(e, value);
        self.text_gold.insert(t, words);
    }

    /// Finalizes: builds the pre-processed tree and aligns gold senses to
    /// tree node ids.
    ///
    /// # Panics
    ///
    /// Panics if a gold-annotated word is dropped by pre-processing (the
    /// generators must mark stop words with `None`), or if a single word
    /// expands to several tokens (generator vocabulary must avoid
    /// hyphenated words).
    pub fn finish(self, dataset: DatasetId) -> AnnotatedDocument {
        let result = TreeBuilder::with_tokenizer(LingTokenizer::new(self.sn))
            .build(&self.doc)
            .expect("generated documents always have a root");
        let mut gold: HashMap<NodeId, GoldSense> = HashMap::new();
        for (doc_node, g) in &self.elem_gold {
            let node = result.element_nodes[doc_node];
            gold.insert(node, g.clone());
        }
        for (key, g) in &self.attr_gold {
            let node = result.attribute_nodes[key];
            gold.insert(node, g.clone());
        }
        // Token alignment: re-run the value tokenizer per word to know
        // which words survived pre-processing, then zip with the emitted
        // token nodes in order.
        let tokenizer = LingTokenizer::new(self.sn);
        let align =
            |words: &TextSpec, token_nodes: &[NodeId], gold: &mut HashMap<NodeId, GoldSense>| {
                use xmltree::tree::ValueTokenizer;
                let mut cursor = 0usize;
                for (word, word_gold) in words {
                    let produced = tokenizer.tokenize_value(word);
                    match produced.len() {
                        0 => {
                            assert!(
                                word_gold.is_none(),
                                "gold-annotated word {word:?} was dropped by pre-processing"
                            );
                        }
                        1 => {
                            let node = token_nodes[cursor];
                            cursor += 1;
                            if let Some(g) = word_gold {
                                gold.insert(node, GoldSense::Single(g.clone()));
                            }
                        }
                        n => panic!("word {word:?} split into {n} tokens; avoid in generators"),
                    }
                }
                assert_eq!(cursor, token_nodes.len(), "token alignment mismatch");
            };
        for (doc_node, words) in &self.text_gold {
            if let Some(tokens) = result.token_nodes.get(doc_node) {
                align(words, tokens, &mut gold);
            }
        }
        for (key, words) in &self.attr_text_gold {
            if let Some(tokens) = result.attr_token_nodes.get(key) {
                align(words, tokens, &mut gold);
            }
        }
        AnnotatedDocument {
            dataset,
            doc: self.doc,
            tree: result.tree,
            gold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    #[test]
    fn gold_aligns_to_tree_nodes() {
        let sn = mini_wordnet();
        let (mut g, root) = DocGen::new(sn, "films", Some(GoldSense::single("film.movie")));
        let picture = g.elem(root, "picture", Some(GoldSense::single("film.movie")));
        g.attr(
            picture,
            "title",
            Some(GoldSense::single("title.work")),
            &[
                ("Rear", Some("rear_window.film")),
                ("Window", Some("window.n")),
            ],
        );
        let cast = g.elem(picture, "cast", Some(GoldSense::single("cast.actors")));
        g.leaf(
            cast,
            "star",
            Some(GoldSense::single("star.performer")),
            &[("Kelly", Some("kelly.grace"))],
        );
        let annotated = g.finish(DatasetId::Imdb);

        let t = &annotated.tree;
        // films → label "film" after stemming; gold attached to that node.
        let film_node = t.root();
        assert_eq!(annotated.gold[&film_node], GoldSense::single("film.movie"));
        // The kelly token node carries its gold.
        let kelly = t.preorder().find(|&n| t.label(n) == "kelly").unwrap();
        assert_eq!(annotated.gold[&kelly], GoldSense::single("kelly.grace"));
        // The title attribute node and its tokens.
        let title = t.preorder().find(|&n| t.label(n) == "title").unwrap();
        assert_eq!(annotated.gold[&title], GoldSense::single("title.work"));
        assert_eq!(annotated.gold_count(), 8);
    }

    #[test]
    fn stop_words_must_not_carry_gold() {
        let sn = mini_wordnet();
        let (mut g, root) = DocGen::new(sn, "plot", None);
        // "the" is a stop word; with None gold this aligns fine.
        g.text(
            root,
            &[("the", None), ("photographer", Some("photographer.n"))],
        );
        let annotated = g.finish(DatasetId::Imdb);
        assert_eq!(annotated.gold_count(), 1);
        let t = &annotated.tree;
        // Only the surviving token became a node.
        assert_eq!(t.len(), 2);
        assert_eq!(t.label(xmltree::NodeId(1)), "photographer");
    }

    #[test]
    #[should_panic(expected = "dropped by pre-processing")]
    fn gold_on_stop_word_panics() {
        let sn = mini_wordnet();
        let (mut g, root) = DocGen::new(sn, "plot", None);
        g.text(root, &[("the", Some("state.condition"))]);
        let _ = g.finish(DatasetId::Imdb);
    }

    #[test]
    fn pair_gold_for_compounds() {
        let sn = mini_wordnet();
        let (mut g, root) = DocGen::new(sn, "films", None);
        g.elem(
            root,
            "star_picture",
            Some(GoldSense::Pair(
                "star.performer".into(),
                "film.movie".into(),
            )),
        );
        let annotated = g.finish(DatasetId::Imdb);
        let t = &annotated.tree;
        let node = t
            .preorder()
            .find(|&n| t.label(n) == "star picture")
            .unwrap();
        assert_eq!(annotated.gold[&node].key(), "star.performer+film.movie");
    }

    #[test]
    fn plain_leaf_has_no_token_gold() {
        let sn = mini_wordnet();
        let (mut g, root) = DocGen::new(sn, "movie", None);
        g.plain_leaf(
            root,
            "year",
            Some(GoldSense::single("year.calendar")),
            "1954",
        );
        let annotated = g.finish(DatasetId::Imdb);
        // year tag annotated; the numeric token is not.
        assert_eq!(annotated.gold_count(), 1);
    }

    #[test]
    fn document_serializes_back_to_xml() {
        let sn = mini_wordnet();
        let (mut g, root) = DocGen::new(sn, "cast", Some(GoldSense::single("cast.actors")));
        g.leaf(root, "star", None, &[("Stewart", Some("stewart.james"))]);
        let annotated = g.finish(DatasetId::Imdb);
        let xml = xmltree::serialize::to_string_compact(&annotated.doc);
        assert_eq!(xml, "<cast><star>Stewart</star></cast>");
    }
}
