//! The assembled evaluation corpus: every document of every dataset
//! (Table 3), with helpers for per-group iteration and target-node
//! sampling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use semnet::SemanticNetwork;
use xmltree::NodeId;

use crate::docgen::AnnotatedDocument;
use crate::gen::generate_document;
use crate::spec::{DatasetId, Group};

/// The full generated corpus.
pub struct Corpus {
    docs: Vec<AnnotatedDocument>,
    seed: u64,
}

impl Corpus {
    /// Generates the complete corpus (all datasets, Table 3 document
    /// counts) deterministically from `seed`.
    pub fn generate(sn: &SemanticNetwork, seed: u64) -> Self {
        let mut docs = Vec::new();
        for &ds in &DatasetId::ALL {
            for idx in 0..ds.spec().num_docs {
                docs.push(generate_document(sn, ds, idx, seed));
            }
        }
        Self { docs, seed }
    }

    /// Generates a reduced corpus (at most `per_dataset` documents each),
    /// for fast benchmarks.
    pub fn generate_small(sn: &SemanticNetwork, seed: u64, per_dataset: usize) -> Self {
        let mut docs = Vec::new();
        for &ds in &DatasetId::ALL {
            for idx in 0..ds.spec().num_docs.min(per_dataset) {
                docs.push(generate_document(sn, ds, idx, seed));
            }
        }
        Self { docs, seed }
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All documents.
    pub fn documents(&self) -> &[AnnotatedDocument] {
        &self.docs
    }

    /// Documents of one dataset.
    pub fn dataset(&self, id: DatasetId) -> impl Iterator<Item = &AnnotatedDocument> {
        self.docs.iter().filter(move |d| d.dataset == id)
    }

    /// Documents of one group.
    pub fn group(&self, group: Group) -> impl Iterator<Item = &AnnotatedDocument> {
        self.docs
            .iter()
            .filter(move |d| d.dataset.spec().group == group)
    }

    /// Total node count across the corpus.
    pub fn total_nodes(&self) -> usize {
        self.docs.iter().map(|d| d.tree.len()).sum()
    }

    /// Total gold-annotated node count.
    pub fn total_gold(&self) -> usize {
        self.docs.iter().map(|d| d.gold.len()).sum()
    }

    /// Randomly pre-selects up to `per_doc` gold nodes per document — the
    /// paper's "12-to-13 randomly pre-selected nodes per document"
    /// protocol — deterministically from the corpus seed. The draw is
    /// uniform over gold nodes, so each document's natural mix of tag and
    /// token targets is preserved; [`Corpus::sample_targets_stratified`]
    /// offers an explicit tag/token split for ablations.
    pub fn sample_targets(&self, per_doc: usize) -> Vec<(usize, Vec<NodeId>)> {
        self.docs
            .iter()
            .enumerate()
            .map(|(i, doc)| {
                // Per-document RNG: one document's gold pool cannot shift
                // another document's sample.
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA5A5_5A5A ^ ((i as u64) << 20));
                let mut nodes: Vec<NodeId> = doc.gold.keys().copied().collect();
                nodes.sort_unstable();
                nodes.shuffle(&mut rng);
                nodes.truncate(per_doc);
                nodes.sort_unstable();
                (i, nodes)
            })
            .collect()
    }

    /// Target sampling with an explicit structural share: `tag_share` of
    /// each document's sample comes from element/attribute gold nodes (when
    /// available), the rest from value tokens.
    pub fn sample_targets_stratified(
        &self,
        per_doc: usize,
        tag_share: f64,
    ) -> Vec<(usize, Vec<NodeId>)> {
        self.docs
            .iter()
            .enumerate()
            .map(|(i, doc)| {
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA5A5_5A5A ^ ((i as u64) << 20));
                let mut tags: Vec<NodeId> = doc
                    .gold
                    .keys()
                    .copied()
                    .filter(|&n| doc.tree.node(n).kind != xmltree::NodeKind::ValueToken)
                    .collect();
                let mut tokens: Vec<NodeId> = doc
                    .gold
                    .keys()
                    .copied()
                    .filter(|&n| doc.tree.node(n).kind == xmltree::NodeKind::ValueToken)
                    .collect();
                tags.sort_unstable();
                tokens.sort_unstable();
                tags.shuffle(&mut rng);
                tokens.shuffle(&mut rng);
                let want_tags = ((per_doc as f64) * tag_share).round() as usize;
                let mut nodes: Vec<NodeId> = Vec::with_capacity(per_doc);
                nodes.extend(tags.iter().copied().take(want_tags));
                nodes.extend(
                    tokens
                        .iter()
                        .copied()
                        .take(per_doc - nodes.len().min(per_doc)),
                );
                // Backfill from tags if the document lacks tokens.
                if nodes.len() < per_doc {
                    nodes.extend(
                        tags.iter()
                            .copied()
                            .skip(want_tags)
                            .take(per_doc - nodes.len()),
                    );
                }
                nodes.sort_unstable();
                nodes.dedup();
                (i, nodes)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    #[test]
    fn full_corpus_has_table3_counts() {
        let corpus = Corpus::generate(mini_wordnet(), 1);
        assert_eq!(corpus.documents().len(), 60);
        assert_eq!(corpus.dataset(DatasetId::Shakespeare).count(), 10);
        assert_eq!(corpus.dataset(DatasetId::Club).count(), 4);
        assert_eq!(corpus.group(Group::G1).count(), 10);
        assert_eq!(corpus.group(Group::G3).count(), 20);
        assert_eq!(corpus.group(Group::G4).count(), 20);
    }

    /// Every node label of every document, in document/preorder order.
    /// Aggregate counts can collide between nearby seeds, so seed
    /// sensitivity is asserted on content instead.
    fn all_labels(corpus: &Corpus) -> Vec<String> {
        corpus
            .documents()
            .iter()
            .flat_map(|d| d.tree.preorder().map(|id| d.tree.label(id).to_owned()))
            .collect()
    }

    #[test]
    fn corpus_is_deterministic() {
        let sn = mini_wordnet();
        let a = Corpus::generate_small(sn, 5, 1);
        let b = Corpus::generate_small(sn, 5, 1);
        assert_eq!(a.total_nodes(), b.total_nodes());
        assert_eq!(a.total_gold(), b.total_gold());
        assert_eq!(all_labels(&a), all_labels(&b));
        let c = Corpus::generate_small(sn, 6, 1);
        assert_ne!(
            all_labels(&a),
            all_labels(&c),
            "different seed should change the corpus"
        );
    }

    #[test]
    fn gold_volume_supports_evaluation() {
        // The paper evaluated 1000 hand-annotated nodes; our generators
        // must provide at least that many gold nodes corpus-wide.
        let corpus = Corpus::generate(mini_wordnet(), 2);
        assert!(
            corpus.total_gold() >= 1000,
            "only {} gold nodes",
            corpus.total_gold()
        );
    }

    #[test]
    fn sampling_respects_per_doc_limit() {
        let corpus = Corpus::generate_small(mini_wordnet(), 3, 2);
        let samples = corpus.sample_targets(13);
        assert_eq!(samples.len(), corpus.documents().len());
        for (doc_idx, nodes) in &samples {
            assert!(nodes.len() <= 13);
            let doc = &corpus.documents()[*doc_idx];
            for n in nodes {
                assert!(doc.gold.contains_key(n));
            }
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let corpus = Corpus::generate_small(mini_wordnet(), 3, 1);
        assert_eq!(corpus.sample_targets(12), corpus.sample_targets(12));
    }
}
