//! Dataset and group metadata mirroring Tables 1 and 3 of the paper.

use std::fmt;

/// The four evaluation groups of Table 1, by average node ambiguity ×
/// structural richness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Group {
    /// High ambiguity, rich structure (Shakespeare).
    G1,
    /// High ambiguity, poor structure (Amazon products).
    G2,
    /// Lower ambiguity, rich structure (SIGMOD, IMDB, Niagara bib).
    G3,
    /// Lower ambiguity, poor structure (W3Schools catalogs, personnel, club).
    G4,
}

impl Group {
    /// All groups in order.
    pub const ALL: [Group; 4] = [Group::G1, Group::G2, Group::G3, Group::G4];

    /// 1-based group number.
    pub fn number(self) -> usize {
        match self {
            Group::G1 => 1,
            Group::G2 => 2,
            Group::G3 => 3,
            Group::G4 => 4,
        }
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Group {}", self.number())
    }
}

/// The ten datasets of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetId {
    /// 1 — Shakespeare collection (`shakespeare.dtd`).
    Shakespeare,
    /// 2 — Amazon product files (`amazon_product.dtd`).
    Amazon,
    /// 3 — SIGMOD Record (`ProceedingsPage.dtd`).
    Sigmod,
    /// 4 — IMDB database (`movies.dtd`).
    Imdb,
    /// 5 — Niagara collection (`bib.dtd`).
    Bib,
    /// 6 — W3Schools CD catalog (`cd_catalog.dtd`).
    CdCatalog,
    /// 7 — W3Schools food menu (`food_menu.dtd`).
    FoodMenu,
    /// 8 — W3Schools plant catalog (`plant_catalog.dtd`).
    PlantCatalog,
    /// 9 — Niagara personnel (`personnel.dtd`).
    Personnel,
    /// 10 — Niagara club (`club.dtd`).
    Club,
}

impl DatasetId {
    /// All datasets in Table 3 order.
    pub const ALL: [DatasetId; 10] = [
        DatasetId::Shakespeare,
        DatasetId::Amazon,
        DatasetId::Sigmod,
        DatasetId::Imdb,
        DatasetId::Bib,
        DatasetId::CdCatalog,
        DatasetId::FoodMenu,
        DatasetId::PlantCatalog,
        DatasetId::Personnel,
        DatasetId::Club,
    ];

    /// 1-based dataset number as in Table 3.
    pub fn number(self) -> usize {
        Self::ALL.iter().position(|&d| d == self).unwrap() + 1
    }

    /// The dataset's static description.
    pub fn spec(self) -> &'static DatasetSpec {
        &SPECS[self.number() - 1]
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.spec().grammar)
    }
}

/// Static description of one dataset (the "Source"/"Grammar"/"N# of docs"
/// columns of Table 3).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset id.
    pub id: DatasetId,
    /// Group membership (Table 1).
    pub group: Group,
    /// Source name as quoted by the paper.
    pub source: &'static str,
    /// Grammar (DTD) name.
    pub grammar: &'static str,
    /// Number of documents generated (Table 3's "N# of docs").
    pub num_docs: usize,
    /// Target average node count per document (Table 3).
    pub target_nodes_per_doc: f64,
}

/// Table 3's rows.
pub static SPECS: [DatasetSpec; 10] = [
    DatasetSpec {
        id: DatasetId::Shakespeare,
        group: Group::G1,
        source: "Shakespeare collection",
        grammar: "shakespeare.dtd",
        num_docs: 10,
        target_nodes_per_doc: 192.0,
    },
    DatasetSpec {
        id: DatasetId::Amazon,
        group: Group::G2,
        source: "Amazon product files",
        grammar: "amazon_product.dtd",
        num_docs: 10,
        target_nodes_per_doc: 113.3,
    },
    DatasetSpec {
        id: DatasetId::Sigmod,
        group: Group::G3,
        source: "SIGMOD Record",
        grammar: "ProceedingsPage.dtd",
        num_docs: 6,
        target_nodes_per_doc: 39.4,
    },
    DatasetSpec {
        id: DatasetId::Imdb,
        group: Group::G3,
        source: "IMDB database",
        grammar: "movies.dtd",
        num_docs: 6,
        target_nodes_per_doc: 15.5,
    },
    DatasetSpec {
        id: DatasetId::Bib,
        group: Group::G3,
        source: "Niagara collection",
        grammar: "bib.dtd",
        num_docs: 8,
        target_nodes_per_doc: 26.5,
    },
    DatasetSpec {
        id: DatasetId::CdCatalog,
        group: Group::G4,
        source: "W3Schools",
        grammar: "cd_catalog.dtd",
        num_docs: 4,
        target_nodes_per_doc: 16.5,
    },
    DatasetSpec {
        id: DatasetId::FoodMenu,
        group: Group::G4,
        source: "W3Schools",
        grammar: "food_menu.dtd",
        num_docs: 4,
        target_nodes_per_doc: 16.0,
    },
    DatasetSpec {
        id: DatasetId::PlantCatalog,
        group: Group::G4,
        source: "W3Schools",
        grammar: "plant_catalog.dtd",
        num_docs: 4,
        target_nodes_per_doc: 11.7,
    },
    DatasetSpec {
        id: DatasetId::Personnel,
        group: Group::G4,
        source: "Niagara collection",
        grammar: "personnel.dtd",
        num_docs: 4,
        target_nodes_per_doc: 19.0,
    },
    DatasetSpec {
        id: DatasetId::Club,
        group: Group::G4,
        source: "Niagara collection",
        grammar: "club.dtd",
        num_docs: 4,
        target_nodes_per_doc: 15.5,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_all_datasets_in_order() {
        for (i, spec) in SPECS.iter().enumerate() {
            assert_eq!(spec.id.number(), i + 1);
            assert_eq!(spec.id.spec().grammar, spec.grammar);
        }
    }

    #[test]
    fn table3_document_counts() {
        // Table 3's per-dataset counts (the paper's prose says "80 test
        // documents"; the table's counts sum to 60 — we follow the table
        // and note the discrepancy in EXPERIMENTS.md).
        let total: usize = SPECS.iter().map(|s| s.num_docs).sum();
        assert_eq!(total, 60);
        assert_eq!(DatasetId::Shakespeare.spec().num_docs, 10);
        assert_eq!(DatasetId::Club.spec().num_docs, 4);
    }

    #[test]
    fn group_membership_matches_table1() {
        assert_eq!(DatasetId::Shakespeare.spec().group, Group::G1);
        assert_eq!(DatasetId::Amazon.spec().group, Group::G2);
        for d in [DatasetId::Sigmod, DatasetId::Imdb, DatasetId::Bib] {
            assert_eq!(d.spec().group, Group::G3);
        }
        for d in [
            DatasetId::CdCatalog,
            DatasetId::FoodMenu,
            DatasetId::PlantCatalog,
            DatasetId::Personnel,
            DatasetId::Club,
        ] {
            assert_eq!(d.spec().group, Group::G4);
        }
    }

    #[test]
    fn group_display() {
        assert_eq!(Group::G1.to_string(), "Group 1");
        assert_eq!(Group::ALL.len(), 4);
    }
}
