//! Unbounded streaming corpus generation: documents by *position*, not
//! by materialized list.
//!
//! [`Corpus::generate`](crate::Corpus::generate) builds the paper's full
//! 60-document evaluation suite in memory — the right shape for
//! accuracy experiments, the wrong one for scale-out runs that push
//! 10⁵–10⁶ documents through the batch engine. This module provides the
//! same deterministic generators as a *stream*: position `p` of a
//! seeded stream is always the same document ([`document_at`]), datasets
//! rotate round-robin so every prefix is mixed, and [`DocumentStream`]
//! yields documents lazily so a million-document run holds exactly one
//! generated document at a time (O(1) memory in the corpus size).
//!
//! Because `(seed, position) → document` is a pure function, a sharded
//! driver can partition positions across worker processes and each
//! worker regenerates exactly its slice — no corpus files need to exist
//! on disk at all.

use semnet::SemanticNetwork;

use crate::docgen::AnnotatedDocument;
use crate::gen::generate_document;
use crate::spec::DatasetId;

/// The document at position `pos` of the seeded stream.
///
/// Datasets rotate round-robin ([`DatasetId::ALL`] order): position `p`
/// is document `p / 10` of dataset `ALL[p % 10]`, generated with the
/// same pure seeded generator the materialized corpus uses. Any prefix
/// of the stream therefore covers all four ambiguity groups, and the
/// position space is unbounded — indices never repeat.
pub fn document_at(sn: &SemanticNetwork, seed: u64, pos: u64) -> AnnotatedDocument {
    let n = DocumentStream::DATASETS as u64;
    let dataset = DatasetId::ALL[(pos % n) as usize];
    generate_document(sn, dataset, (pos / n) as usize, seed)
}

/// A lazy, unbounded iterator over the seeded document stream.
///
/// The iterator is infinite; bound it with [`Iterator::take`]. Use
/// [`DocumentStream::starting_at`] to begin mid-stream (a shard's
/// slice), and [`DocumentStream::position`] to observe how far it has
/// advanced.
///
/// ```
/// use xsdf_corpus::stream::DocumentStream;
/// let sn = semnet::mini_wordnet();
/// let nodes: usize = DocumentStream::new(sn, 42)
///     .take(20)
///     .map(|doc| doc.tree.len())
///     .sum();
/// assert!(nodes > 0);
/// ```
pub struct DocumentStream<'sn> {
    sn: &'sn SemanticNetwork,
    seed: u64,
    pos: u64,
}

impl<'sn> DocumentStream<'sn> {
    /// Datasets per round-robin cycle.
    pub const DATASETS: usize = DatasetId::ALL.len();

    /// A stream over `seed`, starting at position 0.
    pub fn new(sn: &'sn SemanticNetwork, seed: u64) -> Self {
        Self::starting_at(sn, seed, 0)
    }

    /// A stream over `seed`, starting at position `pos` — the same
    /// suffix [`DocumentStream::new`] would reach after `pos` steps,
    /// without generating the skipped prefix.
    pub fn starting_at(sn: &'sn SemanticNetwork, seed: u64, pos: u64) -> Self {
        Self { sn, seed, pos }
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The position the next [`Iterator::next`] call will generate.
    pub fn position(&self) -> u64 {
        self.pos
    }
}

impl Iterator for DocumentStream<'_> {
    type Item = AnnotatedDocument;

    fn next(&mut self) -> Option<AnnotatedDocument> {
        let doc = document_at(self.sn, self.seed, self.pos);
        self.pos += 1;
        Some(doc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (usize::MAX, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    fn labels(doc: &AnnotatedDocument) -> Vec<String> {
        doc.tree
            .preorder()
            .map(|id| doc.tree.label(id).to_owned())
            .collect()
    }

    #[test]
    fn stream_positions_are_pure_functions() {
        let sn = mini_wordnet();
        for pos in [0u64, 7, 23, 1009] {
            let a = document_at(sn, 5, pos);
            let b = document_at(sn, 5, pos);
            assert_eq!(a.dataset, b.dataset);
            assert_eq!(labels(&a), labels(&b), "position {pos} not deterministic");
        }
        // And seed-sensitive.
        let a = document_at(sn, 5, 3);
        let c = document_at(sn, 6, 3);
        assert_ne!(labels(&a), labels(&c), "seed should change the document");
    }

    #[test]
    fn datasets_rotate_round_robin() {
        let sn = mini_wordnet();
        let first: Vec<DatasetId> = DocumentStream::new(sn, 1)
            .take(DocumentStream::DATASETS)
            .map(|d| d.dataset)
            .collect();
        assert_eq!(first, DatasetId::ALL.to_vec());
        // The second cycle repeats the rotation with fresh indices.
        assert_eq!(
            document_at(sn, 1, DocumentStream::DATASETS as u64).dataset,
            DatasetId::ALL[0]
        );
    }

    #[test]
    fn starting_mid_stream_matches_the_skipped_prefix_path() {
        let sn = mini_wordnet();
        let from_start: Vec<Vec<String>> = DocumentStream::new(sn, 9)
            .take(8)
            .map(|d| labels(&d))
            .collect();
        let resumed: Vec<Vec<String>> = DocumentStream::starting_at(sn, 9, 5)
            .take(3)
            .map(|d| labels(&d))
            .collect();
        assert_eq!(&from_start[5..], &resumed[..]);
    }

    #[test]
    fn stream_agrees_with_the_materialized_generators() {
        // Position p is document p/10 of dataset ALL[p%10] — the exact
        // documents Corpus::generate would build, reindexed.
        let sn = mini_wordnet();
        let pos = 13u64; // document 1 of dataset ALL[3]
        let streamed = document_at(sn, 4, pos);
        let direct = generate_document(sn, DatasetId::ALL[3], 1, 4);
        assert_eq!(streamed.dataset, direct.dataset);
        assert_eq!(labels(&streamed), labels(&direct));
    }
}
