//! # xsdf-corpus
//!
//! Deterministic synthetic generators for the evaluation corpus of
//! *Resolving XML Semantic Ambiguity* (EDBT 2015, Section 4.1, Table 3).
//!
//! The paper evaluates on 10 datasets drawn from public XML sources
//! (Shakespeare plays, Amazon product feeds, SIGMOD Record, IMDB, the
//! Niagara collection, W3Schools samples), organized into four groups by
//! average node ambiguity × structural richness (Table 1). Those sources
//! are partly dead-linked and not redistributable, so this crate generates
//! documents **from the same DTD vocabularies with the same structural
//! statistics**, using seeded RNG for reproducibility.
//!
//! Crucially, the generators know the *intended sense* of every label and
//! text token they emit, producing a complete gold standard
//! ([`AnnotatedDocument::gold`]) — stricter than the paper's 1000
//! hand-annotated nodes.
//!
//! The [`annotators`] module simulates the paper's five human raters for
//! the Table 2 ambiguity-correlation experiment: raters judge ambiguity
//! *contextually* (a polysemous label whose context makes one sense
//! obvious is rated unambiguous), while `Amb_Deg` judges *lexically* —
//! the divergence the paper reports on Groups 2–4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotators;
pub mod docgen;
pub mod gen;
pub mod pathological;
pub mod spec;
pub mod stream;
pub mod suite;

pub use docgen::{AnnotatedDocument, DocGen, GoldSense};
pub use spec::{DatasetId, DatasetSpec, Group};
pub use stream::DocumentStream;
pub use suite::Corpus;
