//! Conformance spot-check: the streaming XML parser agrees with the
//! buffered parser on every document the corpus generators can emit.
//!
//! The exhaustive split-equivalence proofs live in `xsdf-xmltree`; this
//! test closes the loop on *realistic* inputs — serialized generated
//! documents from every dataset, fed through awkward chunkings.

use xmltree::stream::{parse_chunks, StreamLimits};
use xsdf_corpus::stream::DocumentStream;

#[test]
fn generated_corpus_parses_identically_streamed_and_buffered() {
    let sn = semnet::mini_wordnet();
    // Three full dataset rotations: every generator contributes three
    // documents of different indices.
    for (pos, doc) in DocumentStream::new(sn, 1234)
        .take(3 * DocumentStream::DATASETS)
        .enumerate()
    {
        let xml = xmltree::serialize::to_string_pretty(&doc.doc);
        let buffered = xmltree::parse(&xml).expect("generated documents are well-formed");
        for chunk_size in [1usize, 13, 4096] {
            let chunks = xml.as_bytes().chunks(chunk_size);
            let streamed = parse_chunks(chunks, StreamLimits::default())
                .expect("streaming parse of a valid document");
            assert_eq!(
                streamed, buffered,
                "stream position {pos} ({:?}) diverged at chunk size {chunk_size}",
                doc.dataset
            );
        }
    }
}
