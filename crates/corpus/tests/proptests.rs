//! Property-based tests for the corpus generators and the rater panel:
//! determinism, gold validity, and rating invariants across random seeds.

use proptest::prelude::*;
use xsdf_corpus::annotators::{perceived_ambiguity, rate_tree, PANEL_SIZE};
use xsdf_corpus::gen::generate_document;
use xsdf_corpus::DatasetId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (dataset, index, seed) triple generates deterministically, with
    /// a consistent tree and gold keys that resolve in the network.
    #[test]
    fn generation_is_total_and_deterministic(
        ds_idx in 0usize..10,
        doc_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let sn = semnet::mini_wordnet();
        let ds = DatasetId::ALL[ds_idx];
        let a = generate_document(sn, ds, doc_idx, seed);
        let b = generate_document(sn, ds, doc_idx, seed);
        prop_assert_eq!(a.tree.len(), b.tree.len());
        prop_assert!(a.tree.check_consistency().is_ok());
        prop_assert!(a.gold_count() >= 3);
        for (&node, gold) in &a.gold {
            prop_assert!(node.index() < a.tree.len());
            // Every single gold key resolves to a concept.
            match gold {
                xsdf_corpus::GoldSense::Single(k) => {
                    prop_assert!(sn.by_key(k).is_some(), "unknown gold {k}");
                }
                xsdf_corpus::GoldSense::Pair(x, y) => {
                    prop_assert!(sn.by_key(x).is_some() && sn.by_key(y).is_some());
                }
            }
        }
        // The document serializes and reparses.
        let xml = xmltree::serialize::to_string_pretty(&a.doc);
        prop_assert!(xmltree::parse(&xml).is_ok());
    }

    /// Ratings are deterministic in the seed, bounded to 0..=4, and the
    /// perceived-ambiguity core is bounded to \[0, 1\].
    #[test]
    fn ratings_bounded_and_deterministic(ds_idx in 0usize..10, seed in 0u64..500) {
        let sn = semnet::mini_wordnet();
        let doc = generate_document(sn, DatasetId::ALL[ds_idx], 0, seed);
        let a = rate_tree(sn, &doc.tree, seed);
        let b = rate_tree(sn, &doc.tree, seed);
        prop_assert_eq!(a.len(), doc.tree.len());
        for (ra, rb) in a.iter().zip(&b) {
            prop_assert_eq!(ra.ratings, rb.ratings);
            prop_assert_eq!(ra.ratings.len(), PANEL_SIZE);
            for &r in &ra.ratings {
                prop_assert!(r <= 4);
            }
        }
        for node in doc.tree.preorder() {
            let p = perceived_ambiguity(sn, &doc.tree, node);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    /// Monosemous and unknown labels are always rated unambiguous by the
    /// deterministic core (Assumption 4's human counterpart).
    #[test]
    fn monosemous_perceived_zero(ds_idx in 0usize..10, seed in 0u64..200) {
        let sn = semnet::mini_wordnet();
        let doc = generate_document(sn, DatasetId::ALL[ds_idx], 0, seed);
        for node in doc.tree.preorder() {
            let senses =
                sn.senses_normalized(doc.tree.label(node), lingproc::porter_stem).len();
            if senses <= 1 {
                prop_assert_eq!(perceived_ambiguity(sn, &doc.tree, node), 0.0);
            }
        }
    }
}
