//! The observability layer end to end: every attempted document gets one
//! complete span per completed stage, the merged trace is deterministic in
//! structure, latency histograms cover the whole batch, and — the part
//! that lets tracing stay on in production — enabling it never changes the
//! batch output.

use std::time::Duration;

use runtime::{BatchEngine, XsdfError};
use xsdf::{DisambiguationResult, XsdfConfig};

fn fingerprint(result: &DisambiguationResult) -> String {
    let mut out = result.semantic_tree.to_annotated_xml();
    for report in &result.reports {
        if let Some((choice, score)) = &report.chosen {
            out.push_str(&format!("\n{} {:?} {:?}", report.label, choice, score));
        }
    }
    out
}

fn corpus_xml(seed: u64, per_dataset: usize) -> Vec<String> {
    let sn = semnet::mini_wordnet();
    corpus::Corpus::generate_small(sn, seed, per_dataset)
        .documents()
        .iter()
        .map(|d| xmltree::serialize::to_string_pretty(&d.doc))
        .collect()
}

#[test]
fn tracing_never_changes_batch_results() {
    // The acceptance bar: byte-identical results at 1, 2, and 8 threads,
    // tracing on and off.
    let sn = semnet::mini_wordnet();
    let sources = corpus_xml(42, 2);
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();

    let reference: Vec<String> = BatchEngine::new(sn, XsdfConfig::default())
        .threads(1)
        .run(&docs)
        .results
        .iter()
        .map(|r| fingerprint(r.as_ref().unwrap()))
        .collect();

    for threads in [1, 2, 8] {
        for tracing in [false, true] {
            let engine = BatchEngine::new(sn, XsdfConfig::default())
                .threads(threads)
                .tracing(tracing);
            let report = engine.run(&docs);
            let got: Vec<String> = report
                .results
                .iter()
                .map(|r| fingerprint(r.as_ref().unwrap()))
                .collect();
            assert_eq!(
                reference, got,
                "results diverged at {threads} threads, tracing={tracing}"
            );
            assert_eq!(report.trace.is_some(), tracing);
        }
    }
}

#[test]
fn every_document_gets_a_complete_span_per_stage() {
    let sn = semnet::mini_wordnet();
    let sources = corpus_xml(7, 2);
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();

    for threads in [1, 2, 8] {
        let engine = BatchEngine::new(sn, XsdfConfig::default())
            .threads(threads)
            .tracing(true);
        let report = engine.run(&docs);
        let trace = report.trace.expect("tracing was enabled");
        assert_eq!(trace.threads, report.metrics.threads);
        assert_eq!(trace.spans.len(), docs.len());
        for (i, span) in trace.spans.iter().enumerate() {
            assert_eq!(span.doc, i, "spans sorted by input index");
            assert!(span.worker < report.metrics.threads);
            assert_eq!(span.outcome, "ok");
            assert_eq!(span.bytes, docs[i].len());
            assert!(span.nodes > 0);
            // All four stages ran; each slice nests inside the document.
            assert_eq!(span.stages().count(), 4, "doc {i}");
            for (name, stage) in span.stages() {
                assert!(stage.start >= span.start, "{name} starts before doc {i}");
                assert!(
                    stage.start + stage.duration <= span.end,
                    "{name} outlives doc {i}"
                );
            }
            assert!(span.sense_pairs > 0, "doc {i} scored sense pairs");
        }
        // The per-document cache deltas add up to the batch totals.
        let hits: u64 = trace.spans.iter().map(|s| s.cache_hits).sum();
        let misses: u64 = trace.spans.iter().map(|s| s.cache_misses).sum();
        assert_eq!(hits, report.metrics.cache_hits);
        assert_eq!(misses, report.metrics.cache_misses);
    }
}

#[test]
fn failed_documents_still_get_spans_with_their_error_kind() {
    let sn = semnet::mini_wordnet();
    let docs = [
        "<cast><star>Kelly</star></cast>",
        "<broken",
        "<cast><star>Stewart</star></cast>",
    ];
    let engine = BatchEngine::new(sn, XsdfConfig::default())
        .threads(1)
        .tracing(true);
    let report = engine.run(&docs);
    let trace = report.trace.unwrap();
    assert_eq!(trace.spans.len(), 3);
    assert_eq!(trace.spans[0].outcome, "ok");
    let bad = &trace.spans[1];
    assert_eq!(bad.outcome, "parse");
    assert!(bad.error.is_some());
    // The parse stage ran (and failed); nothing after it did.
    assert!(bad.stages[0].is_some());
    assert!(bad.stages[1].is_none() && bad.stages[2].is_none() && bad.stages[3].is_none());
    assert_eq!(trace.spans[2].outcome, "ok");
}

#[test]
fn cancelled_documents_have_no_span() {
    let sn = semnet::mini_wordnet();
    let docs = ["<cast><star>Kelly</star></cast>", "<broken", "<a/>", "<b/>"];
    let engine = BatchEngine::new(sn, XsdfConfig::default())
        .threads(1)
        .tracing(true)
        .fail_fast(true);
    let report = engine.run(&docs);
    assert!(matches!(report.results[2], Err(XsdfError::Cancelled)));
    let trace = report.trace.unwrap();
    // Only the two attempted documents (ok + parse failure) have spans.
    let traced: Vec<usize> = trace.spans.iter().map(|s| s.doc).collect();
    assert_eq!(traced, [0, 1]);
}

#[test]
fn exports_are_well_formed_and_cover_every_span() {
    let sn = semnet::mini_wordnet();
    let sources = corpus_xml(3, 1);
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let engine = BatchEngine::new(sn, XsdfConfig::default())
        .threads(2)
        .tracing(true);
    let report = engine.run(&docs);
    let trace = report.trace.unwrap();

    let jsonl = trace.to_jsonl();
    assert_eq!(jsonl.lines().count(), docs.len());
    for (i, line) in jsonl.lines().enumerate() {
        assert!(line.starts_with('{') && line.ends_with('}'), "line {i}");
        assert!(line.contains(&format!("\"doc\":{i}")));
        assert!(line.contains("\"disambiguate_us\":"));
    }

    let chrome = trace.to_chrome_trace();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.trim_end().ends_with("]}"));
    // One track-name event per worker, one doc slice per document, four
    // stage slices per (fully processed) document.
    for worker in 0..trace.threads {
        assert!(chrome.contains(&format!("\"worker-{worker}\"")));
    }
    let complete_events = chrome.matches("\"ph\":\"X\"").count();
    assert_eq!(complete_events, docs.len() * 5);
}

#[test]
fn latency_histograms_cover_every_document_even_without_tracing() {
    let sn = semnet::mini_wordnet();
    let sources = corpus_xml(11, 1);
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let engine = BatchEngine::new(sn, XsdfConfig::default()).threads(2);
    let report = engine.run(&docs);
    assert!(report.trace.is_none(), "tracing defaults to off");
    let latency = &report.metrics.latency;
    for (name, hist) in latency.groups() {
        assert_eq!(hist.count(), docs.len() as u64, "{name} histogram count");
        assert!(hist.p50() <= hist.p90() && hist.p90() <= hist.p99());
        assert!(hist.p99() <= hist.max());
    }
    // Stage latencies nest inside the end-to-end distribution.
    assert!(latency.parse.max() <= latency.doc.max());
    // The percentile keys surface in the JSON dump.
    let json = report.metrics.to_json();
    for key in [
        "doc_p50_ms",
        "doc_p99_ms",
        "disambiguate_p90_ms",
        "parse_max_ms",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
}

#[test]
fn slow_docs_respects_threshold_and_reports_stage_breakdown() {
    let sn = semnet::mini_wordnet();
    let sources = corpus_xml(5, 1);
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let engine = BatchEngine::new(sn, XsdfConfig::default())
        .threads(1)
        .tracing(true);
    let report = engine.run(&docs);
    let trace = report.trace.unwrap();
    // Threshold zero: everything is "slow", slowest first.
    let all = trace.slow_docs(Duration::ZERO);
    assert_eq!(all.len(), docs.len());
    for pair in all.windows(2) {
        assert!(pair[0].duration() >= pair[1].duration());
    }
    // An impossible threshold: nothing qualifies.
    assert!(trace.slow_docs(Duration::from_secs(3600)).is_empty());
    // A cold run misses the cache, so the slowest document names the
    // concepts that would benefit from warming.
    assert!(all.iter().any(|s| !s.top_miss_concepts.is_empty()));
}
