//! Deterministic regression tests for the fault-tolerance layer: resource
//! limits, deadlines, fail-fast, and error accounting — everything that
//! does not require injected faults (those live in `tests/chaos.rs` behind
//! the `failpoints` feature).

use std::time::Duration;

use corpus::pathological;
use runtime::{BatchEngine, ResourceLimits, XsdfError};
use semnet::mini_wordnet;
use xsdf::{LimitKind, XsdfConfig};

fn engine() -> BatchEngine<'static> {
    BatchEngine::new(mini_wordnet(), XsdfConfig::default())
}

/// A small healthy document every test can rely on succeeding.
const HEALTHY: &str = "<films><picture><cast><star>Kelly</star></cast></picture></films>";

#[test]
fn byte_limit_trips_on_entity_heavy_documents() {
    let fat = pathological::entity_heavy(200);
    let engine = engine()
        .threads(2)
        .limits(ResourceLimits::unlimited().max_bytes(4 << 10));
    let report = engine.run(&[HEALTHY, &fat]);
    assert!(report.results[0].is_ok());
    match &report.results[1] {
        Err(XsdfError::LimitExceeded {
            which: LimitKind::Bytes,
            limit,
            actual,
        }) => {
            assert_eq!(*limit, 4 << 10);
            assert_eq!(*actual, fat.len() as u64);
        }
        other => panic!("expected byte limit, got {other:?}"),
    }
    assert_eq!(report.metrics.failures.limit, 1);
    assert_eq!(report.metrics.failed_documents, 1);
}

#[test]
fn node_limit_trips_on_mega_fanout() {
    let wide = pathological::mega_fanout(400);
    let engine = engine()
        .threads(2)
        .limits(ResourceLimits::unlimited().max_nodes(100));
    let report = engine.run(&[&wide, HEALTHY]);
    match &report.results[0] {
        Err(XsdfError::LimitExceeded {
            which: LimitKind::Nodes,
            limit: 100,
            actual,
        }) => assert!(*actual > 400),
        other => panic!("expected node limit, got {other:?}"),
    }
    assert!(report.results[1].is_ok());
}

#[test]
fn depth_limit_is_a_limit_error_not_a_parse_error() {
    let deep = pathological::deep_nesting(64);
    let engine = engine()
        .threads(1)
        .limits(ResourceLimits::unlimited().max_depth(16));
    let report = engine.run(&[&deep]);
    match &report.results[0] {
        Err(XsdfError::LimitExceeded {
            which: LimitKind::Depth,
            limit: 16,
            ..
        }) => {}
        other => panic!("expected depth limit, got {other:?}"),
    }
    assert_eq!(report.metrics.failures.limit, 1);
    assert_eq!(
        report.metrics.failures.parse, 0,
        "depth is a limit, not a parse failure"
    );
}

#[test]
fn parser_default_depth_guard_still_classifies_as_limit() {
    // Even with no configured limits, the parser's own stack-overflow
    // guard (256) reports through the same taxonomy.
    let very_deep = pathological::deep_nesting(300);
    let report = engine().threads(1).run(&[&very_deep]);
    match &report.results[0] {
        Err(XsdfError::LimitExceeded {
            which: LimitKind::Depth,
            limit: 256,
            ..
        }) => {}
        other => panic!("expected depth limit, got {other:?}"),
    }
}

#[test]
fn target_limit_trips_on_hyper_polysemous_documents() {
    let poly = pathological::hyper_polysemous(8);
    let engine = engine()
        .threads(1)
        .limits(ResourceLimits::unlimited().max_targets(10));
    let report = engine.run(&[&poly]);
    match &report.results[0] {
        Err(XsdfError::LimitExceeded {
            which: LimitKind::Targets,
            limit: 10,
            actual,
        }) => assert!(*actual > 10),
        other => panic!("expected target limit, got {other:?}"),
    }
}

#[test]
fn sense_pair_budget_trips_inside_the_scoring_loop() {
    let poly = pathological::hyper_polysemous(8);
    let engine = engine()
        .threads(1)
        .limits(ResourceLimits::unlimited().max_sense_pairs(25));
    let report = engine.run(&[&poly]);
    match &report.results[0] {
        Err(XsdfError::LimitExceeded {
            which: LimitKind::SensePairs,
            limit: 25,
            actual: 26,
        }) => {}
        other => panic!("expected sense-pair limit, got {other:?}"),
    }
}

#[test]
fn zero_deadline_reports_budget_and_elapsed() {
    let engine = engine().threads(1).deadline(Duration::ZERO);
    let report = engine.run(&[HEALTHY]);
    match &report.results[0] {
        Err(XsdfError::DeadlineExceeded { budget, .. }) => {
            assert_eq!(*budget, Duration::ZERO);
        }
        other => panic!("expected deadline, got {other:?}"),
    }
    assert_eq!(report.metrics.failures.deadline, 1);
}

#[test]
fn generous_limits_change_nothing() {
    // A fully limited engine whose ceilings are far above the documents
    // must produce byte-identical output to an unlimited one.
    let limited = engine()
        .threads(1)
        .limits(
            ResourceLimits::unlimited()
                .max_bytes(1 << 20)
                .max_nodes(100_000)
                .max_depth(200)
                .max_targets(10_000)
                .max_sense_pairs(10_000_000),
        )
        .deadline(Duration::from_secs(60));
    let unlimited = engine().threads(1);
    let docs = [HEALTHY, &pathological::hyper_polysemous(2)];
    let a = limited.run(&docs);
    let b = unlimited.run(&docs);
    for (x, y) in a.results.iter().zip(&b.results) {
        let (x, y) = (
            x.as_ref().expect("limited ok"),
            y.as_ref().expect("unlimited ok"),
        );
        assert_eq!(
            x.semantic_tree.to_annotated_xml(),
            y.semantic_tree.to_annotated_xml()
        );
    }
}

#[test]
fn mixed_batch_is_deterministic_across_thread_counts() {
    // Failures induced purely by limits (no timing, no failpoints): the
    // whole report must agree at 1, 2, and 8 threads.
    let deep = pathological::deep_nesting(64);
    let wide = pathological::mega_fanout(400);
    let poly = pathological::hyper_polysemous(8);
    let mut docs = Vec::new();
    for _ in 0..4 {
        docs.push(HEALTHY.to_string());
        docs.push(deep.clone());
        docs.push(wide.clone());
        docs.push(poly.clone());
    }
    let views: Vec<&str> = docs.iter().map(String::as_str).collect();
    let limits = ResourceLimits::unlimited()
        .max_depth(16)
        .max_nodes(100)
        .max_targets(10);

    let reference = engine().threads(1).limits(limits).run(&views);
    assert_eq!(reference.metrics.failures.limit, 12);
    assert_eq!(reference.metrics.failed_documents, 12);
    for threads in [2, 8] {
        let report = engine().threads(threads).limits(limits).run(&views);
        assert_eq!(report.metrics.failures, reference.metrics.failures);
        for (i, (a, b)) in reference.results.iter().zip(&report.results).enumerate() {
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(
                    x.semantic_tree.to_annotated_xml(),
                    y.semantic_tree.to_annotated_xml(),
                    "doc {i} diverged at {threads} threads"
                ),
                (Err(x), Err(y)) => assert_eq!(x, y, "doc {i} error diverged"),
                _ => panic!("doc {i}: ok/err split across thread counts"),
            }
        }
    }
}

#[test]
fn fail_fast_still_reports_every_slot() {
    let engine = engine()
        .threads(4)
        .limits(ResourceLimits::unlimited().max_nodes(100))
        .fail_fast(true);
    let wide = pathological::mega_fanout(400);
    let docs: Vec<&str> = std::iter::once(wide.as_str())
        .chain(std::iter::repeat_n(HEALTHY, 15))
        .collect();
    let report = engine.run(&docs);
    // Exactly one slot per input, every slot filled with Ok or a typed
    // error; scheduling decides *how many* got cancelled, not the shape.
    assert_eq!(report.results.len(), docs.len());
    assert!(report.metrics.failures.limit >= 1);
    assert_eq!(
        report.metrics.failed_documents,
        report.results.iter().filter(|r| r.is_err()).count()
    );
    assert_eq!(
        report.metrics.failures.cancelled,
        report
            .results
            .iter()
            .filter(|r| matches!(r, Err(XsdfError::Cancelled)))
            .count()
    );
}

#[test]
fn error_kinds_render_for_operators() {
    // The CLI prints `[kind] message`; make sure the pieces exist for
    // every variant an operator can see.
    let deep = pathological::deep_nesting(64);
    let engine = engine()
        .threads(1)
        .limits(ResourceLimits::unlimited().max_depth(16));
    let report = engine.run(&["<broken", &deep]);
    let parse = report.results[0].as_ref().unwrap_err();
    assert_eq!(parse.kind(), "parse");
    assert!(!parse.to_string().is_empty());
    let limit = report.results[1].as_ref().unwrap_err();
    assert_eq!(limit.kind(), "limit");
    assert!(limit.to_string().contains("depth"));
}
