//! The engine's determinism guarantee: batch output — chosen senses,
//! scores, and serialized semantic trees — is byte-identical to a plain
//! serial loop over [`xsdf::Xsdf`], whatever the thread count.
//!
//! This holds because (a) results are reassembled by input index, and
//! (b) the shared cache only memoizes a pure function of the concept pair,
//! so which worker computes a score first cannot change its value.

use runtime::BatchEngine;
use xsdf::{DisambiguationResult, Xsdf, XsdfConfig};

/// A byte-exact rendering of everything the engine promises to keep
/// stable: the annotated tree plus every chosen sense with its full-
/// precision score.
fn fingerprint(result: &DisambiguationResult) -> String {
    let mut out = result.semantic_tree.to_annotated_xml();
    for report in &result.reports {
        if let Some((choice, score)) = &report.chosen {
            out.push_str(&format!("\n{} {:?} {:?}", report.label, choice, score));
        }
    }
    out
}

fn corpus_xml(seed: u64, per_dataset: usize) -> Vec<String> {
    let sn = semnet::mini_wordnet();
    corpus::Corpus::generate_small(sn, seed, per_dataset)
        .documents()
        .iter()
        .map(|d| xmltree::serialize::to_string_pretty(&d.doc))
        .collect()
}

#[test]
fn parallel_batch_is_byte_identical_to_serial_loop() {
    let sn = semnet::mini_wordnet();
    let sources = corpus_xml(42, 2);
    assert!(
        sources.len() >= 10,
        "want a real batch, got {}",
        sources.len()
    );
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();

    // The reference: the ordinary single-document API in a plain loop.
    let xsdf = Xsdf::new(sn, XsdfConfig::default());
    let serial: Vec<String> = docs
        .iter()
        .map(|xml| fingerprint(&xsdf.disambiguate_str(xml).unwrap()))
        .collect();

    for threads in [1, 2, 8] {
        let engine = BatchEngine::new(sn, XsdfConfig::default()).threads(threads);
        let report = engine.run(&docs);
        let batch: Vec<String> = report
            .results
            .iter()
            .map(|r| fingerprint(r.as_ref().expect("corpus documents parse")))
            .collect();
        assert_eq!(serial, batch, "batch with {threads} threads diverged");
    }
}

#[test]
fn repeated_runs_on_a_warm_cache_stay_identical() {
    // Cached and freshly computed scores must agree bit-for-bit.
    let sn = semnet::mini_wordnet();
    let sources = corpus_xml(7, 1);
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let engine = BatchEngine::new(sn, XsdfConfig::default()).threads(4);
    let cold: Vec<String> = engine
        .run(&docs)
        .results
        .iter()
        .map(|r| fingerprint(r.as_ref().unwrap()))
        .collect();
    let warm: Vec<String> = engine
        .run(&docs)
        .results
        .iter()
        .map(|r| fingerprint(r.as_ref().unwrap()))
        .collect();
    assert_eq!(cold, warm);
}

#[test]
fn metrics_account_for_the_whole_batch() {
    let sn = semnet::mini_wordnet();
    let sources = corpus_xml(3, 1);
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let engine = BatchEngine::new(sn, XsdfConfig::default()).threads(2);
    let report = engine.run(&docs);
    let m = &report.metrics;

    assert_eq!(m.documents, docs.len());
    assert_eq!(m.failed_documents, 0);
    let expected_nodes: usize = report
        .results
        .iter()
        .map(|r| r.as_ref().unwrap().reports.len())
        .sum();
    assert_eq!(m.nodes, expected_nodes);
    let expected_assigned: usize = report
        .results
        .iter()
        .map(|r| r.as_ref().unwrap().assigned_count())
        .sum();
    assert_eq!(m.assigned, expected_assigned);
    assert!(m.targets >= m.assigned);
    assert!(m.cache_misses > 0, "a cold cache must miss");
    assert!(
        m.cache_hits > 0,
        "documents share vocabulary; some pairs must be reused"
    );
    // Two workers can race to compute the same pair (both miss, both
    // store the identical value), so entries can only be bounded by misses.
    assert!(m.cache_entries > 0);
    assert!(m.cache_entries as u64 <= m.cache_misses);
    assert!(m.stages.disambiguate > std::time::Duration::ZERO);
    assert!(m.wall_clock > std::time::Duration::ZERO);
}
