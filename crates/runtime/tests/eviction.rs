//! Cache-transparency under eviction: a bounded cache may only change
//! *when* scores are recomputed, never what they are. Batch output must
//! stay byte-identical to the unbounded run whatever the budget, the
//! thread count, or the eviction interleaving — the cache memoizes pure
//! functions, so losing an entry costs time, not correctness.

use runtime::{BatchEngine, CacheBudget};
use xsdf::{DisambiguationProcess, DisambiguationResult, XsdfConfig};

/// A byte-exact rendering of everything the engine promises to keep
/// stable: the annotated tree plus every chosen sense with its full-
/// precision score.
fn fingerprint(result: &DisambiguationResult) -> String {
    let mut out = result.semantic_tree.to_annotated_xml();
    for report in &result.reports {
        if let Some((choice, score)) = &report.chosen {
            out.push_str(&format!("\n{} {:?} {:?}", report.label, choice, score));
        }
    }
    out
}

fn corpus_xml() -> Vec<String> {
    let sn = semnet::mini_wordnet();
    corpus::Corpus::generate_small(sn, 11, 2)
        .documents()
        .iter()
        .map(|d| xmltree::serialize::to_string_pretty(&d.doc))
        .collect()
}

/// The combined process exercises BOTH cache tables: pair scores and
/// shared context vectors.
fn combined() -> XsdfConfig {
    XsdfConfig {
        process: DisambiguationProcess::Combined {
            concept: 0.5,
            context: 0.5,
        },
        ..XsdfConfig::default()
    }
}

fn run(budget: Option<CacheBudget>, threads: usize, docs: &[&str]) -> (Vec<String>, u64, u64) {
    let sn = semnet::mini_wordnet();
    let mut engine = BatchEngine::new(sn, combined()).threads(threads);
    if let Some(budget) = budget {
        engine = engine.cache_budget(budget);
    }
    let report = engine.run(docs);
    let prints = report
        .results
        .iter()
        .map(|r| fingerprint(r.as_ref().expect("corpus documents parse")))
        .collect();
    (
        prints,
        report.metrics.cache_evictions,
        report.metrics.cache_bytes,
    )
}

#[test]
fn bounded_caches_are_byte_transparent_across_thread_counts() {
    let sources = corpus_xml();
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let (reference, no_evictions, _) = run(None, 1, &docs);
    assert_eq!(no_evictions, 0, "unbounded cache must never evict");

    // An entry budget small enough that almost every insert evicts, and a
    // byte budget that forces steady-state turnover in both tables.
    let budgets = [
        CacheBudget {
            max_entries: 4,
            max_bytes: 0,
        },
        CacheBudget {
            max_entries: 0,
            max_bytes: 16 * 1024,
        },
    ];
    for budget in budgets {
        for threads in [1, 2, 8] {
            let (bounded, evictions, bytes) = run(Some(budget), threads, &docs);
            assert_eq!(
                reference, bounded,
                "bounded run diverged (budget {budget:?}, {threads} threads)"
            );
            assert!(
                evictions > 0,
                "budget {budget:?} is tight enough that the run must evict"
            );
            if budget.max_bytes > 0 {
                assert!(
                    bytes <= budget.max_bytes as u64,
                    "final cache_bytes {bytes} exceeds budget {}",
                    budget.max_bytes
                );
            }
        }
    }
}

#[test]
fn eviction_metrics_surface_in_the_batch_snapshot() {
    let sources = corpus_xml();
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let sn = semnet::mini_wordnet();
    let engine = BatchEngine::new(sn, combined())
        .threads(2)
        .cache_budget(CacheBudget {
            max_entries: 0,
            max_bytes: 8 * 1024,
        });
    let m = engine.run(&docs).metrics;
    assert!(m.cache_evictions > 0);
    assert!(m.cache_bytes <= 8 * 1024);
    assert!(m.cache_bytes_peak >= m.cache_bytes);
    assert!(m.cache_bytes_peak <= 8 * 1024, "budget holds even at peak");
}
