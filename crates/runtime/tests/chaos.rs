//! Chaos tests: fault injection through `runtime::fault` failpoints.
//!
//! Compiled only with `--features failpoints`; CI runs them as a dedicated
//! job. Every test uses *marker-targeted* actions (`PanicIf`/`DelayIf`)
//! so which documents fail is a property of the documents, not of thread
//! scheduling — the same batch must produce the same report shape at 1, 2,
//! and 8 threads.
#![cfg(feature = "failpoints")]

use std::sync::Mutex;
use std::time::Duration;

use corpus::pathological;
use runtime::fault::{self, FaultAction};
use runtime::{BatchEngine, CacheBudget, ResourceLimits, XsdfError};
use semnet::mini_wordnet;
use xsdf::XsdfConfig;

const HEALTHY: &str = "<films><picture><cast><star>Kelly</star></cast></picture></films>";
const PANIC_MARKER: &str = "CHAOS_PANIC";
const SLOW_MARKER: &str = "CHAOS_SLOW";

/// The failpoint registry is process-global, so tests that mutate it must
/// not interleave. Serializes each test body and guarantees a clean
/// registry (and a quiet panic hook) around it.
fn with_failpoints(points: &[(&str, FaultAction)], body: impl FnOnce()) {
    static LOCK: Mutex<()> = Mutex::new(());
    let _serial = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    // Injected panics are expected; silence the default per-panic banner
    // so the test output stays readable.
    std::panic::set_hook(Box::new(|_| {}));
    fault::clear();
    for (stage, action) in points {
        fault::set(stage, action.clone());
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    fault::clear();
    let _ = std::panic::take_hook(); // reinstate the default hook
    if let Err(payload) = outcome {
        std::panic::resume_unwind(payload);
    }
}

fn engine() -> BatchEngine<'static> {
    BatchEngine::new(mini_wordnet(), XsdfConfig::default())
}

#[test]
fn a_panic_at_every_stage_is_isolated_at_every_thread_count() {
    let marked = pathological::with_marker(HEALTHY, PANIC_MARKER);
    let docs = [HEALTHY, &marked, HEALTHY, &marked, &marked, HEALTHY];
    for stage in ["parse", "preprocess", "select", "disambiguate"] {
        with_failpoints(
            &[(stage, FaultAction::PanicIf(PANIC_MARKER.into()))],
            || {
                for threads in [1usize, 2, 8] {
                    let report = engine().threads(threads).run(&docs);
                    assert_eq!(report.results.len(), docs.len());
                    for (i, (doc, result)) in docs.iter().zip(&report.results).enumerate() {
                        if doc.contains(PANIC_MARKER) {
                            match result {
                                Err(XsdfError::Panicked { message }) => assert!(
                                    message.contains(stage),
                                    "stage {stage}, doc {i}: unexpected message {message:?}"
                                ),
                                other => {
                                    panic!("stage {stage}, doc {i}: expected panic, got {other:?}")
                                }
                            }
                        } else {
                            assert!(
                            result.is_ok(),
                            "stage {stage}, doc {i}, {threads} threads: healthy neighbor failed"
                        );
                        }
                    }
                    assert_eq!(report.metrics.failures.panic, 3, "stage {stage}");
                    assert_eq!(report.metrics.failed_documents, 3, "stage {stage}");
                }
            },
        );
    }
}

#[test]
fn acceptance_mix_16_of_32_survive_identically_at_all_thread_counts() {
    // The ISSUE's acceptance batch: 32 documents — 8 panic via failpoints,
    // 4 exceed a resource limit, 4 exceed their deadline — and the 16
    // healthy ones complete with byte-identical output at 1, 2, and 8
    // threads, with per-kind counts in the metrics.
    let panicky = pathological::with_marker(HEALTHY, PANIC_MARKER);
    let slow = pathological::with_marker(HEALTHY, SLOW_MARKER);
    let deep = pathological::deep_nesting(64);
    let mut docs: Vec<String> = Vec::new();
    for i in 0..32 {
        docs.push(match i % 8 {
            0 | 4 => panicky.clone(),
            1 => deep.clone(),
            5 => slow.clone(),
            _ => HEALTHY.to_string(),
        });
    }
    let views: Vec<&str> = docs.iter().map(String::as_str).collect();

    with_failpoints(
        &[
            ("disambiguate", FaultAction::PanicIf(PANIC_MARKER.into())),
            (
                "select",
                FaultAction::DelayIf(SLOW_MARKER.into(), Duration::from_millis(400)),
            ),
        ],
        || {
            let mut reference: Option<Vec<Option<String>>> = None;
            for threads in [1usize, 2, 8] {
                let report = engine()
                    .threads(threads)
                    .limits(ResourceLimits::unlimited().max_depth(16))
                    .deadline(Duration::from_millis(150))
                    .run(&views);

                let failures = report.metrics.failures;
                assert_eq!(failures.panic, 8, "{threads} threads");
                assert_eq!(failures.limit, 4, "{threads} threads");
                assert_eq!(failures.deadline, 4, "{threads} threads");
                assert_eq!(failures.parse, 0, "{threads} threads");
                assert_eq!(failures.cancelled, 0, "{threads} threads");
                assert_eq!(report.metrics.failed_documents, 16, "{threads} threads");

                let annotated: Vec<Option<String>> = report
                    .results
                    .iter()
                    .map(|r| {
                        r.as_ref()
                            .ok()
                            .map(|res| res.semantic_tree.to_annotated_xml())
                    })
                    .collect();
                assert_eq!(
                    annotated.iter().filter(|a| a.is_some()).count(),
                    16,
                    "{threads} threads"
                );
                match &reference {
                    None => reference = Some(annotated),
                    Some(reference) => assert_eq!(
                        reference, &annotated,
                        "Ok outputs diverged at {threads} threads"
                    ),
                }
            }
        },
    );
}

#[test]
fn unconditional_parse_panic_fails_the_whole_batch_without_killing_it() {
    with_failpoints(&[("parse", FaultAction::Panic)], || {
        let report = engine().threads(2).run(&[HEALTHY, HEALTHY, HEALTHY]);
        assert_eq!(report.metrics.failures.panic, 3);
        for result in &report.results {
            assert!(matches!(result, Err(XsdfError::Panicked { .. })));
        }
    });
}

#[test]
fn injected_delay_trips_the_deadline_only_on_marked_documents() {
    let slow = pathological::with_marker(HEALTHY, SLOW_MARKER);
    with_failpoints(
        &[(
            "select",
            FaultAction::DelayIf(SLOW_MARKER.into(), Duration::from_millis(300)),
        )],
        || {
            let report = engine()
                .threads(2)
                .deadline(Duration::from_millis(100))
                .run(&[HEALTHY, &slow, HEALTHY]);
            assert!(report.results[0].is_ok());
            match &report.results[1] {
                Err(XsdfError::DeadlineExceeded { budget, elapsed }) => {
                    assert_eq!(*budget, Duration::from_millis(100));
                    assert!(*elapsed >= Duration::from_millis(100));
                }
                other => panic!("expected deadline, got {other:?}"),
            }
            assert!(report.results[2].is_ok());
            assert_eq!(report.metrics.failures.deadline, 1);
        },
    );
}

#[test]
fn fail_fast_cancels_after_an_injected_panic() {
    let panicky = pathological::with_marker(HEALTHY, PANIC_MARKER);
    with_failpoints(
        &[("parse", FaultAction::PanicIf(PANIC_MARKER.into()))],
        || {
            let docs: Vec<&str> = std::iter::once(panicky.as_str())
                .chain(std::iter::repeat_n(HEALTHY, 15))
                .collect();
            let report = engine().threads(1).fail_fast(true).run(&docs);
            assert!(matches!(report.results[0], Err(XsdfError::Panicked { .. })));
            assert_eq!(report.metrics.failures.panic, 1);
            assert_eq!(report.metrics.failures.cancelled, 15);
            for result in &report.results[1..] {
                assert!(matches!(result, Err(XsdfError::Cancelled)));
            }
        },
    );
}

/// A corpus batch that scores enough distinct pairs (and, under the
/// combined process, context vectors) to keep a tiny budget evicting
/// throughout the run.
fn eviction_corpus() -> Vec<String> {
    corpus::Corpus::generate_small(mini_wordnet(), 11, 1)
        .documents()
        .iter()
        .map(|d| xmltree::serialize::to_string_pretty(&d.doc))
        .collect()
}

/// Both cache tables in play: pair scores and shared context vectors.
fn combined_config() -> XsdfConfig {
    XsdfConfig {
        process: xsdf::DisambiguationProcess::Combined {
            concept: 0.5,
            context: 0.5,
        },
        ..XsdfConfig::default()
    }
}

#[test]
fn delayed_evictions_racing_reads_stay_byte_identical() {
    // Stretch the eviction critical section so concurrent readers and
    // writers pile up against mid-eviction shards at 8 threads; output
    // must still match the unbounded (never-evicting) run byte for byte.
    let sources = eviction_corpus();
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    with_failpoints(
        &[("cache-evict", FaultAction::Delay(Duration::from_millis(1)))],
        || {
            let annotated = |report: &runtime::BatchReport| -> Vec<String> {
                report
                    .results
                    .iter()
                    .map(|r| r.as_ref().unwrap().semantic_tree.to_annotated_xml())
                    .collect()
            };
            // Unbounded never evicts, so the delay failpoint never fires
            // here — this is the clean reference.
            let reference = annotated(
                &BatchEngine::new(mini_wordnet(), combined_config())
                    .threads(8)
                    .run(&docs),
            );
            let engine = BatchEngine::new(mini_wordnet(), combined_config())
                .threads(8)
                .cache_budget(CacheBudget {
                    max_entries: 64,
                    max_bytes: 0,
                });
            let report = engine.run(&docs);
            assert!(
                report.metrics.cache_evictions > 0,
                "the budget must actually trigger the raced evictions"
            );
            assert_eq!(
                reference,
                annotated(&report),
                "eviction races changed output"
            );
        },
    );
}

#[test]
fn a_panic_mid_eviction_is_isolated_and_the_cache_recovers() {
    // `cache-evict` fires (before any mutation) while the shard write
    // lock is held, so an injected panic poisons the shard at the worst
    // moment. The document that tripped it fails alone; once the fault is
    // gone the same engine — same poisoned-then-recovered cache — keeps
    // serving with byte accounting intact.
    let sources = eviction_corpus();
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    for table in ["pair", "vector"] {
        with_failpoints(
            &[("cache-evict", FaultAction::PanicIf(table.into()))],
            || {
                let budget = CacheBudget {
                    max_entries: 32,
                    max_bytes: 0,
                };
                let engine = BatchEngine::new(mini_wordnet(), combined_config())
                    .threads(2)
                    .cache_budget(budget);
                let first = engine.run(&docs);
                assert_eq!(first.results.len(), docs.len());
                assert!(
                    first.metrics.failures.panic > 0,
                    "table {table}: a tight budget must trip the eviction failpoint"
                );
                // Disarm the fault and rerun on the SAME engine: recovered
                // shards must serve correctly and the budget must hold.
                fault::set("cache-evict", FaultAction::PanicIf("NEVER".into()));
                let second = engine.run(&docs);
                for (i, result) in second.results.iter().enumerate() {
                    assert!(result.is_ok(), "table {table}, doc {i}: did not recover");
                }
                assert_eq!(second.metrics.failed_documents, 0, "table {table}");
                // Accounting survived the poisoning: entries within the
                // budget on both tables (each capped at max_entries).
                assert!(
                    second.metrics.cache_entries <= budget.max_entries,
                    "{table}"
                );
                assert!(
                    second.metrics.vector_entries <= budget.max_entries,
                    "{table}"
                );
            },
        );
    }
}

#[test]
fn shared_cache_survives_panicking_neighbors() {
    // Panics fire mid-pipeline while healthy documents score through the
    // same shared cache; a poisoned shard must not cascade.
    let panicky = pathological::with_marker(HEALTHY, PANIC_MARKER);
    with_failpoints(
        &[("disambiguate", FaultAction::PanicIf(PANIC_MARKER.into()))],
        || {
            let engine = engine().threads(8);
            let docs: Vec<&str> = (0..32)
                .map(|i| {
                    if i % 2 == 0 {
                        panicky.as_str()
                    } else {
                        HEALTHY
                    }
                })
                .collect();
            let first = engine.run(&docs);
            assert_eq!(first.metrics.failures.panic, 16);
            // A second run on the same engine still works and reuses the
            // warm cache.
            let second = engine.run(&[HEALTHY]);
            assert!(second.results[0].is_ok());
            assert_eq!(
                second.metrics.cache_misses, 0,
                "cache stays usable and warm"
            );
        },
    );
}
