//! Shard reports: the wire format between the sharded batch driver's
//! worker processes and the parent that merges them.
//!
//! `xsdf batch --shards N` re-invokes itself once per shard over a
//! partition of the inputs. Each child serializes its final
//! [`MetricsSnapshot`] into a [`ShardReport`] — a versioned, line-based
//! text file (one `key value` pair per line, histograms in their
//! [`Histogram::encode`] form) — and the parent folds the reports
//! together with [`MetricsSnapshot::merge`]. Everything travels
//! losslessly: the merged histograms, stage timings, and counters are
//! exactly what a single process over all inputs would have produced,
//! independent of shard count (wall-clock and thread count excepted —
//! those are concurrency maxima, documented on the merge).
//!
//! The format is deliberately not JSON: it is written and parsed by the
//! two ends of a pipe we fully control, a version header makes skew
//! detectable, and hand-rolled line parsing keeps this crate std-only.

use std::time::Duration;

use crate::hist::Histogram;
use crate::metrics::{FailureCounts, MetricsSnapshot, StageLatency, StageTimings};

/// The header line every report starts with; bump the version when the
/// field set changes so a parent never merges a report written by a
/// different binary layout.
const HEADER: &str = "xsdf-shard-report v1";

/// One worker process's complete metrics, as shipped to the merging
/// parent.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// The shard's final engine metrics.
    pub metrics: MetricsSnapshot,
}

impl ShardReport {
    /// Wraps a snapshot for transport.
    pub fn new(metrics: MetricsSnapshot) -> Self {
        Self { metrics }
    }

    /// Serializes the report into its line-based text form (trailing
    /// newline included).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let m = &self.metrics;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "threads {}", m.threads);
        let _ = writeln!(out, "documents {}", m.documents);
        let _ = writeln!(out, "failed_documents {}", m.failed_documents);
        let _ = writeln!(out, "failed_parse {}", m.failures.parse);
        let _ = writeln!(out, "failed_limit {}", m.failures.limit);
        let _ = writeln!(out, "failed_deadline {}", m.failures.deadline);
        let _ = writeln!(out, "failed_panic {}", m.failures.panic);
        let _ = writeln!(out, "failed_cancelled {}", m.failures.cancelled);
        let _ = writeln!(out, "nodes {}", m.nodes);
        let _ = writeln!(out, "targets {}", m.targets);
        let _ = writeln!(out, "assigned {}", m.assigned);
        let _ = writeln!(out, "stage_parse_ns {}", m.stages.parse.as_nanos());
        let _ = writeln!(
            out,
            "stage_preprocess_ns {}",
            m.stages.preprocess.as_nanos()
        );
        let _ = writeln!(out, "stage_select_ns {}", m.stages.select.as_nanos());
        let _ = writeln!(
            out,
            "stage_disambiguate_ns {}",
            m.stages.disambiguate.as_nanos()
        );
        let _ = writeln!(out, "wall_clock_ns {}", m.wall_clock.as_nanos());
        let _ = writeln!(out, "cache_hits {}", m.cache_hits);
        let _ = writeln!(out, "cache_misses {}", m.cache_misses);
        let _ = writeln!(out, "cache_entries {}", m.cache_entries);
        let _ = writeln!(out, "cache_evictions {}", m.cache_evictions);
        let _ = writeln!(out, "cache_bytes {}", m.cache_bytes);
        let _ = writeln!(out, "cache_bytes_peak {}", m.cache_bytes_peak);
        let _ = writeln!(out, "gloss_pairs_scored {}", m.gloss_pairs_scored);
        let _ = writeln!(out, "vectors_built {}", m.vectors_built);
        let _ = writeln!(out, "vectors_reused {}", m.vectors_reused);
        let _ = writeln!(out, "vector_entries {}", m.vector_entries);
        let _ = writeln!(out, "candidates_pruned {}", m.candidates_pruned);
        let _ = writeln!(out, "early_exits {}", m.early_exits);
        let _ = writeln!(out, "hist_parse {}", m.latency.parse.encode());
        let _ = writeln!(out, "hist_preprocess {}", m.latency.preprocess.encode());
        let _ = writeln!(out, "hist_select {}", m.latency.select.encode());
        let _ = writeln!(out, "hist_disambiguate {}", m.latency.disambiguate.encode());
        let _ = writeln!(out, "hist_doc {}", m.latency.doc.encode());
        out
    }

    /// Parses a report from its [`ShardReport::to_text`] form.
    ///
    /// Strict by design — this is an internal protocol, so any deviation
    /// (wrong header, missing/duplicate/unknown key, malformed value)
    /// means binary skew or a truncated file, and the parent must fail
    /// the whole run rather than merge garbage. The error string names
    /// the offending line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(HEADER) => {}
            Some(other) => return Err(format!("bad shard report header: {other:?}")),
            None => return Err("empty shard report".to_string()),
        }
        let mut fields: Vec<(&str, &str)> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed shard report line: {line:?}"))?;
            if fields.iter().any(|&(k, _)| k == key) {
                return Err(format!("duplicate shard report key: {key}"));
            }
            fields.push((key, value));
        }
        let mut used = vec![false; fields.len()];
        let mut raw = |key: &str| -> Result<&str, String> {
            let at = fields
                .iter()
                .position(|&(k, _)| k == key)
                .ok_or_else(|| format!("missing shard report key: {key}"))?;
            used[at] = true;
            Ok(fields[at].1)
        };
        macro_rules! num {
            ($key:literal) => {
                raw($key)?
                    .parse()
                    .map_err(|_| format!("bad value for {}", $key))?
            };
        }
        macro_rules! ns {
            ($key:literal) => {
                Duration::from_nanos(num!($key))
            };
        }
        macro_rules! hist {
            ($key:literal) => {
                Histogram::decode(raw($key)?)
                    .ok_or_else(|| format!("bad histogram for {}", $key))?
            };
        }
        let metrics = MetricsSnapshot {
            threads: num!("threads"),
            documents: num!("documents"),
            failed_documents: num!("failed_documents"),
            failures: FailureCounts {
                parse: num!("failed_parse"),
                limit: num!("failed_limit"),
                deadline: num!("failed_deadline"),
                panic: num!("failed_panic"),
                cancelled: num!("failed_cancelled"),
            },
            nodes: num!("nodes"),
            targets: num!("targets"),
            assigned: num!("assigned"),
            stages: StageTimings {
                parse: ns!("stage_parse_ns"),
                preprocess: ns!("stage_preprocess_ns"),
                select: ns!("stage_select_ns"),
                disambiguate: ns!("stage_disambiguate_ns"),
            },
            latency: StageLatency {
                parse: hist!("hist_parse"),
                preprocess: hist!("hist_preprocess"),
                select: hist!("hist_select"),
                disambiguate: hist!("hist_disambiguate"),
                doc: hist!("hist_doc"),
            },
            wall_clock: ns!("wall_clock_ns"),
            cache_hits: num!("cache_hits"),
            cache_misses: num!("cache_misses"),
            cache_entries: num!("cache_entries"),
            cache_evictions: num!("cache_evictions"),
            cache_bytes: num!("cache_bytes"),
            cache_bytes_peak: num!("cache_bytes_peak"),
            gloss_pairs_scored: num!("gloss_pairs_scored"),
            vectors_built: num!("vectors_built"),
            vectors_reused: num!("vectors_reused"),
            vector_entries: num!("vector_entries"),
            candidates_pruned: num!("candidates_pruned"),
            early_exits: num!("early_exits"),
        };
        if let Some(at) = used.iter().position(|&u| !u) {
            return Err(format!("unknown shard report key: {}", fields[at].0));
        }
        Ok(Self { metrics })
    }

    /// Merges a sequence of shard reports into one snapshot via
    /// [`MetricsSnapshot::merge`]. Returns `None` for an empty sequence.
    pub fn merge_all<'a, I>(reports: I) -> Option<MetricsSnapshot>
    where
        I: IntoIterator<Item = &'a ShardReport>,
    {
        let mut reports = reports.into_iter();
        let mut merged = reports.next()?.metrics.clone();
        for report in reports {
            merged.merge(&report.metrics);
        }
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(seed: u64) -> MetricsSnapshot {
        let mut latency = StageLatency::default();
        for i in 0..seed * 3 + 1 {
            let ns = (seed + 1) * 1000 + i * 977;
            latency.parse.record(Duration::from_nanos(ns));
            latency.doc.record(Duration::from_nanos(ns * 4));
        }
        MetricsSnapshot {
            threads: 1 + seed as usize % 3,
            documents: 10 + seed as usize,
            failed_documents: seed as usize % 2,
            failures: FailureCounts {
                parse: seed as usize % 2,
                ..FailureCounts::default()
            },
            nodes: 100 * (seed as usize + 1),
            targets: 30,
            assigned: 28,
            stages: StageTimings {
                parse: Duration::from_micros(11 * (seed + 1)),
                preprocess: Duration::from_micros(7),
                select: Duration::from_micros(5),
                disambiguate: Duration::from_micros(90),
            },
            latency,
            wall_clock: Duration::from_millis(2 + seed),
            cache_hits: 5 * seed,
            cache_misses: seed,
            cache_entries: 4,
            cache_evictions: 0,
            cache_bytes: 1024,
            cache_bytes_peak: 2048,
            gloss_pairs_scored: seed,
            vectors_built: 2,
            vectors_reused: 9,
            vector_entries: 2,
            candidates_pruned: 1,
            early_exits: 0,
        }
    }

    #[test]
    fn roundtrips_losslessly() {
        for seed in 0..5 {
            let report = ShardReport::new(snapshot(seed));
            let back = ShardReport::from_text(&report.to_text()).expect("parses");
            assert_eq!(back, report);
        }
        // The all-zero snapshot (a shard that processed nothing).
        let zero = ShardReport::new(MetricsSnapshot {
            threads: 0,
            documents: 0,
            failed_documents: 0,
            failures: FailureCounts::default(),
            nodes: 0,
            targets: 0,
            assigned: 0,
            stages: StageTimings::default(),
            latency: StageLatency::default(),
            wall_clock: Duration::ZERO,
            cache_hits: 0,
            cache_misses: 0,
            cache_entries: 0,
            cache_evictions: 0,
            cache_bytes: 0,
            cache_bytes_peak: 0,
            gloss_pairs_scored: 0,
            vectors_built: 0,
            vectors_reused: 0,
            vector_entries: 0,
            candidates_pruned: 0,
            early_exits: 0,
        });
        assert_eq!(ShardReport::from_text(&zero.to_text()).unwrap(), zero);
    }

    #[test]
    fn merge_over_the_wire_equals_in_process_merge() {
        // The determinism argument for `--shards N`: shipping snapshots
        // through the text format and merging them is indistinguishable
        // from merging them in process, regardless of order.
        let parts: Vec<ShardReport> = (0..4).map(|s| ShardReport::new(snapshot(s))).collect();
        let direct = {
            let mut m = parts[0].metrics.clone();
            for p in &parts[1..] {
                m.merge(&p.metrics);
            }
            m
        };
        let wired: Vec<ShardReport> = parts
            .iter()
            .map(|p| ShardReport::from_text(&p.to_text()).unwrap())
            .collect();
        assert_eq!(ShardReport::merge_all(&wired), Some(direct.clone()));
        // Reversed arrival order: same merged snapshot.
        let reversed: Vec<ShardReport> = wired.iter().rev().cloned().collect();
        assert_eq!(ShardReport::merge_all(&reversed), Some(direct));
        assert_eq!(ShardReport::merge_all([].iter()), None);
    }

    #[test]
    fn rejects_skewed_or_truncated_reports() {
        let good = ShardReport::new(snapshot(1)).to_text();
        // Wrong header / empty input.
        assert!(ShardReport::from_text("").unwrap_err().contains("empty"));
        assert!(ShardReport::from_text("xsdf-shard-report v0\n")
            .unwrap_err()
            .contains("header"));
        // Truncation loses required keys.
        let truncated: String = good.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(ShardReport::from_text(&truncated)
            .unwrap_err()
            .contains("missing"));
        // Duplicate and unknown keys are both fatal.
        assert!(ShardReport::from_text(&format!("{good}documents 3\n"))
            .unwrap_err()
            .contains("duplicate"));
        assert!(ShardReport::from_text(&format!("{good}mystery 3\n"))
            .unwrap_err()
            .contains("unknown"));
        // Corrupt histogram text.
        let corrupt = good.replace("hist_doc ", "hist_doc x");
        assert!(ShardReport::from_text(&corrupt)
            .unwrap_err()
            .contains("hist_doc"));
    }
}
