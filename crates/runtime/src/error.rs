//! The unified per-document failure taxonomy of the batch runtime.
//!
//! Every way a document can fail inside [`crate::BatchEngine`] maps onto
//! one [`XsdfError`] variant, so callers (and the `xsdf` CLI) can report,
//! count, and retry failures by kind instead of pattern-matching on error
//! strings.

use std::fmt;
use std::time::Duration;

use xmltree::{ParseError, ParseErrorKind};
use xsdf::guard::{GuardError, LimitKind};

/// Why one document of a batch failed. Failures are always per-document:
/// an erroring document never affects its batch neighbors.
#[derive(Debug, Clone, PartialEq)]
pub enum XsdfError {
    /// The document is not well-formed XML.
    Parse(ParseError),
    /// The document exceeded a configured [`crate::ResourceLimits`] bound.
    LimitExceeded {
        /// Which bound.
        which: LimitKind,
        /// The configured limit.
        limit: u64,
        /// The observed (first offending) value.
        actual: u64,
    },
    /// The per-document deadline passed before the pipeline finished.
    DeadlineExceeded {
        /// The configured per-document budget.
        budget: Duration,
        /// Elapsed time when the overrun was detected.
        elapsed: Duration,
    },
    /// The pipeline panicked while processing this document. The panic was
    /// caught at the document boundary; sibling documents are unaffected.
    Panicked {
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
    /// The document was never processed because the batch was cancelled
    /// first (fail-fast mode after an earlier failure).
    Cancelled,
}

impl XsdfError {
    /// A short stable kind tag (`parse`, `limit`, `deadline`, `panic`,
    /// `cancelled`) for logs, CLI output, and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Parse(_) => "parse",
            Self::LimitExceeded { .. } => "limit",
            Self::DeadlineExceeded { .. } => "deadline",
            Self::Panicked { .. } => "panic",
            Self::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for XsdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "{e}"),
            Self::LimitExceeded {
                which,
                limit,
                actual,
            } => write!(f, "{which} limit of {limit} exceeded ({actual})"),
            Self::DeadlineExceeded { budget, elapsed } => write!(
                f,
                "deadline of {:.1} ms exceeded after {:.1} ms",
                budget.as_secs_f64() * 1e3,
                elapsed.as_secs_f64() * 1e3
            ),
            Self::Panicked { message } => write!(f, "pipeline panicked: {message}"),
            Self::Cancelled => write!(f, "cancelled before processing (fail-fast batch)"),
        }
    }
}

impl std::error::Error for XsdfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for XsdfError {
    /// Classifies parse failures: exceeding the parser's depth bound is a
    /// resource-limit violation (the input may be perfectly well-formed),
    /// everything else is a genuine parse error.
    fn from(e: ParseError) -> Self {
        match e.kind {
            ParseErrorKind::DepthExceeded { limit } => Self::LimitExceeded {
                which: LimitKind::Depth,
                limit: u64::from(limit),
                actual: u64::from(limit) + 1,
            },
            // The streaming parser's in-scan bounds: like depth, these
            // mean "too big", not "malformed". The parser stops at the
            // first violation, so the observed value is limit + 1 (one
            // byte/node too many).
            ParseErrorKind::BytesExceeded { limit } => Self::LimitExceeded {
                which: LimitKind::Bytes,
                limit: limit as u64,
                actual: limit as u64 + 1,
            },
            ParseErrorKind::NodesExceeded { limit } => Self::LimitExceeded {
                which: LimitKind::Nodes,
                limit: limit as u64,
                actual: limit as u64 + 1,
            },
            _ => Self::Parse(e),
        }
    }
}

impl From<GuardError> for XsdfError {
    fn from(e: GuardError) -> Self {
        match e {
            GuardError::LimitExceeded {
                which,
                limit,
                actual,
            } => Self::LimitExceeded {
                which,
                limit,
                actual,
            },
            GuardError::DeadlineExceeded { budget, elapsed } => {
                Self::DeadlineExceeded { budget, elapsed }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_parse_errors_classify_as_limits() {
        let mut deep = String::new();
        for _ in 0..300 {
            deep.push_str("<n>");
        }
        let parse_err = xmltree::parse(&deep).unwrap_err();
        let err = XsdfError::from(parse_err);
        assert_eq!(err.kind(), "limit");
        assert!(matches!(
            err,
            XsdfError::LimitExceeded {
                which: LimitKind::Depth,
                limit: 256,
                actual: 257
            }
        ));
    }

    #[test]
    fn stream_limit_parse_errors_classify_as_limits() {
        use xmltree::stream::{parse_chunks, StreamLimits};
        let byte_err =
            parse_chunks(["<r>0123456789</r>"], StreamLimits::default().max_bytes(4)).unwrap_err();
        let err = XsdfError::from(byte_err);
        assert!(matches!(
            err,
            XsdfError::LimitExceeded {
                which: LimitKind::Bytes,
                limit: 4,
                actual: 5
            }
        ));
        let node_err = parse_chunks(
            ["<r><a/><b/><c/></r>"],
            StreamLimits::default().max_nodes(2),
        )
        .unwrap_err();
        let err = XsdfError::from(node_err);
        assert!(matches!(
            err,
            XsdfError::LimitExceeded {
                which: LimitKind::Nodes,
                limit: 2,
                actual: 3
            }
        ));
    }

    #[test]
    fn ordinary_parse_errors_stay_parse() {
        let err = XsdfError::from(xmltree::parse("<a></b>").unwrap_err());
        assert_eq!(err.kind(), "parse");
        assert!(err.to_string().contains("mismatched"));
    }

    #[test]
    fn guard_errors_convert_losslessly() {
        let err: XsdfError = GuardError::LimitExceeded {
            which: LimitKind::SensePairs,
            limit: 10,
            actual: 11,
        }
        .into();
        assert_eq!(err.kind(), "limit");
        let err: XsdfError = GuardError::DeadlineExceeded {
            budget: Duration::from_millis(5),
            elapsed: Duration::from_millis(9),
        }
        .into();
        assert_eq!(err.kind(), "deadline");
        assert!(err.to_string().contains("5.0 ms"));
    }

    #[test]
    fn every_kind_has_a_stable_tag() {
        assert_eq!(
            XsdfError::Panicked {
                message: "boom".into()
            }
            .kind(),
            "panic"
        );
        assert_eq!(XsdfError::Cancelled.kind(), "cancelled");
    }
}
