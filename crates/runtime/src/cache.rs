//! Thread-safe shared multi-table similarity cache with capacity bounds
//! and byte accounting.
//!
//! Sense-pair similarities and concept context vectors are
//! document-independent: once `Sim(c1, c2)` or `V_d(s_p)` is computed for
//! one document, every other document in the batch (and every later run
//! over the same engine) can reuse it. [`SharedCache`] makes that reuse
//! safe across worker threads while keeping contention low by sharding
//! *both* tables — pair scores and context vectors — over independent
//! [`RwLock`]-protected maps: readers on different shards (and even on the
//! same shard) never serialize, and writers only lock 1/16th of a table.
//! Stored `Arc<SparseVector>` values make vector hits clone-free.
//!
//! # Bounded operation
//!
//! A batch over 32 documents can let the cache grow freely; a resident
//! server cannot — the working set of a streaming corpus grows without
//! bound. [`SharedCache::with_budget`] turns on eviction:
//!
//! * **Recency tracking** is clock-style: every entry carries a stamp from
//!   a per-table logical clock, refreshed on hit with a relaxed atomic
//!   store — the hot read path never takes a write lock.
//! * **Eviction** happens on insert, per shard, while the write lock is
//!   already held: when the shard would exceed its slice of the entry or
//!   byte budget, the coldest segment (lowest stamps, at least a quarter
//!   of the shard) is dropped in one batch, amortizing the sort.
//! * **Byte accounting** charges each entry its key + slot footprint plus,
//!   for vectors, [`SparseVector::heap_bytes`]. Budgets are split across
//!   shards up front (and, for bytes, halved between the two tables), so
//!   the invariant is local: no shard ever holds more than its slice,
//!   hence the whole cache never exceeds its budget — there is no global
//!   enforcement race to lose.
//!
//! `CacheBudget::unbounded()` (both limits 0) preserves the original
//! behavior exactly: no stamps are refreshed, nothing is ever evicted.

use semsim::{PairKey, SimilarityCache, SparseVector, VectorKey};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::fault;

/// Number of independent shards per table. A small power of two: enough to
/// keep a typical worker pool (≤ #cores) from colliding, cheap to index by
/// masking.
const SHARDS: usize = 16;

/// Flat per-entry allowance for the `HashMap` bucket (hash + control bytes
/// + load-factor slack) on top of the key and slot sizes.
const MAP_ENTRY_OVERHEAD: usize = 16;

/// Capacity budget for a [`SharedCache`]. Either limit set to `0` means
/// "unbounded" on that axis; the default is unbounded on both, preserving
/// batch behavior.
///
/// * `max_entries` caps **each table** (pair scores, context vectors) at
///   that many entries.
/// * `max_bytes` caps the **whole cache**: the byte budget is split evenly
///   between the two tables, then across each table's 16 shards, so the
///   sum of all shard footprints can never exceed it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheBudget {
    /// Maximum entries per table (0 = unlimited).
    pub max_entries: usize,
    /// Maximum total bytes across both tables (0 = unlimited).
    pub max_bytes: usize,
}

impl CacheBudget {
    /// No limits on either axis.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// `true` when at least one axis is limited.
    pub fn is_bounded(&self) -> bool {
        self.max_entries != 0 || self.max_bytes != 0
    }
}

/// One cached value plus its recency stamp and byte cost.
struct Slot<V> {
    value: V,
    /// Bytes charged against the shard budget when this entry landed.
    cost: usize,
    /// Logical insertion/access time; refreshed on hit (relaxed store
    /// under the read lock), compared when picking eviction victims.
    stamp: AtomicU64,
}

/// The locked interior of one shard: the map plus its byte footprint.
struct ShardMap<K, V> {
    map: HashMap<K, Slot<V>>,
    bytes: usize,
}

impl<K, V> ShardMap<K, V> {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            bytes: 0,
        }
    }
}

/// Eviction/byte gauges shared by both tables of one cache.
#[derive(Default)]
struct Counters {
    /// Current bytes across both tables (sum of shard footprints).
    bytes: AtomicU64,
    /// High watermark of `bytes` over the cache's lifetime.
    bytes_peak: AtomicU64,
    /// Entries dropped to stay within budget (including stores rejected
    /// because a single entry exceeds its shard's slice).
    evictions: AtomicU64,
}

impl Counters {
    /// Applies one insert/evict's net byte delta and eviction count.
    /// Called while the mutating shard's write lock is still held, so the
    /// global gauge is always a consistent sum of shard footprints.
    fn apply(&self, added: usize, freed: usize, evicted: u64) {
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        let now = if added >= freed {
            self.bytes
                .fetch_add((added - freed) as u64, Ordering::Relaxed)
                + (added - freed) as u64
        } else {
            self.bytes
                .fetch_sub((freed - added) as u64, Ordering::Relaxed)
                - (freed - added) as u64
        };
        self.bytes_peak.fetch_max(now, Ordering::Relaxed);
    }
}

/// One 16-way sharded, optionally bounded table.
struct Table<K, V> {
    shards: [RwLock<ShardMap<K, V>>; SHARDS],
    /// Logical clock driving recency stamps. Only advanced when bounded.
    clock: AtomicU64,
    /// Per-shard entry caps (`usize::MAX` = unbounded). Budgets are
    /// distributed with remainder so the caps sum exactly to the total.
    entry_caps: [usize; SHARDS],
    /// Per-shard byte caps (`usize::MAX` = unbounded).
    byte_caps: [usize; SHARDS],
    /// `true` when either axis is bounded — gates stamp refreshes so the
    /// unbounded hot path stays store-free.
    bounded: bool,
    /// Failpoint context (`"pair"` / `"vector"`) for eviction chaos tests.
    fp_ctx: &'static str,
}

/// Splits `total` over the shards, remainder to the lowest indices, so the
/// per-shard caps sum exactly to `total`. `0` (unbounded) maps every shard
/// to `usize::MAX`.
fn distribute(total: usize) -> [usize; SHARDS] {
    if total == 0 {
        return [usize::MAX; SHARDS];
    }
    std::array::from_fn(|i| total / SHARDS + usize::from(i < total % SHARDS))
}

impl<K: Eq + Hash + Copy, V: Clone> Table<K, V> {
    fn new(max_entries: usize, max_bytes: usize, fp_ctx: &'static str) -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(ShardMap::new())),
            clock: AtomicU64::new(0),
            entry_caps: distribute(max_entries),
            byte_caps: distribute(max_bytes),
            bounded: max_entries != 0 || max_bytes != 0,
            fp_ctx,
        }
    }

    fn shard_index(&self, key: &K) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) & (SHARDS - 1)
    }

    // Poisoned-shard audit: the batch engine catches panics at the document
    // boundary, so a worker can panic while holding a shard lock, poisoning
    // it for every surviving worker. Recovering the guard is sound here
    // because a shard only ever maps keys to pure, idempotent values (any
    // worker recomputing an entry stores an identical one), and every
    // multi-step mutation keeps `ShardMap::bytes` in sync with `map` before
    // any point that can unwind — the eviction failpoint fires *before* the
    // first removal, so even an injected panic never tears the accounting.
    // Propagating the poison instead would turn one caught panic into a
    // cascade that kills the surviving documents — exactly what panic
    // isolation exists to prevent.
    fn read_shard(&self, idx: usize) -> RwLockReadGuard<'_, ShardMap<K, V>> {
        self.shards[idx]
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write_shard(&self, idx: usize) -> RwLockWriteGuard<'_, ShardMap<K, V>> {
        self.shards[idx]
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn get(&self, key: &K) -> Option<V> {
        let shard = self.read_shard(self.shard_index(key));
        shard.map.get(key).map(|slot| {
            if self.bounded {
                // Recency refresh under the *read* lock: hits stay
                // contention-free, eviction still sees warm entries last.
                slot.stamp.store(
                    self.clock.fetch_add(1, Ordering::Relaxed),
                    Ordering::Relaxed,
                );
            }
            slot.value.clone()
        })
    }

    /// Inserts `key → value` charging `cost` bytes, evicting the coldest
    /// segment of the target shard first if the insert would overflow its
    /// slice of the budget. Oversized entries (cost alone above the shard
    /// byte cap, or a zero entry cap) are rejected and counted as an
    /// eviction — the caller keeps its freshly computed value; it is
    /// simply not retained.
    fn insert(&self, key: K, value: V, cost: usize, counters: &Counters) {
        let idx = self.shard_index(&key);
        let (entry_cap, byte_cap) = (self.entry_caps[idx], self.byte_caps[idx]);
        let mut shard = self.write_shard(idx);
        let mut freed = 0usize;
        let mut evicted = 0u64;
        if let Some(old) = shard.map.remove(&key) {
            shard.bytes -= old.cost;
            freed += old.cost;
        }
        if entry_cap == 0 || cost > byte_cap {
            // Can never fit: reject (and record the replacement's removal).
            counters.apply(0, freed, evicted + 1);
            return;
        }
        if shard.map.len() + 1 > entry_cap || shard.bytes + cost > byte_cap {
            let (n, b) = evict_coldest(&mut shard, entry_cap - 1, byte_cap - cost, self.fp_ctx);
            evicted += n;
            freed += b;
        }
        // Stamps advance on every insert (inserts are rare and already
        // write-locked), so even an unbounded table trims oldest-first
        // under the server's watermark path; only the hit-refresh is gated
        // on `bounded` to keep the unbounded hot path store-free.
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        shard.map.insert(
            key,
            Slot {
                value,
                cost,
                stamp: AtomicU64::new(stamp),
            },
        );
        shard.bytes += cost;
        // Gauges update before the lock drops (see `Counters::apply`).
        counters.apply(cost, freed, evicted);
    }

    fn len(&self) -> usize {
        (0..SHARDS).map(|i| self.read_shard(i).map.len()).sum()
    }

    /// Drops the coldest segment of every shard (at least one entry per
    /// non-empty shard). One trim round for the watermark path; callers
    /// loop until the global gauge is low enough.
    fn trim_round(&self, counters: &Counters) -> u64 {
        let mut total = 0;
        for idx in 0..SHARDS {
            let mut shard = self.write_shard(idx);
            if shard.map.is_empty() {
                continue;
            }
            // `usize::MAX` targets: nothing is "over", so only the
            // quarter-segment minimum applies — one cold segment per round.
            let (n, b) = evict_coldest(&mut shard, usize::MAX, usize::MAX, self.fp_ctx);
            counters.apply(0, b, n);
            total += n;
        }
        total
    }
}

/// Evicts the coldest entries (lowest stamps) from `shard` until it holds
/// at most `max_entries` entries and `max_bytes` bytes — but always at
/// least a quarter of the shard, so the per-insert sort amortizes to
/// O(log n). Returns `(entries_evicted, bytes_freed)`.
fn evict_coldest<K: Eq + Hash + Copy, V>(
    shard: &mut ShardMap<K, V>,
    max_entries: usize,
    max_bytes: usize,
    fp_ctx: &str,
) -> (u64, usize) {
    // Chaos hook: fires before any mutation, so an injected panic poisons
    // the lock without ever tearing the byte accounting.
    fault::hit("cache-evict", fp_ctx);
    let mut order: Vec<(u64, K)> = shard
        .map
        .iter()
        .map(|(k, slot)| (slot.stamp.load(Ordering::Relaxed), *k))
        .collect();
    order.sort_unstable_by_key(|&(stamp, _)| stamp);
    let quarter = shard.map.len().div_ceil(4);
    let mut evicted = 0u64;
    let mut freed = 0usize;
    for (i, (_, key)) in order.iter().enumerate() {
        let over = shard.map.len() > max_entries || shard.bytes > max_bytes;
        if !over && i >= quarter {
            break;
        }
        if let Some(slot) = shard.map.remove(key) {
            shard.bytes -= slot.cost;
            freed += slot.cost;
            evicted += 1;
        }
    }
    (evicted, freed)
}

/// A sharded, thread-safe concept-pair + context-vector cache with
/// hit/miss accounting, optional capacity bounds, and byte accounting.
///
/// Implements [`SimilarityCache`], so a
/// [`CombinedSimilarity`](semsim::CombinedSimilarity) scores straight
/// through it: wrap the cache in an [`Arc`](std::sync::Arc) and hand each
/// worker `CombinedSimilarity::with_cache(weights, Arc::clone(&cache))`.
pub struct SharedCache {
    pairs: Table<PairKey, f64>,
    vectors: Table<VectorKey, Arc<SparseVector>>,
    budget: CacheBudget,
    counters: Counters,
    hits: AtomicU64,
    misses: AtomicU64,
    vector_hits: AtomicU64,
    vector_misses: AtomicU64,
}

/// Bytes charged for one pair-score entry (key + slot + map overhead).
fn pair_cost() -> usize {
    std::mem::size_of::<PairKey>() + std::mem::size_of::<Slot<f64>>() + MAP_ENTRY_OVERHEAD
}

/// Bytes charged for one context-vector entry: key + slot + map overhead
/// plus the vector's own struct and heap footprint. The `Arc` may be
/// shared with readers, but the cache is what keeps it alive, so it is
/// charged in full.
fn vector_cost(v: &SparseVector) -> usize {
    std::mem::size_of::<VectorKey>()
        + std::mem::size_of::<Slot<Arc<SparseVector>>>()
        + MAP_ENTRY_OVERHEAD
        + std::mem::size_of::<SparseVector>()
        + v.heap_bytes()
}

impl SharedCache {
    /// An empty, unbounded cache (batch behavior: nothing is ever
    /// evicted).
    pub fn new() -> Self {
        Self::with_budget(CacheBudget::unbounded())
    }

    /// An empty cache enforcing `budget` (see [`CacheBudget`] for how the
    /// limits are split across tables and shards).
    pub fn with_budget(budget: CacheBudget) -> Self {
        // The byte budget covers both tables; each gets half, remainder to
        // the vector table (its entries are the big ones).
        let (pair_bytes, vector_bytes) = if budget.max_bytes == 0 {
            (0, 0)
        } else {
            let half = budget.max_bytes / 2;
            (half, budget.max_bytes - half)
        };
        Self {
            pairs: Table::new(budget.max_entries, pair_bytes, "pair"),
            vectors: Table::new(budget.max_entries, vector_bytes, "vector"),
            budget,
            counters: Counters::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            vector_hits: AtomicU64::new(0),
            vector_misses: AtomicU64::new(0),
        }
    }

    /// The budget this cache enforces.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// Current accounted bytes across both tables. Never exceeds
    /// `budget().max_bytes` when that is non-zero.
    pub fn bytes(&self) -> u64 {
        self.counters.bytes.load(Ordering::Relaxed)
    }

    /// Lifetime high watermark of [`SharedCache::bytes`].
    pub fn bytes_peak(&self) -> u64 {
        self.counters.bytes_peak.load(Ordering::Relaxed)
    }

    /// Entries dropped to stay within budget (both tables, including
    /// watermark trims and rejected oversized stores).
    pub fn evictions(&self) -> u64 {
        self.counters.evictions.load(Ordering::Relaxed)
    }

    /// Evicts cold segments from both tables until the accounted bytes
    /// drop to `target_bytes` or the cache is empty. The server's
    /// soft/hard-watermark response; returns entries evicted. Safe (and
    /// useful) even on an unbounded cache.
    pub fn trim_to(&self, target_bytes: u64) -> u64 {
        let mut evicted = 0;
        while self.bytes() > target_bytes {
            let round =
                self.pairs.trim_round(&self.counters) + self.vectors.trim_round(&self.counters);
            evicted += round;
            if round == 0 {
                break;
            }
        }
        evicted
    }

    /// Lookups that found a cached score.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed (each followed by a fresh computation).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Vector-table lookups that found a cached context vector.
    pub fn vector_hits(&self) -> u64 {
        self.vector_hits.load(Ordering::Relaxed)
    }

    /// Vector-table lookups that missed (each followed by a fresh sphere
    /// BFS + vector build).
    pub fn vector_misses(&self) -> u64 {
        self.vector_misses.load(Ordering::Relaxed)
    }
}

impl Default for SharedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache")
            .field("entries", &self.len())
            .field("vector_entries", &self.vectors_len())
            .field("bytes", &self.bytes())
            .field("evictions", &self.evictions())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl SimilarityCache for SharedCache {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        let found = self.pairs.get(&key);
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: PairKey, value: f64) {
        self.pairs.insert(key, value, pair_cost(), &self.counters);
    }

    fn len(&self) -> usize {
        self.pairs.len()
    }

    fn lookup_vector(&self, key: VectorKey) -> Option<Arc<SparseVector>> {
        let found = self.vectors.get(&key);
        match found {
            Some(v) => {
                self.vector_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.vector_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store_vector(&self, key: VectorKey, value: Arc<SparseVector>) {
        let cost = vector_cost(&value);
        self.vectors.insert(key, value, cost, &self.counters);
    }

    fn vectors_len(&self) -> usize {
        self.vectors.len()
    }
}

/// A per-worker view of the [`SharedCache`] that additionally tallies this
/// worker's own hits and misses.
///
/// The shared cache's global counters are cumulative across *every* run
/// that ever touched the cache, so two concurrent [`crate::BatchEngine`]
/// runs sharing an engine would skew each other's before/after deltas.
/// Each worker instead scores through its own `TallyCache`; the engine
/// sums the tallies, giving exact per-run hit/miss counts no matter how
/// many runs share the underlying table.
#[derive(Debug)]
pub struct TallyCache {
    shared: Arc<SharedCache>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    vector_hits: Cell<u64>,
    vector_misses: Cell<u64>,
    /// When tracing wants per-document miss attribution, the keys of
    /// every missed pair lookup since [`TallyCache::begin_miss_recording`].
    /// `None` (the default) records nothing and costs one branch per miss.
    miss_log: RefCell<Option<Vec<PairKey>>>,
}

impl TallyCache {
    /// A fresh tally over the given shared table.
    pub fn new(shared: Arc<SharedCache>) -> Self {
        Self {
            shared,
            hits: Cell::new(0),
            misses: Cell::new(0),
            vector_hits: Cell::new(0),
            vector_misses: Cell::new(0),
            miss_log: RefCell::new(None),
        }
    }

    /// Starts (or restarts) recording the keys of missed pair lookups.
    /// The batch executor calls this per document when tracing, then
    /// drains with [`TallyCache::take_missed_pairs`], giving exact
    /// per-document miss attribution.
    pub fn begin_miss_recording(&self) {
        *self.miss_log.borrow_mut() = Some(Vec::new());
    }

    /// Stops miss recording and returns the missed pair keys since
    /// [`TallyCache::begin_miss_recording`] (empty if never started).
    pub fn take_missed_pairs(&self) -> Vec<PairKey> {
        self.miss_log.borrow_mut().take().unwrap_or_default()
    }

    /// Lookups through this tally that hit.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups through this tally that missed.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Vector lookups through this tally that hit (vectors reused).
    pub fn vector_hits(&self) -> u64 {
        self.vector_hits.get()
    }

    /// Vector lookups through this tally that missed (vectors built).
    pub fn vector_misses(&self) -> u64 {
        self.vector_misses.get()
    }
}

impl SimilarityCache for TallyCache {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        let found = self.shared.lookup(key);
        match found {
            Some(_) => self.hits.set(self.hits.get() + 1),
            None => {
                self.misses.set(self.misses.get() + 1);
                if let Some(log) = self.miss_log.borrow_mut().as_mut() {
                    log.push(key);
                }
            }
        }
        found
    }

    fn store(&self, key: PairKey, value: f64) {
        self.shared.store(key, value);
    }

    fn len(&self) -> usize {
        self.shared.len()
    }

    fn lookup_vector(&self, key: VectorKey) -> Option<Arc<SparseVector>> {
        let found = self.shared.lookup_vector(key);
        match found {
            Some(_) => self.vector_hits.set(self.vector_hits.get() + 1),
            None => self.vector_misses.set(self.vector_misses.get() + 1),
        }
        found
    }

    fn store_vector(&self, key: VectorKey, value: Arc<SparseVector>) {
        self.shared.store_vector(key, value);
    }

    fn vectors_len(&self) -> usize {
        self.shared.vectors_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;
    use semsim::{CombinedSimilarity, SimilarityWeights};
    use std::sync::Arc;

    fn pair_key(a: semnet::ConceptId, b: semnet::ConceptId) -> PairKey {
        let fp = SimilarityWeights::equal().fingerprint();
        if a <= b {
            (fp, a, b)
        } else {
            (fp, b, a)
        }
    }

    #[test]
    fn round_trip_and_counters() {
        let sn = mini_wordnet();
        let (a, b) = (
            sn.by_key("cast.actors").unwrap(),
            sn.by_key("star.performer").unwrap(),
        );
        let key = pair_key(a, b);
        let cache = SharedCache::new();
        assert_eq!(cache.lookup(key), None);
        cache.store(key, 0.5);
        assert_eq!(cache.lookup(key), Some(0.5));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_across_measures() {
        // Two measures over one cache: the second sees the first's work.
        let sn = mini_wordnet();
        let cache = Arc::new(SharedCache::new());
        let m1 = CombinedSimilarity::with_cache(SimilarityWeights::equal(), Arc::clone(&cache));
        let m2 = CombinedSimilarity::with_cache(SimilarityWeights::equal(), Arc::clone(&cache));
        let (a, b) = (
            sn.by_key("kelly.grace").unwrap(),
            sn.by_key("stewart.james").unwrap(),
        );
        let v1 = m1.similarity(sn, a, b);
        let misses_after_first = cache.misses();
        let v2 = m2.similarity(sn, b, a); // symmetric key
        assert_eq!(v1, v2);
        assert_eq!(cache.misses(), misses_after_first, "second lookup must hit");
        assert!(cache.hits() >= 1);
    }

    #[test]
    fn concurrent_writers_converge() {
        let sn = mini_wordnet();
        let cache = Arc::new(SharedCache::new());
        let keys: Vec<_> = ["cast.actors", "star.performer", "film.movie", "kelly.grace"]
            .iter()
            .map(|k| sn.by_key(k).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let keys = &keys;
                scope.spawn(move || {
                    let sim = CombinedSimilarity::with_cache(SimilarityWeights::equal(), cache);
                    for &a in keys {
                        for &b in keys {
                            sim.similarity(sn, a, b);
                        }
                    }
                });
            }
        });
        // 4 distinct concepts -> 10 unordered pairs (incl. identity).
        assert_eq!(cache.len(), 10);
        assert!(cache.hits() > 0);
    }

    #[test]
    fn tally_cache_counts_per_view_not_globally() {
        let sn = mini_wordnet();
        let shared = Arc::new(SharedCache::new());
        let (a, b) = (
            sn.by_key("cast.actors").unwrap(),
            sn.by_key("star.performer").unwrap(),
        );
        let key = pair_key(a, b);
        let first = TallyCache::new(Arc::clone(&shared));
        assert_eq!(first.lookup(key), None);
        first.store(key, 0.5);
        assert_eq!(first.lookup(key), Some(0.5));
        assert_eq!((first.hits(), first.misses()), (1, 1));
        // A second view starts from zero while the shared table stays warm.
        let second = TallyCache::new(Arc::clone(&shared));
        assert_eq!(second.lookup(key), Some(0.5));
        assert_eq!((second.hits(), second.misses()), (1, 0));
        assert_eq!((shared.hits(), shared.misses()), (2, 1));
        assert_eq!(second.len(), 1);
    }

    #[test]
    fn vector_table_round_trip_and_counters() {
        let sn = mini_wordnet();
        let c = sn.by_key("cast.actors").unwrap();
        let key: VectorKey = (c, 2, semnet::graph::RelationFilter::All.fingerprint());
        let cache = SharedCache::new();
        assert!(cache.lookup_vector(key).is_none());
        let mut v = SparseVector::new();
        v.add("cast", 1.0);
        let v = Arc::new(v);
        cache.store_vector(key, Arc::clone(&v));
        let got = cache.lookup_vector(key).unwrap();
        assert!(Arc::ptr_eq(&got, &v), "hits must share the stored vector");
        assert_eq!((cache.vector_hits(), cache.vector_misses()), (1, 1));
        assert_eq!(cache.vectors_len(), 1);
        // The pair tables are untouched by vector traffic.
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 0));
    }

    #[test]
    fn tally_cache_counts_vector_traffic_per_view() {
        let sn = mini_wordnet();
        let c = sn.by_key("star.performer").unwrap();
        let key: VectorKey = (c, 1, semnet::graph::RelationFilter::All.fingerprint());
        let shared = Arc::new(SharedCache::new());
        let first = TallyCache::new(Arc::clone(&shared));
        assert!(first.lookup_vector(key).is_none());
        first.store_vector(key, Arc::new(SparseVector::new()));
        assert!(first.lookup_vector(key).is_some());
        assert_eq!((first.vector_hits(), first.vector_misses()), (1, 1));
        let second = TallyCache::new(Arc::clone(&shared));
        assert!(second.lookup_vector(key).is_some());
        assert_eq!((second.vector_hits(), second.vector_misses()), (1, 0));
        assert_eq!((shared.vector_hits(), shared.vector_misses()), (2, 1));
        assert_eq!(second.vectors_len(), 1);
    }

    #[test]
    fn miss_recording_captures_missed_keys_only_while_enabled() {
        let sn = mini_wordnet();
        let shared = Arc::new(SharedCache::new());
        let tally = TallyCache::new(Arc::clone(&shared));
        let (a, b) = (
            sn.by_key("cast.actors").unwrap(),
            sn.by_key("star.performer").unwrap(),
        );
        let key = pair_key(a, b);
        // Disabled by default: misses are counted but not logged.
        assert_eq!(tally.lookup(key), None);
        assert!(tally.take_missed_pairs().is_empty());
        tally.begin_miss_recording();
        assert_eq!(tally.lookup(key), None);
        tally.store(key, 0.5);
        assert_eq!(tally.lookup(key), Some(0.5), "hits are not logged");
        assert_eq!(tally.take_missed_pairs(), vec![key]);
        // Draining stops recording again.
        let (c,) = (sn.by_key("film.movie").unwrap(),);
        assert_eq!(tally.lookup(pair_key(a, c)), None);
        assert!(tally.take_missed_pairs().is_empty());
    }

    #[test]
    fn different_weights_sharing_one_cache_match_fresh_caches() {
        // Regression for the cache-poisoning bug: before keys carried a
        // weight fingerprint, the second weight configuration silently read
        // scores computed under the first.
        let sn = mini_wordnet();
        let gloss_only = SimilarityWeights::gloss_only();
        let keys: Vec<_> = ["cast.actors", "star.performer", "film.movie", "kelly.grace"]
            .iter()
            .map(|k| sn.by_key(k).unwrap())
            .collect();
        let shared = Arc::new(SharedCache::new());
        let m_eq = CombinedSimilarity::with_cache(SimilarityWeights::equal(), Arc::clone(&shared));
        let m_gl = CombinedSimilarity::with_cache(gloss_only, Arc::clone(&shared));
        let fresh_eq = CombinedSimilarity::new(SimilarityWeights::equal());
        let fresh_gl = CombinedSimilarity::new(gloss_only);
        let mut pairs = 0;
        for &a in &keys {
            for &b in &keys {
                if a <= b {
                    pairs += 1;
                }
                // Interleave so each config's second pass reads a table the
                // other config has already populated.
                assert_eq!(m_eq.similarity(sn, a, b), fresh_eq.similarity(sn, a, b));
                assert_eq!(m_gl.similarity(sn, a, b), fresh_gl.similarity(sn, a, b));
            }
        }
        // One entry per (fingerprint, pair): the configs never collide.
        assert_eq!(shared.len(), 2 * pairs);
    }

    #[test]
    fn poisoned_shard_recovers_instead_of_cascading() {
        let sn = mini_wordnet();
        let cache = SharedCache::new();
        let (a, b) = (
            sn.by_key("film.movie").unwrap(),
            sn.by_key("kelly.grace").unwrap(),
        );
        let key = pair_key(a, b);
        cache.store(key, 0.25);
        // Panic while holding the shard's write lock, the worst case a
        // caught per-document panic can leave behind.
        let idx = cache.pairs.shard_index(&key);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.pairs.shards[idx].write().unwrap();
            panic!("worker died mid-store");
        }));
        assert!(result.is_err());
        assert!(cache.pairs.shards[idx].is_poisoned());
        // Surviving workers keep reading, writing, and sizing the table.
        assert_eq!(cache.lookup(key), Some(0.25));
        cache.store(key, 0.25);
        assert_eq!(cache.len(), 1);
    }

    // ---- bounded-operation tests ----

    /// Distinct pair keys for budget tests: synthetic weight fingerprints
    /// give as many distinct keys as needed without touching a network.
    fn distinct_keys(n: usize) -> Vec<PairKey> {
        let id = semnet::ConceptId(0);
        (0..n)
            .map(|i| (semsim::WeightsFingerprint(i as u64), id, id))
            .collect()
    }

    #[test]
    fn entry_budget_caps_both_tables_and_counts_evictions() {
        let cache = SharedCache::with_budget(CacheBudget {
            max_entries: 4,
            max_bytes: 0,
        });
        for (i, key) in distinct_keys(64).into_iter().enumerate() {
            cache.store(key, i as f64);
        }
        assert!(cache.len() <= 4, "pair table over budget: {}", cache.len());
        assert!(cache.evictions() > 0);
        let filter = semnet::graph::RelationFilter::All.fingerprint();
        for i in 0..64u32 {
            let key: VectorKey = (semnet::ConceptId(i), 2, filter);
            cache.store_vector(key, Arc::new(SparseVector::new()));
        }
        assert!(cache.vectors_len() <= 4, "vector table over budget");
    }

    #[test]
    fn byte_budget_is_never_exceeded_and_peak_is_tracked() {
        let budget = CacheBudget {
            max_entries: 0,
            max_bytes: 4096,
        };
        let cache = SharedCache::with_budget(budget);
        let filter = semnet::graph::RelationFilter::All.fingerprint();
        for (i, key) in distinct_keys(40).into_iter().enumerate() {
            cache.store(key, i as f64);
            let mut v = SparseVector::new();
            for d in 0..8 {
                v.add(format!("dim-{i}-{d}"), 1.0);
            }
            cache.store_vector((key.1, i as u32, filter), Arc::new(v));
            assert!(
                cache.bytes() <= budget.max_bytes as u64,
                "bytes {} over budget after store {i}",
                cache.bytes()
            );
        }
        assert!(cache.evictions() > 0, "tiny budget must evict");
        assert!(cache.bytes_peak() <= budget.max_bytes as u64);
        assert!(cache.bytes_peak() >= cache.bytes());
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn recently_hit_entries_survive_eviction_of_cold_ones() {
        // Flood a single shard (cap 4 entries) with cold keys while one
        // hot key is re-read before every insert: eviction must always
        // pick the cold segment, never the freshly refreshed entry.
        let cache = SharedCache::with_budget(CacheBudget {
            max_entries: 64, // 4 per shard
            max_bytes: 0,
        });
        let hot = distinct_keys(1)[0];
        let hot_shard = cache.pairs.shard_index(&hot);
        let same_shard: Vec<PairKey> = distinct_keys(512)
            .into_iter()
            .skip(1)
            .filter(|k| cache.pairs.shard_index(k) == hot_shard)
            .take(24)
            .collect();
        assert!(same_shard.len() >= 12, "need enough colliding keys");
        cache.store(hot, 42.0);
        for (i, &key) in same_shard.iter().enumerate() {
            // Keep the hot key warm while cold traffic floods its shard.
            assert_eq!(cache.lookup(hot), Some(42.0), "hot key evicted at {i}");
            cache.store(key, i as f64);
        }
        assert_eq!(cache.lookup(hot), Some(42.0));
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn oversized_entry_is_rejected_not_stored() {
        let cache = SharedCache::with_budget(CacheBudget {
            max_entries: 0,
            max_bytes: 256, // vector half = 128 bytes, split over 16 shards
        });
        let sn = mini_wordnet();
        let c = sn.by_key("cast.actors").unwrap();
        let mut big = SparseVector::new();
        for d in 0..64 {
            big.add(format!("dimension-{d}"), 1.0);
        }
        let key: VectorKey = (c, 2, semnet::graph::RelationFilter::All.fingerprint());
        let before = cache.evictions();
        cache.store_vector(key, Arc::new(big));
        assert!(cache.lookup_vector(key).is_none(), "oversized entry kept");
        assert_eq!(cache.vectors_len(), 0);
        assert_eq!(cache.bytes(), 0);
        assert!(cache.evictions() > before, "rejection must be visible");
    }

    #[test]
    fn trim_to_drains_the_cache_and_counts_evictions() {
        let cache = SharedCache::new();
        let filter = semnet::graph::RelationFilter::All.fingerprint();
        for (i, key) in distinct_keys(32).into_iter().enumerate() {
            cache.store(key, i as f64);
            let mut v = SparseVector::new();
            v.add(format!("dim-{i}"), 1.0);
            cache.store_vector((key.1, i as u32, filter), Arc::new(v));
        }
        let before_bytes = cache.bytes();
        assert!(before_bytes > 0);
        let evicted = cache.trim_to(before_bytes / 2);
        assert!(cache.bytes() <= before_bytes / 2);
        assert!(evicted > 0);
        assert_eq!(cache.evictions(), evicted);
        // Trim to zero empties both tables completely.
        cache.trim_to(0);
        assert_eq!((cache.bytes(), cache.len(), cache.vectors_len()), (0, 0, 0));
        assert!(cache.bytes_peak() >= before_bytes);
    }

    #[test]
    fn unbounded_cache_accounts_bytes_but_never_evicts() {
        let cache = SharedCache::new();
        for (i, key) in distinct_keys(64).into_iter().enumerate() {
            cache.store(key, i as f64);
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.evictions(), 0);
        assert!(cache.bytes() >= 64 * pair_cost() as u64);
        assert_eq!(cache.bytes_peak(), cache.bytes());
    }

    #[test]
    fn replacing_a_key_does_not_leak_bytes() {
        let cache = SharedCache::with_budget(CacheBudget {
            max_entries: 0,
            max_bytes: 1 << 20,
        });
        let key = distinct_keys(1)[0];
        cache.store(key, 1.0);
        let once = cache.bytes();
        for i in 0..100 {
            cache.store(key, i as f64);
        }
        assert_eq!(cache.bytes(), once, "replacement must not accumulate");
        assert_eq!(cache.len(), 1);
    }
}
