//! Thread-safe shared similarity cache.
//!
//! Sense-pair similarities are document-independent: once `Sim(c1, c2)` is
//! computed for one document, every other document in the batch can reuse
//! it. [`SharedCache`] makes that reuse safe across worker threads while
//! keeping contention low by sharding the key space over independent
//! [`RwLock`]-protected maps — readers on different shards (and even on the
//! same shard) never serialize, and writers only lock 1/16th of the table.

use semsim::{PairKey, SimilarityCache};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of independent shards. A small power of two: enough to keep a
/// typical worker pool (≤ #cores) from colliding, cheap to index by masking.
const SHARDS: usize = 16;

/// A sharded, thread-safe concept-pair similarity cache with hit/miss
/// accounting.
///
/// Implements [`SimilarityCache`], so a
/// [`CombinedSimilarity`](semsim::CombinedSimilarity) scores straight
/// through it: wrap the cache in an [`Arc`](std::sync::Arc) and hand each
/// worker `CombinedSimilarity::with_cache(weights, Arc::clone(&cache))`.
pub struct SharedCache {
    shards: [RwLock<HashMap<PairKey, f64>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: PairKey) -> &RwLock<HashMap<PairKey, f64>> {
        // The low bits of the first concept id spread uniformly enough:
        // pair keys are normalized (a <= b) and ids are dense indices.
        let (a, b) = key;
        let mix = a.index().wrapping_mul(31).wrapping_add(b.index());
        &self.shards[mix & (SHARDS - 1)]
    }

    // Poisoned-shard audit: the batch engine catches panics at the document
    // boundary, so a worker can panic while holding a shard lock, poisoning
    // it for every surviving worker. Recovering the guard is sound here
    // because a shard is only ever a map of pure, idempotent scores — a
    // `HashMap::insert` of `Copy` keys/values either completed or didn't,
    // and a half-run batch never leaves a *wrong* value behind (any worker
    // recomputing the pair stores the identical score). Propagating the
    // poison instead would turn one caught panic into a cascade that kills
    // the 31 surviving documents — exactly what panic isolation exists to
    // prevent.
    fn read_shard(&self, key: PairKey) -> RwLockReadGuard<'_, HashMap<PairKey, f64>> {
        self.shard(key)
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write_shard(&self, key: PairKey) -> RwLockWriteGuard<'_, HashMap<PairKey, f64>> {
        self.shard(key)
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Lookups that found a cached score.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed (each followed by a fresh computation).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

impl Default for SharedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl SimilarityCache for SharedCache {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        let found = self.read_shard(key).get(&key).copied();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: PairKey, value: f64) {
        self.write_shard(key).insert(key, value);
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .len()
            })
            .sum()
    }
}

/// A per-worker view of the [`SharedCache`] that additionally tallies this
/// worker's own hits and misses.
///
/// The shared cache's global counters are cumulative across *every* run
/// that ever touched the cache, so two concurrent [`crate::BatchEngine`]
/// runs sharing an engine would skew each other's before/after deltas.
/// Each worker instead scores through its own `TallyCache`; the engine
/// sums the tallies, giving exact per-run hit/miss counts no matter how
/// many runs share the underlying table.
#[derive(Debug)]
pub struct TallyCache {
    shared: Arc<SharedCache>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl TallyCache {
    /// A fresh tally over the given shared table.
    pub fn new(shared: Arc<SharedCache>) -> Self {
        Self {
            shared,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Lookups through this tally that hit.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups through this tally that missed.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }
}

impl SimilarityCache for TallyCache {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        let found = self.shared.lookup(key);
        match found {
            Some(_) => self.hits.set(self.hits.get() + 1),
            None => self.misses.set(self.misses.get() + 1),
        }
        found
    }

    fn store(&self, key: PairKey, value: f64) {
        self.shared.store(key, value);
    }

    fn len(&self) -> usize {
        self.shared.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;
    use semsim::{CombinedSimilarity, SimilarityWeights};
    use std::sync::Arc;

    #[test]
    fn round_trip_and_counters() {
        let sn = mini_wordnet();
        let (a, b) = (
            sn.by_key("cast.actors").unwrap(),
            sn.by_key("star.performer").unwrap(),
        );
        let key = if a <= b { (a, b) } else { (b, a) };
        let cache = SharedCache::new();
        assert_eq!(cache.lookup(key), None);
        cache.store(key, 0.5);
        assert_eq!(cache.lookup(key), Some(0.5));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_across_measures() {
        // Two measures over one cache: the second sees the first's work.
        let sn = mini_wordnet();
        let cache = Arc::new(SharedCache::new());
        let m1 = CombinedSimilarity::with_cache(SimilarityWeights::equal(), Arc::clone(&cache));
        let m2 = CombinedSimilarity::with_cache(SimilarityWeights::equal(), Arc::clone(&cache));
        let (a, b) = (
            sn.by_key("kelly.grace").unwrap(),
            sn.by_key("stewart.james").unwrap(),
        );
        let v1 = m1.similarity(sn, a, b);
        let misses_after_first = cache.misses();
        let v2 = m2.similarity(sn, b, a); // symmetric key
        assert_eq!(v1, v2);
        assert_eq!(cache.misses(), misses_after_first, "second lookup must hit");
        assert!(cache.hits() >= 1);
    }

    #[test]
    fn concurrent_writers_converge() {
        let sn = mini_wordnet();
        let cache = Arc::new(SharedCache::new());
        let keys: Vec<_> = ["cast.actors", "star.performer", "film.movie", "kelly.grace"]
            .iter()
            .map(|k| sn.by_key(k).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let keys = &keys;
                scope.spawn(move || {
                    let sim = CombinedSimilarity::with_cache(SimilarityWeights::equal(), cache);
                    for &a in keys {
                        for &b in keys {
                            sim.similarity(sn, a, b);
                        }
                    }
                });
            }
        });
        // 4 distinct concepts -> 10 unordered pairs (incl. identity).
        assert_eq!(cache.len(), 10);
        assert!(cache.hits() > 0);
    }

    #[test]
    fn tally_cache_counts_per_view_not_globally() {
        let sn = mini_wordnet();
        let shared = Arc::new(SharedCache::new());
        let (a, b) = (
            sn.by_key("cast.actors").unwrap(),
            sn.by_key("star.performer").unwrap(),
        );
        let key = if a <= b { (a, b) } else { (b, a) };
        let first = TallyCache::new(Arc::clone(&shared));
        assert_eq!(first.lookup(key), None);
        first.store(key, 0.5);
        assert_eq!(first.lookup(key), Some(0.5));
        assert_eq!((first.hits(), first.misses()), (1, 1));
        // A second view starts from zero while the shared table stays warm.
        let second = TallyCache::new(Arc::clone(&shared));
        assert_eq!(second.lookup(key), Some(0.5));
        assert_eq!((second.hits(), second.misses()), (1, 0));
        assert_eq!((shared.hits(), shared.misses()), (2, 1));
        assert_eq!(second.len(), 1);
    }

    #[test]
    fn poisoned_shard_recovers_instead_of_cascading() {
        let sn = mini_wordnet();
        let cache = SharedCache::new();
        let (a, b) = (
            sn.by_key("film.movie").unwrap(),
            sn.by_key("kelly.grace").unwrap(),
        );
        let key = if a <= b { (a, b) } else { (b, a) };
        cache.store(key, 0.25);
        // Panic while holding the shard's write lock, the worst case a
        // caught per-document panic can leave behind.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.shard(key).write().unwrap();
            panic!("worker died mid-store");
        }));
        assert!(result.is_err());
        assert!(cache.shard(key).is_poisoned());
        // Surviving workers keep reading, writing, and sizing the table.
        assert_eq!(cache.lookup(key), Some(0.25));
        cache.store(key, 0.25);
        assert_eq!(cache.len(), 1);
    }
}
