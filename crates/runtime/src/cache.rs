//! Thread-safe shared multi-table similarity cache.
//!
//! Sense-pair similarities and concept context vectors are
//! document-independent: once `Sim(c1, c2)` or `V_d(s_p)` is computed for
//! one document, every other document in the batch (and every later run
//! over the same engine) can reuse it. [`SharedCache`] makes that reuse
//! safe across worker threads while keeping contention low by sharding the
//! pair-score key space over independent [`RwLock`]-protected maps —
//! readers on different shards (and even on the same shard) never
//! serialize, and writers only lock 1/16th of the table. The vector table
//! is a single `RwLock` map: vector lookups are orders of magnitude rarer
//! than pair lookups (one per candidate sense per target vs. one per sense
//! pair), and the stored `Arc<SparseVector>` values make hits clone-free.

use semsim::{PairKey, SimilarityCache, SparseVector, VectorKey};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of independent shards. A small power of two: enough to keep a
/// typical worker pool (≤ #cores) from colliding, cheap to index by masking.
const SHARDS: usize = 16;

/// A sharded, thread-safe concept-pair similarity cache with hit/miss
/// accounting.
///
/// Implements [`SimilarityCache`], so a
/// [`CombinedSimilarity`](semsim::CombinedSimilarity) scores straight
/// through it: wrap the cache in an [`Arc`](std::sync::Arc) and hand each
/// worker `CombinedSimilarity::with_cache(weights, Arc::clone(&cache))`.
pub struct SharedCache {
    shards: [RwLock<HashMap<PairKey, f64>>; SHARDS],
    /// Concept context vectors keyed by `(concept, radius, filter)` — see
    /// [`semsim::VectorKey`]. Unsharded: traffic is light (vector lookups
    /// happen once per candidate sense per target) and hits hold the read
    /// lock only long enough to clone an `Arc`.
    vectors: RwLock<HashMap<VectorKey, Arc<SparseVector>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    vector_hits: AtomicU64,
    vector_misses: AtomicU64,
}

impl SharedCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            vectors: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            vector_hits: AtomicU64::new(0),
            vector_misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: PairKey) -> &RwLock<HashMap<PairKey, f64>> {
        // Pair keys are normalized (a <= b) and ids are dense indices, so
        // mixing both ids with the weight fingerprint spreads the low bits
        // uniformly enough for 16 shards.
        let (fp, a, b) = key;
        let mix = (fp.0 as usize)
            .wrapping_mul(31)
            .wrapping_add(a.index())
            .wrapping_mul(31)
            .wrapping_add(b.index());
        &self.shards[mix & (SHARDS - 1)]
    }

    // Poisoned-shard audit: the batch engine catches panics at the document
    // boundary, so a worker can panic while holding a shard lock, poisoning
    // it for every surviving worker. Recovering the guard is sound here
    // because a shard is only ever a map of pure, idempotent scores — a
    // `HashMap::insert` of `Copy` keys/values either completed or didn't,
    // and a half-run batch never leaves a *wrong* value behind (any worker
    // recomputing the pair stores the identical score). Propagating the
    // poison instead would turn one caught panic into a cascade that kills
    // the 31 surviving documents — exactly what panic isolation exists to
    // prevent.
    fn read_shard(&self, key: PairKey) -> RwLockReadGuard<'_, HashMap<PairKey, f64>> {
        self.shard(key)
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write_shard(&self, key: PairKey) -> RwLockWriteGuard<'_, HashMap<PairKey, f64>> {
        self.shard(key)
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Lookups that found a cached score.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed (each followed by a fresh computation).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Vector-table lookups that found a cached context vector.
    pub fn vector_hits(&self) -> u64 {
        self.vector_hits.load(Ordering::Relaxed)
    }

    /// Vector-table lookups that missed (each followed by a fresh sphere
    /// BFS + vector build).
    pub fn vector_misses(&self) -> u64 {
        self.vector_misses.load(Ordering::Relaxed)
    }
}

impl Default for SharedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl SimilarityCache for SharedCache {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        let found = self.read_shard(key).get(&key).copied();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: PairKey, value: f64) {
        self.write_shard(key).insert(key, value);
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .len()
            })
            .sum()
    }

    // The vector table recovers poisoned locks for the same reason the
    // pair shards do (see the audit comment above `read_shard`): entries
    // are pure functions of their key, so a recovered table can only hold
    // values any worker would recompute identically.
    fn lookup_vector(&self, key: VectorKey) -> Option<Arc<SparseVector>> {
        let found = self
            .vectors
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(&key)
            .cloned();
        match found {
            Some(v) => {
                self.vector_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.vector_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store_vector(&self, key: VectorKey, value: Arc<SparseVector>) {
        self.vectors
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(key, value);
    }

    fn vectors_len(&self) -> usize {
        self.vectors
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }
}

/// A per-worker view of the [`SharedCache`] that additionally tallies this
/// worker's own hits and misses.
///
/// The shared cache's global counters are cumulative across *every* run
/// that ever touched the cache, so two concurrent [`crate::BatchEngine`]
/// runs sharing an engine would skew each other's before/after deltas.
/// Each worker instead scores through its own `TallyCache`; the engine
/// sums the tallies, giving exact per-run hit/miss counts no matter how
/// many runs share the underlying table.
#[derive(Debug)]
pub struct TallyCache {
    shared: Arc<SharedCache>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    vector_hits: Cell<u64>,
    vector_misses: Cell<u64>,
    /// When tracing wants per-document miss attribution, the keys of
    /// every missed pair lookup since [`TallyCache::begin_miss_recording`].
    /// `None` (the default) records nothing and costs one branch per miss.
    miss_log: RefCell<Option<Vec<PairKey>>>,
}

impl TallyCache {
    /// A fresh tally over the given shared table.
    pub fn new(shared: Arc<SharedCache>) -> Self {
        Self {
            shared,
            hits: Cell::new(0),
            misses: Cell::new(0),
            vector_hits: Cell::new(0),
            vector_misses: Cell::new(0),
            miss_log: RefCell::new(None),
        }
    }

    /// Starts (or restarts) recording the keys of missed pair lookups.
    /// The batch executor calls this per document when tracing, then
    /// drains with [`TallyCache::take_missed_pairs`], giving exact
    /// per-document miss attribution.
    pub fn begin_miss_recording(&self) {
        *self.miss_log.borrow_mut() = Some(Vec::new());
    }

    /// Stops miss recording and returns the missed pair keys since
    /// [`TallyCache::begin_miss_recording`] (empty if never started).
    pub fn take_missed_pairs(&self) -> Vec<PairKey> {
        self.miss_log.borrow_mut().take().unwrap_or_default()
    }

    /// Lookups through this tally that hit.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups through this tally that missed.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Vector lookups through this tally that hit (vectors reused).
    pub fn vector_hits(&self) -> u64 {
        self.vector_hits.get()
    }

    /// Vector lookups through this tally that missed (vectors built).
    pub fn vector_misses(&self) -> u64 {
        self.vector_misses.get()
    }
}

impl SimilarityCache for TallyCache {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        let found = self.shared.lookup(key);
        match found {
            Some(_) => self.hits.set(self.hits.get() + 1),
            None => {
                self.misses.set(self.misses.get() + 1);
                if let Some(log) = self.miss_log.borrow_mut().as_mut() {
                    log.push(key);
                }
            }
        }
        found
    }

    fn store(&self, key: PairKey, value: f64) {
        self.shared.store(key, value);
    }

    fn len(&self) -> usize {
        self.shared.len()
    }

    fn lookup_vector(&self, key: VectorKey) -> Option<Arc<SparseVector>> {
        let found = self.shared.lookup_vector(key);
        match found {
            Some(_) => self.vector_hits.set(self.vector_hits.get() + 1),
            None => self.vector_misses.set(self.vector_misses.get() + 1),
        }
        found
    }

    fn store_vector(&self, key: VectorKey, value: Arc<SparseVector>) {
        self.shared.store_vector(key, value);
    }

    fn vectors_len(&self) -> usize {
        self.shared.vectors_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;
    use semsim::{CombinedSimilarity, SimilarityWeights};
    use std::sync::Arc;

    fn pair_key(a: semnet::ConceptId, b: semnet::ConceptId) -> PairKey {
        let fp = SimilarityWeights::equal().fingerprint();
        if a <= b {
            (fp, a, b)
        } else {
            (fp, b, a)
        }
    }

    #[test]
    fn round_trip_and_counters() {
        let sn = mini_wordnet();
        let (a, b) = (
            sn.by_key("cast.actors").unwrap(),
            sn.by_key("star.performer").unwrap(),
        );
        let key = pair_key(a, b);
        let cache = SharedCache::new();
        assert_eq!(cache.lookup(key), None);
        cache.store(key, 0.5);
        assert_eq!(cache.lookup(key), Some(0.5));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_across_measures() {
        // Two measures over one cache: the second sees the first's work.
        let sn = mini_wordnet();
        let cache = Arc::new(SharedCache::new());
        let m1 = CombinedSimilarity::with_cache(SimilarityWeights::equal(), Arc::clone(&cache));
        let m2 = CombinedSimilarity::with_cache(SimilarityWeights::equal(), Arc::clone(&cache));
        let (a, b) = (
            sn.by_key("kelly.grace").unwrap(),
            sn.by_key("stewart.james").unwrap(),
        );
        let v1 = m1.similarity(sn, a, b);
        let misses_after_first = cache.misses();
        let v2 = m2.similarity(sn, b, a); // symmetric key
        assert_eq!(v1, v2);
        assert_eq!(cache.misses(), misses_after_first, "second lookup must hit");
        assert!(cache.hits() >= 1);
    }

    #[test]
    fn concurrent_writers_converge() {
        let sn = mini_wordnet();
        let cache = Arc::new(SharedCache::new());
        let keys: Vec<_> = ["cast.actors", "star.performer", "film.movie", "kelly.grace"]
            .iter()
            .map(|k| sn.by_key(k).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let keys = &keys;
                scope.spawn(move || {
                    let sim = CombinedSimilarity::with_cache(SimilarityWeights::equal(), cache);
                    for &a in keys {
                        for &b in keys {
                            sim.similarity(sn, a, b);
                        }
                    }
                });
            }
        });
        // 4 distinct concepts -> 10 unordered pairs (incl. identity).
        assert_eq!(cache.len(), 10);
        assert!(cache.hits() > 0);
    }

    #[test]
    fn tally_cache_counts_per_view_not_globally() {
        let sn = mini_wordnet();
        let shared = Arc::new(SharedCache::new());
        let (a, b) = (
            sn.by_key("cast.actors").unwrap(),
            sn.by_key("star.performer").unwrap(),
        );
        let key = pair_key(a, b);
        let first = TallyCache::new(Arc::clone(&shared));
        assert_eq!(first.lookup(key), None);
        first.store(key, 0.5);
        assert_eq!(first.lookup(key), Some(0.5));
        assert_eq!((first.hits(), first.misses()), (1, 1));
        // A second view starts from zero while the shared table stays warm.
        let second = TallyCache::new(Arc::clone(&shared));
        assert_eq!(second.lookup(key), Some(0.5));
        assert_eq!((second.hits(), second.misses()), (1, 0));
        assert_eq!((shared.hits(), shared.misses()), (2, 1));
        assert_eq!(second.len(), 1);
    }

    #[test]
    fn vector_table_round_trip_and_counters() {
        let sn = mini_wordnet();
        let c = sn.by_key("cast.actors").unwrap();
        let key: VectorKey = (c, 2, semnet::graph::RelationFilter::All.fingerprint());
        let cache = SharedCache::new();
        assert!(cache.lookup_vector(key).is_none());
        let mut v = SparseVector::new();
        v.add("cast", 1.0);
        let v = Arc::new(v);
        cache.store_vector(key, Arc::clone(&v));
        let got = cache.lookup_vector(key).unwrap();
        assert!(Arc::ptr_eq(&got, &v), "hits must share the stored vector");
        assert_eq!((cache.vector_hits(), cache.vector_misses()), (1, 1));
        assert_eq!(cache.vectors_len(), 1);
        // The pair tables are untouched by vector traffic.
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 0));
    }

    #[test]
    fn tally_cache_counts_vector_traffic_per_view() {
        let sn = mini_wordnet();
        let c = sn.by_key("star.performer").unwrap();
        let key: VectorKey = (c, 1, semnet::graph::RelationFilter::All.fingerprint());
        let shared = Arc::new(SharedCache::new());
        let first = TallyCache::new(Arc::clone(&shared));
        assert!(first.lookup_vector(key).is_none());
        first.store_vector(key, Arc::new(SparseVector::new()));
        assert!(first.lookup_vector(key).is_some());
        assert_eq!((first.vector_hits(), first.vector_misses()), (1, 1));
        let second = TallyCache::new(Arc::clone(&shared));
        assert!(second.lookup_vector(key).is_some());
        assert_eq!((second.vector_hits(), second.vector_misses()), (1, 0));
        assert_eq!((shared.vector_hits(), shared.vector_misses()), (2, 1));
        assert_eq!(second.vectors_len(), 1);
    }

    #[test]
    fn miss_recording_captures_missed_keys_only_while_enabled() {
        let sn = mini_wordnet();
        let shared = Arc::new(SharedCache::new());
        let tally = TallyCache::new(Arc::clone(&shared));
        let (a, b) = (
            sn.by_key("cast.actors").unwrap(),
            sn.by_key("star.performer").unwrap(),
        );
        let key = pair_key(a, b);
        // Disabled by default: misses are counted but not logged.
        assert_eq!(tally.lookup(key), None);
        assert!(tally.take_missed_pairs().is_empty());
        tally.begin_miss_recording();
        assert_eq!(tally.lookup(key), None);
        tally.store(key, 0.5);
        assert_eq!(tally.lookup(key), Some(0.5), "hits are not logged");
        assert_eq!(tally.take_missed_pairs(), vec![key]);
        // Draining stops recording again.
        let (c,) = (sn.by_key("film.movie").unwrap(),);
        assert_eq!(tally.lookup(pair_key(a, c)), None);
        assert!(tally.take_missed_pairs().is_empty());
    }

    #[test]
    fn different_weights_sharing_one_cache_match_fresh_caches() {
        // Regression for the cache-poisoning bug: before keys carried a
        // weight fingerprint, the second weight configuration silently read
        // scores computed under the first.
        let sn = mini_wordnet();
        let gloss_only = SimilarityWeights::gloss_only();
        let keys: Vec<_> = ["cast.actors", "star.performer", "film.movie", "kelly.grace"]
            .iter()
            .map(|k| sn.by_key(k).unwrap())
            .collect();
        let shared = Arc::new(SharedCache::new());
        let m_eq = CombinedSimilarity::with_cache(SimilarityWeights::equal(), Arc::clone(&shared));
        let m_gl = CombinedSimilarity::with_cache(gloss_only, Arc::clone(&shared));
        let fresh_eq = CombinedSimilarity::new(SimilarityWeights::equal());
        let fresh_gl = CombinedSimilarity::new(gloss_only);
        let mut pairs = 0;
        for &a in &keys {
            for &b in &keys {
                if a <= b {
                    pairs += 1;
                }
                // Interleave so each config's second pass reads a table the
                // other config has already populated.
                assert_eq!(m_eq.similarity(sn, a, b), fresh_eq.similarity(sn, a, b));
                assert_eq!(m_gl.similarity(sn, a, b), fresh_gl.similarity(sn, a, b));
            }
        }
        // One entry per (fingerprint, pair): the configs never collide.
        assert_eq!(shared.len(), 2 * pairs);
    }

    #[test]
    fn poisoned_shard_recovers_instead_of_cascading() {
        let sn = mini_wordnet();
        let cache = SharedCache::new();
        let (a, b) = (
            sn.by_key("film.movie").unwrap(),
            sn.by_key("kelly.grace").unwrap(),
        );
        let key = pair_key(a, b);
        cache.store(key, 0.25);
        // Panic while holding the shard's write lock, the worst case a
        // caught per-document panic can leave behind.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.shard(key).write().unwrap();
            panic!("worker died mid-store");
        }));
        assert!(result.is_err());
        assert!(cache.shard(key).is_poisoned());
        // Surviving workers keep reading, writing, and sizing the table.
        assert_eq!(cache.lookup(key), Some(0.25));
        cache.store(key, 0.25);
        assert_eq!(cache.len(), 1);
    }
}
