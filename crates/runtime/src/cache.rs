//! Thread-safe shared similarity cache.
//!
//! Sense-pair similarities are document-independent: once `Sim(c1, c2)` is
//! computed for one document, every other document in the batch can reuse
//! it. [`SharedCache`] makes that reuse safe across worker threads while
//! keeping contention low by sharding the key space over independent
//! [`RwLock`]-protected maps — readers on different shards (and even on the
//! same shard) never serialize, and writers only lock 1/16th of the table.

use semsim::{PairKey, SimilarityCache};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Number of independent shards. A small power of two: enough to keep a
/// typical worker pool (≤ #cores) from colliding, cheap to index by masking.
const SHARDS: usize = 16;

/// A sharded, thread-safe concept-pair similarity cache with hit/miss
/// accounting.
///
/// Implements [`SimilarityCache`], so a
/// [`CombinedSimilarity`](semsim::CombinedSimilarity) scores straight
/// through it: wrap the cache in an [`Arc`](std::sync::Arc) and hand each
/// worker `CombinedSimilarity::with_cache(weights, Arc::clone(&cache))`.
pub struct SharedCache {
    shards: [RwLock<HashMap<PairKey, f64>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: PairKey) -> &RwLock<HashMap<PairKey, f64>> {
        // The low bits of the first concept id spread uniformly enough:
        // pair keys are normalized (a <= b) and ids are dense indices.
        let (a, b) = key;
        let mix = a.index().wrapping_mul(31).wrapping_add(b.index());
        &self.shards[mix & (SHARDS - 1)]
    }

    /// Lookups that found a cached score.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed (each followed by a fresh computation).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

impl Default for SharedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl SimilarityCache for SharedCache {
    fn lookup(&self, key: PairKey) -> Option<f64> {
        let found = self
            .shard(key)
            .read()
            .expect("similarity cache shard poisoned")
            .get(&key)
            .copied();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: PairKey, value: f64) {
        self.shard(key)
            .write()
            .expect("similarity cache shard poisoned")
            .insert(key, value);
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("similarity cache shard poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;
    use semsim::{CombinedSimilarity, SimilarityWeights};
    use std::sync::Arc;

    #[test]
    fn round_trip_and_counters() {
        let sn = mini_wordnet();
        let (a, b) = (
            sn.by_key("cast.actors").unwrap(),
            sn.by_key("star.performer").unwrap(),
        );
        let key = if a <= b { (a, b) } else { (b, a) };
        let cache = SharedCache::new();
        assert_eq!(cache.lookup(key), None);
        cache.store(key, 0.5);
        assert_eq!(cache.lookup(key), Some(0.5));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_across_measures() {
        // Two measures over one cache: the second sees the first's work.
        let sn = mini_wordnet();
        let cache = Arc::new(SharedCache::new());
        let m1 = CombinedSimilarity::with_cache(SimilarityWeights::equal(), Arc::clone(&cache));
        let m2 = CombinedSimilarity::with_cache(SimilarityWeights::equal(), Arc::clone(&cache));
        let (a, b) = (
            sn.by_key("kelly.grace").unwrap(),
            sn.by_key("stewart.james").unwrap(),
        );
        let v1 = m1.similarity(sn, a, b);
        let misses_after_first = cache.misses();
        let v2 = m2.similarity(sn, b, a); // symmetric key
        assert_eq!(v1, v2);
        assert_eq!(cache.misses(), misses_after_first, "second lookup must hit");
        assert!(cache.hits() >= 1);
    }

    #[test]
    fn concurrent_writers_converge() {
        let sn = mini_wordnet();
        let cache = Arc::new(SharedCache::new());
        let keys: Vec<_> = ["cast.actors", "star.performer", "film.movie", "kelly.grace"]
            .iter()
            .map(|k| sn.by_key(k).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let keys = &keys;
                scope.spawn(move || {
                    let sim = CombinedSimilarity::with_cache(SimilarityWeights::equal(), cache);
                    for &a in keys {
                        for &b in keys {
                            sim.similarity(sn, a, b);
                        }
                    }
                });
            }
        });
        // 4 distinct concepts -> 10 unordered pairs (incl. identity).
        assert_eq!(cache.len(), 10);
        assert!(cache.hits() > 0);
    }
}
