//! # xsdf-runtime
//!
//! The parallel batch-disambiguation engine for XSDF: everything needed to
//! push *many* XML documents through the pipeline of *Resolving XML
//! Semantic Ambiguity* (EDBT 2015) at once.
//!
//! The modules:
//!
//! * [`executor`] — a worker pool over `std::thread` that fans a batch of
//!   documents across cores and reassembles results in input order
//!   ([`BatchEngine`]), so output is byte-identical regardless of thread
//!   count;
//! * [`cache`] — a 16-way sharded, thread-safe concept-pair similarity
//!   cache ([`SharedCache`]) shared by all workers through
//!   [`semsim::SimilarityCache`]: sense pairs scored for one document are
//!   free for every other;
//! * [`error`] — the per-document failure taxonomy ([`XsdfError`]): parse
//!   errors, resource-limit overruns, missed deadlines, caught panics, and
//!   fail-fast cancellations, each a value in the document's result slot;
//! * [`limits`] — ceilings on what one document may consume
//!   ([`ResourceLimits`]), enforced up front (bytes, depth) and via
//!   cooperative budget checks inside the pipeline (nodes, targets,
//!   sense pairs);
//! * [`fault`] — cfg-gated fault-injection failpoints for chaos tests
//!   (`failpoints` feature; zero-cost when disabled);
//! * [`metrics`] — per-stage wall-clock timings, throughput, per-kind
//!   failure counts, cache hit/miss accounting, and per-stage latency
//!   percentiles ([`MetricsSnapshot`]), dumpable as JSON;
//! * [`hist`] — the log-bucketed latency [`Histogram`] behind those
//!   percentiles: HdrHistogram-style buckets, lock-free per-worker
//!   recording, deterministic element-wise merge;
//! * [`shard`] — the [`ShardReport`] wire format the multi-process
//!   sharded batch driver uses to ship each worker process's metrics
//!   (histograms included, losslessly) to the merging parent;
//! * [`trace`] — per-document observability ([`Trace`], [`DocSpan`]):
//!   stage spans against the batch epoch, cache deltas, most-missed
//!   concepts, exported as JSON Lines or the Chrome trace-event format
//!   (enable with [`BatchEngine::tracing`]).
//!
//! The engine's failure model is strict per-document isolation: a document
//! that is malformed, too big, too slow, or that outright *panics* turns
//! into an `Err` in its own result slot while every other document in the
//! batch completes normally.
//!
//! The crate is std-only. Serial callers should keep using
//! [`xsdf::Xsdf`] directly — its default single-threaded cache has no
//! synchronization overhead.
//!
//! ```
//! use runtime::BatchEngine;
//! use xsdf::XsdfConfig;
//!
//! let engine = BatchEngine::new(semnet::mini_wordnet(), XsdfConfig::default()).threads(2);
//! let report = engine.run(&["<cast><star>Kelly</star></cast>"; 4]);
//! assert!(report.results.iter().all(|r| r.is_ok()));
//! println!("{}", report.metrics.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod executor;
pub mod fault;
pub mod hist;
pub mod limits;
pub mod metrics;
pub mod shard;
pub mod trace;

pub use cache::{CacheBudget, SharedCache, TallyCache};
pub use error::XsdfError;
pub use executor::{BatchEngine, BatchReport, DocOutcome};
pub use hist::Histogram;
pub use limits::ResourceLimits;
pub use metrics::{FailureCounts, MetricsSnapshot, StageLatency, StageTimings};
pub use shard::ShardReport;
pub use trace::{DocSpan, StageSpan, Trace};
