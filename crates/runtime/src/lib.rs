//! # xsdf-runtime
//!
//! The parallel batch-disambiguation engine for XSDF: everything needed to
//! push *many* XML documents through the pipeline of *Resolving XML
//! Semantic Ambiguity* (EDBT 2015) at once.
//!
//! Three pieces, each a module:
//!
//! * [`executor`] — a worker pool over `std::thread` that fans a batch of
//!   documents across cores and reassembles results in input order
//!   ([`BatchEngine`]), so output is byte-identical regardless of thread
//!   count;
//! * [`cache`] — a 16-way sharded, thread-safe concept-pair similarity
//!   cache ([`SharedCache`]) shared by all workers through
//!   [`semsim::SimilarityCache`]: sense pairs scored for one document are
//!   free for every other;
//! * [`metrics`] — per-stage wall-clock timings, throughput, and cache
//!   hit/miss accounting ([`MetricsSnapshot`]), dumpable as JSON.
//!
//! The crate is std-only. Serial callers should keep using
//! [`xsdf::Xsdf`] directly — its default single-threaded cache has no
//! synchronization overhead.
//!
//! ```
//! use runtime::BatchEngine;
//! use xsdf::XsdfConfig;
//!
//! let engine = BatchEngine::new(semnet::mini_wordnet(), XsdfConfig::default()).threads(2);
//! let report = engine.run(&["<cast><star>Kelly</star></cast>"; 4]);
//! assert!(report.results.iter().all(|r| r.is_ok()));
//! println!("{}", report.metrics.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod executor;
pub mod metrics;

pub use cache::SharedCache;
pub use executor::{BatchEngine, BatchReport};
pub use metrics::{MetricsSnapshot, StageTimings};
