//! Fault-injection failpoints for chaos-testing the batch runtime.
//!
//! Compiled only under the `failpoints` cargo feature; without it every
//! call site reduces to an empty inline function, so production builds pay
//! nothing. With the feature on, each pipeline stage in the executor calls
//! [`hit`] with the stage name and the raw document source, and a global
//! registry decides whether to panic or sleep there.
//!
//! Actions can be unconditional (`Panic`, `Delay`) or *marker-targeted*
//! (`PanicIf`, `DelayIf`): the action fires only for documents whose raw
//! source contains a marker substring. Marker targeting is what makes
//! chaos tests deterministic across thread counts — "the 8 documents
//! carrying `CHAOS_PANIC` panic" holds regardless of which worker picks
//! which document, while count-based triggers ("the first 8 hits") would
//! depend on scheduling.
//!
//! Configuration is programmatic ([`set`]/[`clear`]) or, for process-level
//! tests of the CLI binary, via the `XSDF_FAILPOINTS` environment
//! variable, read once on first use:
//!
//! ```text
//! XSDF_FAILPOINTS="parse=panic;select=delay(50);disambiguate=panic-if(CHAOS)"
//! ```

#![cfg_attr(not(feature = "failpoints"), allow(unused_variables))]

use std::time::Duration;

/// What a triggered failpoint does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic unconditionally.
    Panic,
    /// Sleep unconditionally for the given duration.
    Delay(Duration),
    /// Panic only when the document source contains the marker.
    PanicIf(String),
    /// Sleep only when the document source contains the marker.
    DelayIf(String, Duration),
}

/// Evaluates the failpoint named `stage` against the document context
/// `ctx` (the raw XML source). No-op unless the `failpoints` feature is
/// enabled and an action is registered for the stage.
#[inline(always)]
pub fn hit(stage: &str, ctx: &str) {
    #[cfg(feature = "failpoints")]
    imp::hit(stage, ctx);
}

/// Whether fault injection is compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "failpoints")
}

#[cfg(feature = "failpoints")]
pub use imp::{clear, set};

#[cfg(feature = "failpoints")]
mod imp {
    use super::FaultAction;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    fn registry() -> &'static Mutex<HashMap<String, FaultAction>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, FaultAction>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(from_env(std::env::var("XSDF_FAILPOINTS").as_deref())))
    }

    /// Parses `stage=action;stage=action`. Unparseable entries are ignored
    /// (a chaos harness must not turn a typo into a production outage).
    fn from_env(spec: Result<&str, &std::env::VarError>) -> HashMap<String, FaultAction> {
        let mut map = HashMap::new();
        let Ok(spec) = spec else {
            return map;
        };
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let Some((stage, action)) = entry.split_once('=') else {
                continue;
            };
            if let Some(action) = parse_action(action.trim()) {
                map.insert(stage.trim().to_string(), action);
            }
        }
        map
    }

    fn parse_action(s: &str) -> Option<FaultAction> {
        if s == "panic" {
            return Some(FaultAction::Panic);
        }
        if let Some(arg) = s
            .strip_prefix("panic-if(")
            .and_then(|r| r.strip_suffix(')'))
        {
            return Some(FaultAction::PanicIf(arg.to_string()));
        }
        if let Some(arg) = s.strip_prefix("delay(").and_then(|r| r.strip_suffix(')')) {
            let ms: u64 = arg.trim().parse().ok()?;
            return Some(FaultAction::Delay(Duration::from_millis(ms)));
        }
        if let Some(arg) = s
            .strip_prefix("delay-if(")
            .and_then(|r| r.strip_suffix(')'))
        {
            let (marker, ms) = arg.rsplit_once(',')?;
            let ms: u64 = ms.trim().parse().ok()?;
            return Some(FaultAction::DelayIf(
                marker.trim().to_string(),
                Duration::from_millis(ms),
            ));
        }
        None
    }

    /// Registers (or replaces) the action for a stage.
    pub fn set(stage: &str, action: FaultAction) {
        lock().insert(stage.to_string(), action);
    }

    /// Removes every registered failpoint.
    pub fn clear() {
        lock().clear();
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<String, FaultAction>> {
        // A panic from a *fired* failpoint never happens while this lock is
        // held (the action runs after the guard is dropped), so poisoning
        // can only come from a panicking test harness thread; recover.
        registry()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn hit(stage: &str, ctx: &str) {
        let action = lock().get(stage).cloned();
        match action {
            Some(FaultAction::Panic) => panic!("failpoint '{stage}' fired"),
            Some(FaultAction::PanicIf(marker)) if ctx.contains(&marker) => {
                panic!("failpoint '{stage}' fired on marker '{marker}'");
            }
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(FaultAction::DelayIf(marker, d)) if ctx.contains(&marker) => {
                std::thread::sleep(d);
            }
            _ => {}
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn env_spec_parses_all_forms() {
            let map = from_env(Ok(
                "parse=panic; select=delay(25);disambiguate=panic-if(CHAOS);preprocess=delay-if(SLOW, 10);bogus;x=unknown()",
            ));
            assert_eq!(map.get("parse"), Some(&FaultAction::Panic));
            assert_eq!(
                map.get("select"),
                Some(&FaultAction::Delay(Duration::from_millis(25)))
            );
            assert_eq!(
                map.get("disambiguate"),
                Some(&FaultAction::PanicIf("CHAOS".into()))
            );
            assert_eq!(
                map.get("preprocess"),
                Some(&FaultAction::DelayIf(
                    "SLOW".into(),
                    Duration::from_millis(10)
                ))
            );
            assert_eq!(map.len(), 4, "malformed entries are dropped");
        }

        #[test]
        fn unset_env_is_empty() {
            assert!(from_env(Err(&std::env::VarError::NotPresent)).is_empty());
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_reflects_the_feature() {
        assert_eq!(super::enabled(), cfg!(feature = "failpoints"));
    }
}
