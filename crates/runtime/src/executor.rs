//! The batch executor: a fault-isolating worker pool fanning documents
//! across cores.
//!
//! Each worker owns a [`CombinedSimilarity`] scoring through the engine's
//! one [`SharedCache`] (via a per-run [`TallyCache`] view), so sense pairs
//! computed for any document are reused by every other. Workers pull jobs
//! off a shared counter (dynamic load balancing — documents vary widely in
//! size) and send results back over a channel tagged with the input index;
//! the collector reassembles them in input order, so output is
//! deterministic regardless of thread count or scheduling. Scores
//! themselves are thread-count-independent too: the cache only memoizes a
//! pure function of the concept pair.
//!
//! Failure is always per-document: a panic anywhere in one document's
//! pipeline is caught at the document boundary ([`std::panic::catch_unwind`])
//! and becomes [`XsdfError::Panicked`] in that document's slot while its
//! batch neighbors complete; resource overruns ([`ResourceLimits`]) and
//! deadline overruns ([`BatchEngine::deadline`]) surface the same way as
//! [`XsdfError::LimitExceeded`] / [`XsdfError::DeadlineExceeded`].

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use semnet::SemanticNetwork;
use semsim::{CombinedSimilarity, PairKey, SimilarityCache};
use xsdf::guard::Deadline;
use xsdf::{DisambiguationResult, Xsdf, XsdfConfig};

use crate::cache::{SharedCache, TallyCache};
use crate::error::XsdfError;
use crate::fault;
use crate::limits::ResourceLimits;
use crate::metrics::{FailureCounts, MetricsSnapshot, StageLatency, StageTimings};
use crate::trace::{DocSpan, StageSpan, Trace, TOP_MISS_CONCEPTS};

/// Per-worker accumulator, merged into the batch metrics at the end.
#[derive(Default)]
struct WorkerStats {
    stages: StageTimings,
    latency: StageLatency,
    spans: Vec<DocSpan>,
    nodes: usize,
    targets: usize,
    assigned: usize,
    failures: FailureCounts,
    cache_hits: u64,
    cache_misses: u64,
    gloss_pairs_scored: u64,
    vectors_built: u64,
    vectors_reused: u64,
    candidates_pruned: u64,
    early_exits: u64,
}

impl WorkerStats {
    fn merge(&mut self, other: &mut WorkerStats) {
        self.stages.merge(&other.stages);
        self.latency.merge(&other.latency);
        self.spans.append(&mut other.spans);
        self.nodes += other.nodes;
        self.targets += other.targets;
        self.assigned += other.assigned;
        self.failures.merge(&other.failures);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.gloss_pairs_scored += other.gloss_pairs_scored;
        self.vectors_built += other.vectors_built;
        self.vectors_reused += other.vectors_reused;
        self.candidates_pruned += other.candidates_pruned;
        self.early_exits += other.early_exits;
    }

    /// Reads the per-run kernel/cache tallies off a worker's measure once
    /// its share of the batch is done.
    fn collect_cache(&mut self, sim: &CombinedSimilarity<TallyCache>) {
        self.cache_hits = sim.cache().hits();
        self.cache_misses = sim.cache().misses();
        self.gloss_pairs_scored = sim.gloss_pairs_scored();
        self.vectors_built = sim.cache().vector_misses();
        self.vectors_reused = sim.cache().vector_hits();
    }
}

/// What a worker observed about the document it is currently running,
/// written progressively so the trace span is as complete as possible even
/// when a stage errors or panics partway through.
#[derive(Default)]
struct DocMarks {
    stages: [Option<StageSpan>; 4],
    nodes: usize,
    targets: usize,
    assigned: usize,
    sense_pairs: u64,
}

/// The outcome of one batch run: per-document results in input order plus
/// a metrics snapshot.
#[derive(Debug)]
pub struct BatchReport {
    /// One entry per input document, in input order. Documents that fail —
    /// malformed XML, resource overrun, deadline, even a panic — yield
    /// `Err` without affecting their neighbors.
    pub results: Vec<Result<DisambiguationResult, XsdfError>>,
    /// Timings, throughput, failure counts, and cache accounting for this
    /// run.
    pub metrics: MetricsSnapshot,
    /// Per-document spans, present when [`BatchEngine::tracing`] is on.
    /// Sorted by input index regardless of worker scheduling.
    pub trace: Option<Trace>,
}

/// The outcome of one document processed outside a batch
/// ([`BatchEngine::process_document_observed`]): the result plus the
/// observability record a resident service needs to keep live metrics.
#[derive(Debug)]
pub struct DocOutcome {
    /// The document's result, exactly as a batch slot would hold it.
    pub result: Result<DisambiguationResult, XsdfError>,
    /// The trace span, present when [`BatchEngine::tracing`] is on.
    pub span: Option<DocSpan>,
    /// Similarity-cache lookups by this document that hit.
    pub cache_hits: u64,
    /// Similarity-cache lookups by this document that missed.
    pub cache_misses: u64,
    /// Concept pairs pushed through the extended-gloss-overlap kernel.
    pub gloss_pairs_scored: u64,
    /// Context vectors built from scratch.
    pub vectors_built: u64,
    /// Context vectors served from the shared vector table.
    pub vectors_reused: u64,
    /// Candidate evaluations skipped by the pruner (zero unless
    /// [`xsdf::PruningConfig`] is enabled in the pipeline configuration).
    pub candidates_pruned: u64,
    /// Candidate loops the pruner stopped early because the leader was
    /// already uncatchable.
    pub early_exits: u64,
}

/// A reusable parallel batch-disambiguation engine with panic isolation,
/// per-document resource limits, and deadlines.
///
/// ```
/// use runtime::{BatchEngine, ResourceLimits};
/// use xsdf::XsdfConfig;
///
/// let engine = BatchEngine::new(semnet::mini_wordnet(), XsdfConfig::default())
///     .threads(2)
///     .limits(ResourceLimits::unlimited().max_nodes(10_000));
/// let docs = ["<cast><star>Kelly</star></cast>", "<films><picture/></films>"];
/// let report = engine.run(&docs);
/// assert_eq!(report.results.len(), 2);
/// assert!(report.results.iter().all(|r| r.is_ok()));
/// ```
pub struct BatchEngine<'sn> {
    xsdf: Xsdf<'sn>,
    threads: usize,
    cache: Arc<SharedCache>,
    limits: ResourceLimits,
    deadline: Option<Duration>,
    fail_fast: bool,
    tracing: bool,
    cancel: Option<&'sn AtomicBool>,
}

impl<'sn> BatchEngine<'sn> {
    /// An engine over the given network and pipeline configuration, with
    /// one worker per available core, no resource limits, no deadline, and
    /// keep-going failure handling.
    pub fn new(sn: &'sn SemanticNetwork, config: XsdfConfig) -> Self {
        Self {
            xsdf: Xsdf::new(sn, config),
            threads: default_threads(),
            cache: Arc::new(SharedCache::new()),
            limits: ResourceLimits::unlimited(),
            deadline: None,
            fail_fast: false,
            tracing: false,
            cancel: None,
        }
    }

    /// Sets the worker count. `0` restores the default (available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        self
    }

    /// Sets the per-document resource limits.
    pub fn limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets a per-document wall-clock deadline. Each document gets its own
    /// budget, started when a worker picks it up; overrunning documents
    /// return [`XsdfError::DeadlineExceeded`] at the next cooperative
    /// check. Necessarily time-dependent, so which documents trip is not
    /// deterministic — only that no document stalls a worker forever.
    pub fn deadline(mut self, per_document: Duration) -> Self {
        self.deadline = Some(per_document);
        self
    }

    /// In fail-fast mode the engine stops *scheduling* documents after the
    /// first failure; already-running documents finish, and unscheduled
    /// ones report [`XsdfError::Cancelled`]. Default is keep-going: every
    /// document is always attempted.
    pub fn fail_fast(mut self, fail_fast: bool) -> Self {
        self.fail_fast = fail_fast;
        self
    }

    /// Attaches an external cancellation flag, checked before each
    /// document is scheduled. Raising the flag (typically from a signal
    /// handler or another thread) stops the engine from starting new
    /// documents: already-running documents finish normally, and every
    /// unscheduled slot reports [`XsdfError::Cancelled`]. Unlike
    /// [`BatchEngine::fail_fast`], cancellation does not require any
    /// document to have failed first.
    pub fn cancel_flag(mut self, flag: &'sn AtomicBool) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Replaces the engine's similarity/vector cache with an existing
    /// shared one, so several engines — e.g. one per request
    /// configuration in a long-lived server — pool their warm state.
    /// Safe across configurations: pair scores are keyed by a weights
    /// fingerprint and context vectors by `(concept, radius, relation
    /// filter)`, so entries computed under one configuration are never
    /// served to an incompatible one.
    pub fn shared_cache(mut self, cache: Arc<SharedCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the engine's cache with a fresh one enforcing `budget`
    /// (see [`crate::CacheBudget`]). Eviction never changes results —
    /// entries are pure functions of their keys, so a bounded run is
    /// byte-identical to an unbounded one, only colder.
    pub fn cache_budget(mut self, budget: crate::CacheBudget) -> Self {
        self.cache = Arc::new(SharedCache::with_budget(budget));
        self
    }

    /// Enables per-document span collection: the report's
    /// [`BatchReport::trace`] becomes `Some`, with one [`DocSpan`] per
    /// attempted document (stage timings, cache delta, most-missed
    /// concepts). Latency histograms are always on; tracing adds only the
    /// span records and per-document cache-miss key capture. Results are
    /// byte-identical with tracing on or off. Default off.
    pub fn tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// The shared similarity cache. It outlives individual runs: a second
    /// [`BatchEngine::run`] starts warm.
    pub fn cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// The underlying pipeline.
    pub fn xsdf(&self) -> &Xsdf<'sn> {
        &self.xsdf
    }

    /// Disambiguates a batch of XML source strings.
    ///
    /// Results come back in input order. Cache hit/miss counts in the
    /// returned metrics cover exactly this run (each worker tallies its
    /// own lookups, so concurrent runs sharing the engine's cache do not
    /// skew each other); `cache_entries` is the cumulative table size
    /// afterwards, which concurrent runs *do* grow together.
    pub fn run(&self, docs: &[&str]) -> BatchReport {
        let started = Instant::now();
        let threads = self.threads.clamp(1, docs.len().max(1));

        let mut slots: Vec<Option<Result<DisambiguationResult, XsdfError>>> =
            (0..docs.len()).map(|_| None).collect();
        let mut totals = WorkerStats::default();
        let cancelled = AtomicBool::new(false);

        if threads <= 1 {
            let sim = self.worker_measure();
            let mut stats = WorkerStats::default();
            for (i, (slot, xml)) in slots.iter_mut().zip(docs).enumerate() {
                if self.should_stop(&cancelled) {
                    break;
                }
                *slot = Some(self.run_one(i, 0, xml, started, &sim, &mut stats, &cancelled));
            }
            stats.collect_cache(&sim);
            totals = stats;
        } else {
            let next = AtomicUsize::new(0);
            let (result_tx, result_rx) = mpsc::channel();
            let (stats_tx, stats_rx) = mpsc::channel();
            std::thread::scope(|scope| {
                for worker in 0..threads {
                    let result_tx = result_tx.clone();
                    let stats_tx = stats_tx.clone();
                    let next = &next;
                    let cancelled = &cancelled;
                    scope.spawn(move || {
                        let sim = self.worker_measure();
                        let mut stats = WorkerStats::default();
                        loop {
                            if self.should_stop(cancelled) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= docs.len() {
                                break;
                            }
                            let outcome = self
                                .run_one(i, worker, docs[i], started, &sim, &mut stats, cancelled);
                            if result_tx.send((i, outcome)).is_err() {
                                // The collector is gone (it panicked or was
                                // dropped early). Nobody can use further
                                // results; stop quietly instead of
                                // panicking a second thread.
                                break;
                            }
                        }
                        stats.collect_cache(&sim);
                        // Same rationale as above: a dead collector must
                        // not take the worker down with it.
                        let _ = stats_tx.send(stats);
                    });
                }
                drop(result_tx);
                drop(stats_tx);
                // Collect on the scope's owning thread while workers run.
                for (i, outcome) in result_rx {
                    slots[i] = Some(outcome);
                }
                for mut stats in stats_rx {
                    totals.merge(&mut stats);
                }
            });
        }

        // Slots never scheduled (fail-fast cancellation) report as such.
        let mut results = Vec::with_capacity(slots.len());
        for slot in slots {
            results.push(slot.unwrap_or_else(|| {
                totals.failures.cancelled += 1;
                Err(XsdfError::Cancelled)
            }));
        }
        // The span streams arrive in whatever order workers drained the
        // queue; sorting by input index makes the merged trace
        // deterministic for a given batch and thread count.
        let trace = if self.tracing {
            let mut spans = std::mem::take(&mut totals.spans);
            spans.sort_by_key(|s| s.doc);
            Some(Trace { spans, threads })
        } else {
            None
        };
        let metrics = MetricsSnapshot {
            threads,
            documents: docs.len(),
            failed_documents: totals.failures.total(),
            failures: totals.failures,
            nodes: totals.nodes,
            targets: totals.targets,
            assigned: totals.assigned,
            stages: totals.stages,
            latency: totals.latency,
            wall_clock: started.elapsed(),
            cache_hits: totals.cache_hits,
            cache_misses: totals.cache_misses,
            cache_entries: self.cache.len(),
            cache_evictions: self.cache.evictions(),
            cache_bytes: self.cache.bytes(),
            cache_bytes_peak: self.cache.bytes_peak(),
            gloss_pairs_scored: totals.gloss_pairs_scored,
            vectors_built: totals.vectors_built,
            vectors_reused: totals.vectors_reused,
            vector_entries: self.cache.vectors_len(),
            candidates_pruned: totals.candidates_pruned,
            early_exits: totals.early_exits,
        };
        BatchReport {
            results,
            metrics,
            trace,
        }
    }

    /// Disambiguates a single document under the engine's limits and
    /// deadline, with panic isolation. This is `run(&[xml])` without the
    /// batch scaffolding; the CLI uses it for `xsdf disambiguate`.
    pub fn process_document(&self, xml: &str) -> Result<DisambiguationResult, XsdfError> {
        self.process_document_observed(xml).result
    }

    /// Like [`BatchEngine::process_document`], but also returns what the
    /// runtime observed: the trace span (when [`BatchEngine::tracing`] is
    /// on) and this document's exact cache/kernel accounting. This is the
    /// per-request entry point for resident services, which aggregate the
    /// outcomes into live metrics instead of reading a whole-batch
    /// [`MetricsSnapshot`].
    pub fn process_document_observed(&self, xml: &str) -> DocOutcome {
        let sim = self.worker_measure();
        let mut stats = WorkerStats::default();
        let cancelled = AtomicBool::new(false);
        let result = self.run_one(0, 0, xml, Instant::now(), &sim, &mut stats, &cancelled);
        stats.collect_cache(&sim);
        DocOutcome {
            result,
            span: stats.spans.pop(),
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            gloss_pairs_scored: stats.gloss_pairs_scored,
            vectors_built: stats.vectors_built,
            vectors_reused: stats.vectors_reused,
            candidates_pruned: stats.candidates_pruned,
            early_exits: stats.early_exits,
        }
    }

    /// Whether the engine should stop scheduling further documents:
    /// fail-fast after an internal failure, or an external cancel.
    fn should_stop(&self, internal: &AtomicBool) -> bool {
        (self.fail_fast && internal.load(Ordering::Relaxed))
            || self.cancel.is_some_and(|c| c.load(Ordering::Relaxed))
    }

    fn worker_measure(&self) -> CombinedSimilarity<TallyCache> {
        CombinedSimilarity::with_cache(
            self.xsdf.config().similarity,
            TallyCache::new(Arc::clone(&self.cache)),
        )
    }

    /// Runs one document with the panic boundary: a panic anywhere in the
    /// pipeline (or an injected failpoint panic) is caught here and
    /// becomes a per-document [`XsdfError::Panicked`]. Also records the
    /// failure kind, the end-to-end latency, the trace span when tracing
    /// is on, and, in fail-fast mode, raises the cancellation flag.
    #[allow(clippy::too_many_arguments)]
    fn run_one(
        &self,
        doc: usize,
        worker: usize,
        xml: &str,
        epoch: Instant,
        sim: &CombinedSimilarity<TallyCache>,
        stats: &mut WorkerStats,
        cancelled: &AtomicBool,
    ) -> Result<DisambiguationResult, XsdfError> {
        let start = epoch.elapsed();
        let (hits_before, misses_before) = (sim.cache().hits(), sim.cache().misses());
        if self.tracing {
            sim.cache().begin_miss_recording();
        }
        let mut marks = DocMarks::default();
        // AssertUnwindSafe: `stats`, `marks`, and the tally cache are only
        // ever advanced by whole, already-completed increments (Cell sets,
        // Duration additions), and a torn shared-cache shard is audited in
        // `SharedCache` (poison recovery over idempotent pure scores) — so
        // observing them after an unwind cannot expose a broken invariant.
        let outcome = match catch_unwind(AssertUnwindSafe(|| {
            self.process_one(xml, epoch, sim, stats, &mut marks)
        })) {
            Ok(outcome) => outcome,
            Err(payload) => Err(XsdfError::Panicked {
                message: panic_message(payload),
            }),
        };
        let end = epoch.elapsed();
        stats.latency.doc.record(end.saturating_sub(start));
        if let Err(e) = &outcome {
            stats.failures.record(e);
            if self.fail_fast {
                cancelled.store(true, Ordering::Relaxed);
            }
        }
        if self.tracing {
            let missed = sim.cache().take_missed_pairs();
            stats.spans.push(DocSpan {
                doc,
                worker,
                start,
                end,
                bytes: xml.len(),
                outcome: match &outcome {
                    Ok(_) => "ok",
                    Err(e) => e.kind(),
                },
                error: outcome.as_ref().err().map(|e| e.to_string()),
                nodes: marks.nodes,
                targets: marks.targets,
                assigned: marks.assigned,
                sense_pairs: marks.sense_pairs,
                cache_hits: sim.cache().hits() - hits_before,
                cache_misses: sim.cache().misses() - misses_before,
                stages: marks.stages,
                top_miss_concepts: top_miss_concepts(self.xsdf.network(), &missed),
            });
        }
        outcome
    }

    /// The four-stage pipeline for one document, with limit and deadline
    /// checks at every stage boundary (and, via the guard, inside the
    /// scoring loop). Wraps [`BatchEngine::process_stages`] so the guard's
    /// sense-pair count lands in the marks on success *and* error exits
    /// (a panic loses it — the guard unwinds with the stack).
    fn process_one(
        &self,
        xml: &str,
        epoch: Instant,
        sim: &CombinedSimilarity<TallyCache>,
        stats: &mut WorkerStats,
        marks: &mut DocMarks,
    ) -> Result<DisambiguationResult, XsdfError> {
        let guard = self.limits.guard(self.deadline.map(Deadline::after));
        let outcome = self.process_stages(xml, epoch, sim, stats, marks, &guard);
        marks.sense_pairs = guard.pairs_scored();
        stats.candidates_pruned += guard.candidates_pruned();
        stats.early_exits += guard.early_exits();
        outcome
    }

    fn process_stages(
        &self,
        xml: &str,
        epoch: Instant,
        sim: &CombinedSimilarity<TallyCache>,
        stats: &mut WorkerStats,
        marks: &mut DocMarks,
        guard: &xsdf::guard::Guard,
    ) -> Result<DisambiguationResult, XsdfError> {
        fault::hit("parse", xml);
        if let Some(max) = self.limits.max_bytes {
            if xml.len() > max {
                return Err(XsdfError::LimitExceeded {
                    which: xsdf::LimitKind::Bytes,
                    limit: max as u64,
                    actual: xml.len() as u64,
                });
            }
        }
        let stage_start = epoch.elapsed();
        let t = Instant::now();
        let parsed = {
            let mut parser = xmltree::parser::Parser::new(xml);
            if let Some(depth) = self.limits.max_depth {
                parser.max_depth = depth;
            }
            parser.parse_document()
        };
        let took = t.elapsed();
        stats.stages.parse += took;
        stats.latency.parse.record(took);
        marks.stages[0] = Some(StageSpan {
            start: stage_start,
            duration: took,
        });
        let doc = parsed?;
        guard.check_deadline()?;

        fault::hit("preprocess", xml);
        let stage_start = epoch.elapsed();
        let t = Instant::now();
        let tree = self.xsdf.build_tree(&doc);
        let took = t.elapsed();
        stats.stages.preprocess += took;
        stats.latency.preprocess.record(took);
        marks.stages[1] = Some(StageSpan {
            start: stage_start,
            duration: took,
        });
        marks.nodes = tree.len();

        fault::hit("select", xml);
        let stage_start = epoch.elapsed();
        let t = Instant::now();
        let selected = self.xsdf.select_guarded(&tree, guard);
        let took = t.elapsed();
        stats.stages.select += took;
        stats.latency.select.record(took);
        marks.stages[2] = Some(StageSpan {
            start: stage_start,
            duration: took,
        });
        let ambiguities = selected?;
        marks.targets = ambiguities.iter().filter(|a| a.selected).count();

        fault::hit("disambiguate", xml);
        let stage_start = epoch.elapsed();
        let t = Instant::now();
        let scored = self
            .xsdf
            .disambiguate_selected_guarded(&tree, &ambiguities, sim, guard);
        let took = t.elapsed();
        stats.stages.disambiguate += took;
        stats.latency.disambiguate.record(took);
        marks.stages[3] = Some(StageSpan {
            start: stage_start,
            duration: took,
        });
        let result = scored?;
        marks.assigned = result.assigned_count();

        stats.nodes += tree.len();
        stats.targets += marks.targets;
        stats.assigned += marks.assigned;
        Ok(result)
    }
}

/// Tallies how often each concept appears in a document's missed cache
/// pairs and keeps the most frequent — the "what would warming help"
/// signal for slow-document reports. Count descending, key ascending, at
/// most [`TOP_MISS_CONCEPTS`] entries.
fn top_miss_concepts(sn: &SemanticNetwork, missed: &[PairKey]) -> Vec<(String, u64)> {
    let mut counts: HashMap<semnet::ConceptId, u64> = HashMap::new();
    for &(_, a, b) in missed {
        *counts.entry(a).or_insert(0) += 1;
        if b != a {
            *counts.entry(b).or_insert(0) += 1;
        }
    }
    let mut items: Vec<(String, u64)> = counts
        .into_iter()
        .map(|(id, n)| (sn.concept(id).key.clone(), n))
        .collect();
    items.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
    items.truncate(TOP_MISS_CONCEPTS);
    items
}

/// Renders a caught panic payload: `&str` and `String` payloads (the
/// overwhelmingly common cases, produced by `panic!` with a message) come
/// through verbatim, anything else gets a placeholder.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;
    use xsdf::LimitKind;

    const DOC: &str = r#"<films>
        <picture title="Rear Window">
            <cast><star>Stewart</star><star>Kelly</star></cast>
        </picture>
    </films>"#;

    #[test]
    fn batch_preserves_input_order_and_isolates_errors() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default()).threads(2);
        let docs = [DOC, "<not-xml", DOC, "<cast/>"];
        let report = engine.run(&docs);
        assert_eq!(report.results.len(), 4);
        assert!(report.results[0].is_ok());
        assert!(report.results[1].is_err());
        assert!(report.results[2].is_ok());
        assert!(report.results[3].is_ok());
        assert_eq!(report.metrics.failed_documents, 1);
        assert_eq!(report.metrics.failures.parse, 1);
        assert_eq!(report.metrics.documents, 4);
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default());
        let report = engine.run(&[]);
        assert!(report.results.is_empty());
        assert_eq!(report.metrics.documents, 0);
        assert_eq!(report.metrics.docs_per_sec(), 0.0);
    }

    #[test]
    fn shared_cache_warms_across_documents() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default()).threads(1);
        let first = engine.run(&[DOC]);
        let cold_misses = first.metrics.cache_misses;
        assert!(cold_misses > 0, "first document must compute similarities");
        // The same document again: every pair is already cached.
        let second = engine.run(&[DOC]);
        assert_eq!(second.metrics.cache_misses, 0);
        assert!(second.metrics.cache_hits > 0);
        assert!(second.metrics.cache_hit_rate() > 0.99);
    }

    #[test]
    fn threads_zero_means_default() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default()).threads(0);
        let report = engine.run(&[DOC, DOC]);
        assert!(report.metrics.threads >= 1);
    }

    #[test]
    fn byte_limit_rejects_before_parsing() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default())
            .threads(1)
            .limits(ResourceLimits::unlimited().max_bytes(8));
        let report = engine.run(&[DOC, "<a/>"]);
        match &report.results[0] {
            Err(XsdfError::LimitExceeded { which, .. }) => assert_eq!(*which, LimitKind::Bytes),
            other => panic!("expected byte limit, got {other:?}"),
        }
        assert!(report.results[1].is_ok(), "tiny neighbor still processed");
        assert_eq!(report.metrics.failures.limit, 1);
    }

    #[test]
    fn zero_deadline_fails_every_document_gracefully() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default())
            .threads(2)
            .deadline(Duration::ZERO);
        let report = engine.run(&[DOC, DOC, DOC]);
        assert_eq!(report.metrics.failures.deadline, 3);
        for result in &report.results {
            assert!(matches!(result, Err(XsdfError::DeadlineExceeded { .. })));
        }
    }

    #[test]
    fn fail_fast_cancels_unscheduled_documents_serially() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default())
            .threads(1)
            .fail_fast(true);
        let docs = [DOC, "<broken", DOC, DOC];
        let report = engine.run(&docs);
        assert!(report.results[0].is_ok());
        assert!(matches!(report.results[1], Err(XsdfError::Parse(_))));
        assert!(matches!(report.results[2], Err(XsdfError::Cancelled)));
        assert!(matches!(report.results[3], Err(XsdfError::Cancelled)));
        assert_eq!(report.metrics.failures.cancelled, 2);
        assert_eq!(report.metrics.failed_documents, 3);
    }

    #[test]
    fn external_cancel_flag_stops_scheduling() {
        let flag = AtomicBool::new(true);
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default())
            .threads(1)
            .cancel_flag(&flag);
        // Raised before the run: nothing is scheduled at all.
        let report = engine.run(&[DOC, DOC, DOC]);
        assert!(report
            .results
            .iter()
            .all(|r| matches!(r, Err(XsdfError::Cancelled))));
        assert_eq!(report.metrics.failures.cancelled, 3);
        // Lowered again: the same engine processes normally.
        flag.store(false, Ordering::Relaxed);
        let report = engine.run(&[DOC]);
        assert!(report.results[0].is_ok());
    }

    #[test]
    fn shared_cache_injection_pools_warm_state_across_engines() {
        let first = BatchEngine::new(mini_wordnet(), XsdfConfig::default()).threads(1);
        first.run(&[DOC]);
        let warm = Arc::clone(first.cache());
        // A brand-new engine over the same network, given the first
        // engine's cache, starts fully warm.
        let second = BatchEngine::new(mini_wordnet(), XsdfConfig::default())
            .threads(1)
            .shared_cache(warm);
        let report = second.run(&[DOC]);
        assert_eq!(report.metrics.cache_misses, 0);
        assert!(report.metrics.cache_hits > 0);
    }

    #[test]
    fn process_document_observed_returns_span_and_cache_delta() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default()).tracing(true);
        let outcome = engine.process_document_observed(DOC);
        assert!(outcome.result.is_ok());
        let span = outcome.span.expect("tracing produces a span");
        assert_eq!(span.outcome, "ok");
        assert!(span.nodes > 0);
        assert_eq!(span.cache_misses, outcome.cache_misses);
        assert!(outcome.cache_misses > 0, "cold run must miss");
        // A second observed run over the same engine is fully warm.
        let warm = engine.process_document_observed(DOC);
        assert_eq!(warm.cache_misses, 0);
        assert!(warm.cache_hits > 0);
        // Without tracing there is no span, but accounting still works.
        let untraced = BatchEngine::new(mini_wordnet(), XsdfConfig::default());
        let outcome = untraced.process_document_observed(DOC);
        assert!(outcome.result.is_ok());
        assert!(outcome.span.is_none());
    }

    #[test]
    fn pruning_counters_reach_batch_metrics_and_doc_outcomes() {
        let pruned_cfg = XsdfConfig {
            prune: xsdf::PruningConfig::exact(),
            ..XsdfConfig::default()
        };
        let engine = BatchEngine::new(mini_wordnet(), pruned_cfg).threads(1);
        let report = engine.run(&[DOC]);
        assert!(report.results[0].is_ok());
        assert!(
            report.metrics.candidates_pruned > 0,
            "exact pruning on a polysemous document must skip candidates"
        );
        let outcome = engine.process_document_observed(DOC);
        assert!(outcome.result.is_ok());
        assert!(outcome.candidates_pruned > 0);
        // With pruning off (the default) both counters stay zero.
        let plain = BatchEngine::new(mini_wordnet(), XsdfConfig::default());
        let outcome = plain.process_document_observed(DOC);
        assert_eq!(outcome.candidates_pruned, 0);
        assert_eq!(outcome.early_exits, 0);
        let report = plain.run(&[DOC]);
        assert_eq!(report.metrics.candidates_pruned, 0);
        assert_eq!(report.metrics.early_exits, 0);
    }

    #[test]
    fn process_document_applies_limits() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default())
            .limits(ResourceLimits::unlimited().max_nodes(2));
        assert!(engine.process_document("<cast/>").is_ok());
        let err = engine.process_document(DOC).unwrap_err();
        assert_eq!(err.kind(), "limit");
    }
}
