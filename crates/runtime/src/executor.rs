//! The batch executor: a worker pool fanning documents across cores.
//!
//! Each worker owns a [`CombinedSimilarity`] scoring through the engine's
//! one [`SharedCache`], so sense pairs computed for any document are reused
//! by every other. Workers pull jobs off a shared counter (dynamic load
//! balancing — documents vary widely in size) and send results back over a
//! channel tagged with the input index; the collector reassembles them in
//! input order, so output is deterministic regardless of thread count or
//! scheduling. Scores themselves are thread-count-independent too: the
//! cache only memoizes a pure function of the concept pair.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use semnet::SemanticNetwork;
use semsim::{CombinedSimilarity, SimilarityCache};
use xmltree::ParseError;
use xsdf::{DisambiguationResult, Xsdf, XsdfConfig};

use crate::cache::SharedCache;
use crate::metrics::{MetricsSnapshot, StageTimings};

/// Per-worker accumulator, merged into the batch metrics at the end.
#[derive(Default)]
struct WorkerStats {
    stages: StageTimings,
    nodes: usize,
    targets: usize,
    assigned: usize,
    failed: usize,
}

/// The outcome of one batch run: per-document results in input order plus
/// a metrics snapshot.
#[derive(Debug)]
pub struct BatchReport {
    /// One entry per input document, in input order. Documents that fail
    /// to parse yield `Err` without affecting their neighbors.
    pub results: Vec<Result<DisambiguationResult, ParseError>>,
    /// Timings, throughput, and cache accounting for this run.
    pub metrics: MetricsSnapshot,
}

/// A reusable parallel batch-disambiguation engine.
///
/// ```
/// use runtime::BatchEngine;
/// use xsdf::XsdfConfig;
///
/// let engine = BatchEngine::new(semnet::mini_wordnet(), XsdfConfig::default()).threads(2);
/// let docs = ["<cast><star>Kelly</star></cast>", "<films><picture/></films>"];
/// let report = engine.run(&docs);
/// assert_eq!(report.results.len(), 2);
/// assert!(report.results.iter().all(|r| r.is_ok()));
/// ```
pub struct BatchEngine<'sn> {
    xsdf: Xsdf<'sn>,
    threads: usize,
    cache: Arc<SharedCache>,
}

impl<'sn> BatchEngine<'sn> {
    /// An engine over the given network and pipeline configuration, with
    /// one worker per available core.
    pub fn new(sn: &'sn SemanticNetwork, config: XsdfConfig) -> Self {
        Self {
            xsdf: Xsdf::new(sn, config),
            threads: default_threads(),
            cache: Arc::new(SharedCache::new()),
        }
    }

    /// Sets the worker count. `0` restores the default (available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        self
    }

    /// The shared similarity cache. It outlives individual runs: a second
    /// [`BatchEngine::run`] starts warm.
    pub fn cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// The underlying pipeline.
    pub fn xsdf(&self) -> &Xsdf<'sn> {
        &self.xsdf
    }

    /// Disambiguates a batch of XML source strings.
    ///
    /// Results come back in input order. Cache hit/miss counts in the
    /// returned metrics cover this run only; `cache_entries` is the
    /// (cumulative) table size afterwards.
    pub fn run(&self, docs: &[&str]) -> BatchReport {
        let started = Instant::now();
        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();
        let threads = self.threads.clamp(1, docs.len().max(1));

        let mut slots: Vec<Option<Result<DisambiguationResult, ParseError>>> =
            (0..docs.len()).map(|_| None).collect();
        let mut totals = WorkerStats::default();

        if threads <= 1 {
            let sim = self.worker_measure();
            let mut stats = WorkerStats::default();
            for (slot, xml) in slots.iter_mut().zip(docs) {
                *slot = Some(self.process_one(xml, &sim, &mut stats));
            }
            totals = stats;
        } else {
            let next = AtomicUsize::new(0);
            let (result_tx, result_rx) = mpsc::channel();
            let (stats_tx, stats_rx) = mpsc::channel();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let result_tx = result_tx.clone();
                    let stats_tx = stats_tx.clone();
                    let next = &next;
                    scope.spawn(move || {
                        let sim = self.worker_measure();
                        let mut stats = WorkerStats::default();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= docs.len() {
                                break;
                            }
                            let outcome = self.process_one(docs[i], &sim, &mut stats);
                            result_tx
                                .send((i, outcome))
                                .expect("collector outlives workers");
                        }
                        stats_tx.send(stats).expect("collector outlives workers");
                    });
                }
                drop(result_tx);
                drop(stats_tx);
                // Collect on the scope's owning thread while workers run.
                for (i, outcome) in result_rx {
                    slots[i] = Some(outcome);
                }
                for stats in stats_rx {
                    totals.stages.merge(&stats.stages);
                    totals.nodes += stats.nodes;
                    totals.targets += stats.targets;
                    totals.assigned += stats.assigned;
                    totals.failed += stats.failed;
                }
            });
        }

        let results: Vec<_> = slots
            .into_iter()
            .map(|slot| slot.expect("every index processed exactly once"))
            .collect();
        let metrics = MetricsSnapshot {
            threads,
            documents: docs.len(),
            failed_documents: totals.failed,
            nodes: totals.nodes,
            targets: totals.targets,
            assigned: totals.assigned,
            stages: totals.stages,
            wall_clock: started.elapsed(),
            cache_hits: self.cache.hits() - hits_before,
            cache_misses: self.cache.misses() - misses_before,
            cache_entries: self.cache.len(),
        };
        BatchReport { results, metrics }
    }

    fn worker_measure(&self) -> CombinedSimilarity<Arc<SharedCache>> {
        CombinedSimilarity::with_cache(self.xsdf.config().similarity, Arc::clone(&self.cache))
    }

    fn process_one(
        &self,
        xml: &str,
        sim: &CombinedSimilarity<Arc<SharedCache>>,
        stats: &mut WorkerStats,
    ) -> Result<DisambiguationResult, ParseError> {
        let t = Instant::now();
        let doc = match xmltree::parse(xml) {
            Ok(doc) => {
                stats.stages.parse += t.elapsed();
                doc
            }
            Err(e) => {
                stats.stages.parse += t.elapsed();
                stats.failed += 1;
                return Err(e);
            }
        };
        let t = Instant::now();
        let tree = self.xsdf.build_tree(&doc);
        stats.stages.preprocess += t.elapsed();

        let t = Instant::now();
        let ambiguities = self.xsdf.select(&tree);
        stats.stages.select += t.elapsed();

        let t = Instant::now();
        let result = self.xsdf.disambiguate_selected(&tree, &ambiguities, sim);
        stats.stages.disambiguate += t.elapsed();

        stats.nodes += tree.len();
        stats.targets += ambiguities.iter().filter(|a| a.selected).count();
        stats.assigned += result.assigned_count();
        Ok(result)
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;

    const DOC: &str = r#"<films>
        <picture title="Rear Window">
            <cast><star>Stewart</star><star>Kelly</star></cast>
        </picture>
    </films>"#;

    #[test]
    fn batch_preserves_input_order_and_isolates_errors() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default()).threads(2);
        let docs = [DOC, "<not-xml", DOC, "<cast/>"];
        let report = engine.run(&docs);
        assert_eq!(report.results.len(), 4);
        assert!(report.results[0].is_ok());
        assert!(report.results[1].is_err());
        assert!(report.results[2].is_ok());
        assert!(report.results[3].is_ok());
        assert_eq!(report.metrics.failed_documents, 1);
        assert_eq!(report.metrics.documents, 4);
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default());
        let report = engine.run(&[]);
        assert!(report.results.is_empty());
        assert_eq!(report.metrics.documents, 0);
        assert_eq!(report.metrics.docs_per_sec(), 0.0);
    }

    #[test]
    fn shared_cache_warms_across_documents() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default()).threads(1);
        let first = engine.run(&[DOC]);
        let cold_misses = first.metrics.cache_misses;
        assert!(cold_misses > 0, "first document must compute similarities");
        // The same document again: every pair is already cached.
        let second = engine.run(&[DOC]);
        assert_eq!(second.metrics.cache_misses, 0);
        assert!(second.metrics.cache_hits > 0);
        assert!(second.metrics.cache_hit_rate() > 0.99);
    }

    #[test]
    fn threads_zero_means_default() {
        let engine = BatchEngine::new(mini_wordnet(), XsdfConfig::default()).threads(0);
        let report = engine.run(&[DOC, DOC]);
        assert!(report.metrics.threads >= 1);
    }
}
