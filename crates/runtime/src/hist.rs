//! Log-bucketed latency histograms for per-document and per-stage timing
//! distributions.
//!
//! A [`Histogram`] records durations into geometrically growing buckets —
//! 16 sub-buckets per power of two of nanoseconds, the HdrHistogram
//! layout — so the whole nanosecond-to-hours range fits in under a
//! thousand counters while any quantile estimate stays within ~6.25%
//! relative error of the exact value. Recording is a couple of shifts and
//! one array increment (no allocation once the bucket exists), cheap
//! enough to sit on the batch executor's per-document hot path; merging
//! is element-wise addition, so per-worker histograms combine into batch
//! totals without locks and independently of worker scheduling.

use std::time::Duration;

/// log2 of the sub-bucket count: 16 sub-buckets per octave.
const SUB_SHIFT: u32 = 4;
/// Sub-buckets per power of two. Quantile estimates are off by at most
/// one bucket width, i.e. a relative error of `1/SUBBUCKETS` = 6.25%.
const SUBBUCKETS: u64 = 1 << SUB_SHIFT;

/// A log-bucketed histogram of [`Duration`] samples.
///
/// Values below [`SUBBUCKETS`] nanoseconds are counted exactly (one
/// bucket per nanosecond); above that, buckets grow geometrically. The
/// exact maximum is tracked on the side so [`Histogram::max`] is always
/// precise, while [`Histogram::quantile`] is bucket-accurate (≤ 6.25%
/// relative error).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counters, grown lazily to the highest index ever recorded.
    buckets: Vec<u64>,
    /// Total samples recorded.
    count: u64,
    /// Exact largest sample in nanoseconds (0 when empty).
    max_ns: u64,
    /// Sum of all samples in nanoseconds (for the mean).
    sum_ns: u128,
}

/// Bucket index for a nanosecond value.
fn bucket_index(ns: u64) -> usize {
    if ns < SUBBUCKETS {
        ns as usize
    } else {
        // ns in [2^m, 2^(m+1)) with m >= SUB_SHIFT: the top SUB_SHIFT+1
        // bits select the bucket, giving SUBBUCKETS buckets per octave
        // that line up seamlessly with the exact region below.
        let m = 63 - ns.leading_zeros();
        let sub = (ns >> (m - SUB_SHIFT)) - SUBBUCKETS;
        ((m - SUB_SHIFT) as u64 * SUBBUCKETS + SUBBUCKETS + sub) as usize
    }
}

/// Inclusive upper bound (in nanoseconds) of the bucket at `index`.
fn bucket_upper_ns(index: usize) -> u64 {
    let index = index as u64;
    if index < SUBBUCKETS {
        index
    } else {
        let octave = (index - SUBBUCKETS) / SUBBUCKETS;
        let sub = (index - SUBBUCKETS) % SUBBUCKETS;
        // Lower bound is (SUBBUCKETS + sub) << octave; the bucket spans
        // one `1 << octave` step. Widened to u128: the topmost bucket's
        // upper bound is exactly 2^64, which must clamp, not overflow.
        let upper = (u128::from(SUBBUCKETS + sub + 1) << octave) - 1;
        u64::try_from(upper).unwrap_or(u64::MAX)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        let ns = u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX);
        let index = bucket_index(ns);
        if self.buckets.len() <= index {
            self.buckets.resize(index + 1, 0);
        }
        self.buckets[index] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
        self.sum_ns += u128::from(ns);
    }

    /// Element-wise merge of another histogram into this one. Merging is
    /// commutative and associative, so per-worker histograms combine into
    /// the same batch totals regardless of worker scheduling.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.sum_ns += other.sum_ns;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Serializes the histogram losslessly into a compact single-line
    /// text form: `count,max_ns,sum_ns` followed by `;index:counter`
    /// for every non-empty bucket. This is the wire format the sharded
    /// batch driver uses to ship per-shard histograms from worker
    /// processes to the parent, where [`Histogram::decode`] +
    /// [`Histogram::merge`] reconstruct the exact single-process result.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{},{},{}", self.count, self.max_ns, self.sum_ns);
        for (index, &n) in self.buckets.iter().enumerate() {
            if n != 0 {
                let _ = write!(out, ";{index}:{n}");
            }
        }
        out
    }

    /// Parses a histogram from its [`Histogram::encode`] form. Returns
    /// `None` on any malformation: bad syntax, a bucket index outside
    /// the layout's range, duplicate indices, or bucket counters that do
    /// not sum to the sample count. Decoding an encoded histogram always
    /// yields a structurally equal histogram.
    pub fn decode(text: &str) -> Option<Self> {
        // The layout caps bucket indices: the topmost octave of a u64
        // nanosecond value lands below (64 - SUB_SHIFT + 1) * SUBBUCKETS.
        const MAX_INDEX: usize = ((64 - SUB_SHIFT as usize) + 1) << SUB_SHIFT;
        let mut parts = text.split(';');
        let head = parts.next()?;
        let mut nums = head.split(',');
        let count: u64 = nums.next()?.parse().ok()?;
        let max_ns: u64 = nums.next()?.parse().ok()?;
        let sum_ns: u128 = nums.next()?.parse().ok()?;
        if nums.next().is_some() {
            return None;
        }
        let mut buckets: Vec<u64> = Vec::new();
        let mut total: u64 = 0;
        for part in parts {
            let (index, n) = part.split_once(':')?;
            let index: usize = index.parse().ok()?;
            let n: u64 = n.parse().ok()?;
            if n == 0 || index > MAX_INDEX {
                return None;
            }
            if buckets.len() <= index {
                buckets.resize(index + 1, 0);
            }
            if buckets[index] != 0 {
                return None;
            }
            buckets[index] = n;
            total = total.checked_add(n)?;
        }
        if total != count {
            return None;
        }
        Some(Self {
            buckets,
            count,
            max_ns,
            sum_ns,
        })
    }

    /// The exact largest recorded sample ([`Duration::ZERO`] when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// The mean of all recorded samples ([`Duration::ZERO`] when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.sum_ns / u128::from(self.count)) as u64)
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the sample of that rank, clamped to the exact maximum —
    /// within 6.25% relative error of the exact order statistic.
    /// [`Duration::ZERO`] when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        // Rank of the order statistic: ceil(q * count), clamped to [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Duration::from_nanos(bucket_upper_ns(index).min(self.max_ns));
            }
        }
        // invariant: the loop always reaches `rank` because `count` is the
        // sum of all bucket counters.
        self.max()
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Duration {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(samples_ns: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &ns in samples_ns {
            h.record(Duration::from_nanos(ns));
        }
        h
    }

    /// The exact order statistic `quantile` approximates: with rank
    /// `ceil(q * n)` (1-based) over the sorted samples.
    fn exact_quantile(samples_ns: &[u64], q: f64) -> u64 {
        let mut sorted = samples_ns.to_vec();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn small_values_are_exact() {
        // The linear region (< 16 ns) has one bucket per nanosecond.
        let h = h(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let want = exact_quantile(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15], q);
            assert_eq!(h.quantile(q), Duration::from_nanos(want), "q={q}");
        }
    }

    #[test]
    fn bucket_layout_is_contiguous_and_monotonic() {
        // Every nanosecond value maps to a bucket whose bounds contain it,
        // and indices never decrease as values grow.
        let mut values: Vec<u64> = (0..60)
            .flat_map(|shift| [0u64, 1, 3].map(|delta| (1u64 << shift) + delta))
            .collect();
        values.sort_unstable();
        let mut prev_index = 0;
        for v in values {
            let index = bucket_index(v);
            assert!(index >= prev_index, "index regressed at {v}");
            assert!(bucket_upper_ns(index) >= v, "upper bound below {v}");
            if index > 0 {
                assert!(bucket_upper_ns(index - 1) < v, "wrong bucket for {v}");
            }
            prev_index = index;
        }
    }

    #[test]
    fn quantiles_track_exact_reference_within_bucket_error() {
        // Deterministic pseudo-random samples spanning six decades.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut samples = Vec::new();
        for _ in 0..4000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            samples.push((state >> 20) % 1_000_000_000);
        }
        let hist = h(&samples);
        assert_eq!(hist.count(), samples.len() as u64);
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&samples, q) as f64;
            let approx = hist.quantile(q).as_nanos() as f64;
            // Bucket upper bound: never below the exact value, and at most
            // one sub-bucket (6.25%) above it.
            assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            assert!(
                approx <= exact * (1.0 + 1.0 / 16.0) + 1.0,
                "q={q}: {approx} too far above exact {exact}"
            );
        }
        assert_eq!(
            hist.max(),
            Duration::from_nanos(*samples.iter().max().unwrap()),
            "max is tracked exactly"
        );
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let a: Vec<u64> = (0..500).map(|i| i * 7919 % 1_000_000).collect();
        let b: Vec<u64> = (0..300).map(|i| i * 104729 % 50_000_000).collect();
        let mut merged = h(&a);
        merged.merge(&h(&b));
        let mut all = a.clone();
        all.extend(&b);
        assert_eq!(merged, h(&all));
    }

    #[test]
    fn encode_decode_roundtrips_structurally() {
        let samples: Vec<u64> = (0..800).map(|i| i * 104729 % 90_000_000).collect();
        let hist = h(&samples);
        let decoded = Histogram::decode(&hist.encode()).expect("decodes");
        assert_eq!(decoded, hist);
        // Quantiles and the exact max survive the trip bit-for-bit.
        assert_eq!(decoded.p99(), hist.p99());
        assert_eq!(decoded.max(), hist.max());
        // Empty histogram too.
        let empty = Histogram::new();
        assert_eq!(Histogram::decode(&empty.encode()), Some(empty));
        // And the saturating extreme.
        let mut extreme = Histogram::new();
        extreme.record(Duration::MAX);
        assert_eq!(Histogram::decode(&extreme.encode()), Some(extreme));
    }

    #[test]
    fn decode_merge_equals_in_process_merge() {
        // The shard transport invariant: decoding per-shard encodings and
        // merging them gives the same histogram as one process recording
        // everything.
        let a: Vec<u64> = (0..500).map(|i| i * 7919 % 1_000_000).collect();
        let b: Vec<u64> = (0..300).map(|i| i * 104729 % 50_000_000).collect();
        let mut merged = Histogram::decode(&h(&a).encode()).unwrap();
        merged.merge(&Histogram::decode(&h(&b).encode()).unwrap());
        let mut all = a.clone();
        all.extend(&b);
        assert_eq!(merged, h(&all));
    }

    #[test]
    fn decode_rejects_malformed_text() {
        for bad in [
            "",
            "1,2",
            "1,2,3,4",
            "x,0,0",
            "1,0,0;", // empty bucket entry
            "1,0,0;0",
            "1,0,0;0:x",
            "2,0,0;0:1",     // counters don't sum to count
            "1,0,0;0:0",     // explicit zero counter
            "2,0,0;0:1;0:1", // duplicate index
            "1,0,0;99999:1", // index outside the layout
            "1,0,0,extra;0:1",
        ] {
            assert_eq!(Histogram::decode(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn huge_samples_saturate_instead_of_panicking() {
        let mut hist = Histogram::new();
        hist.record(Duration::MAX);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), Duration::from_nanos(u64::MAX));
        assert!(hist.quantile(0.5) > Duration::from_secs(100 * 365 * 24 * 3600));
    }
}
