//! Per-document resource limits for batch runs.
//!
//! Nothing in the paper's pipeline bounds what one document may cost: a
//! deeply nested, mega-fanout, or hyper-polysemous document can consume
//! unbounded memory and CPU. [`ResourceLimits`] puts explicit ceilings on
//! the expensive dimensions; the engine enforces the byte and depth bounds
//! up front (before/while parsing) and threads the rest through
//! [`xsdf::Guard`] as cooperative budget checks inside selection and
//! scoring. The default is fully unlimited, preserving the historical
//! behavior of [`crate::BatchEngine`].

use xsdf::guard::{Deadline, Guard};

/// Ceilings on what a single document may consume. `None` means unlimited.
///
/// ```
/// use runtime::ResourceLimits;
///
/// let limits = ResourceLimits::unlimited()
///     .max_bytes(1 << 20)        // 1 MiB of raw XML
///     .max_nodes(50_000)         // tree nodes after building
///     .max_depth(128)            // element nesting while parsing
///     .max_targets(5_000)        // selected disambiguation targets
///     .max_sense_pairs(200_000); // single-sense evaluations while scoring
/// assert_eq!(limits.max_bytes, Some(1 << 20));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum raw document size in bytes, checked before parsing.
    pub max_bytes: Option<usize>,
    /// Maximum number of nodes in the built tree.
    pub max_nodes: Option<usize>,
    /// Maximum element nesting depth, wired through to
    /// [`xmltree::parser::Parser::max_depth`]. When unset the parser keeps
    /// its own stack-overflow guard (256).
    pub max_depth: Option<u32>,
    /// Maximum number of selected disambiguation targets.
    pub max_targets: Option<usize>,
    /// Maximum sense-pair budget units per document — the dimension that
    /// explodes with polysemy. One unit is one single-sense combined
    /// similarity evaluation in the scoring loop; a compound sense *pair*
    /// (Equation 10 averages two single-token senses) draws two units, so
    /// the budget measures work, not loop iterations. See
    /// [`xsdf::Guard::tick_sense_pair`] for the canonical definition.
    pub max_sense_pairs: Option<u64>,
}

impl ResourceLimits {
    /// No limits at all (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets the raw document size ceiling.
    pub fn max_bytes(mut self, max: usize) -> Self {
        self.max_bytes = Some(max);
        self
    }

    /// Sets the tree-node ceiling.
    pub fn max_nodes(mut self, max: usize) -> Self {
        self.max_nodes = Some(max);
        self
    }

    /// Sets the element-nesting ceiling.
    pub fn max_depth(mut self, max: u32) -> Self {
        self.max_depth = Some(max);
        self
    }

    /// Sets the selected-target ceiling.
    pub fn max_targets(mut self, max: usize) -> Self {
        self.max_targets = Some(max);
        self
    }

    /// Sets the sense-pair budget ceiling (in single-sense evaluation
    /// units — see [`ResourceLimits::max_sense_pairs`]).
    pub fn max_sense_pairs(mut self, max: u64) -> Self {
        self.max_sense_pairs = Some(max);
        self
    }

    /// The cooperative in-pipeline guard for one document: the node,
    /// target, and sense-pair budgets plus an optional deadline. Byte and
    /// depth bounds are enforced by the engine itself before this guard
    /// comes into play.
    pub(crate) fn guard(&self, deadline: Option<Deadline>) -> Guard {
        let mut guard = Guard::unlimited();
        if let Some(max) = self.max_nodes {
            guard = guard.with_max_nodes(max);
        }
        if let Some(max) = self.max_targets {
            guard = guard.with_max_targets(max);
        }
        if let Some(max) = self.max_sense_pairs {
            guard = guard.with_max_sense_pairs(max);
        }
        if let Some(deadline) = deadline {
            guard = guard.with_deadline(deadline);
        }
        guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        let limits = ResourceLimits::default();
        assert_eq!(limits, ResourceLimits::unlimited());
        assert!(limits.guard(None).is_unlimited());
    }

    #[test]
    fn builder_sets_every_field() {
        let limits = ResourceLimits::unlimited()
            .max_bytes(1)
            .max_nodes(2)
            .max_depth(3)
            .max_targets(4)
            .max_sense_pairs(5);
        assert_eq!(limits.max_bytes, Some(1));
        assert_eq!(limits.max_nodes, Some(2));
        assert_eq!(limits.max_depth, Some(3));
        assert_eq!(limits.max_targets, Some(4));
        assert_eq!(limits.max_sense_pairs, Some(5));
        let guard = limits.guard(None);
        assert!(guard.check_nodes(3).is_err());
        assert!(guard.check_targets(5).is_err());
    }

    #[test]
    fn sense_pair_budget_is_denominated_in_evaluation_units() {
        use crate::BatchEngine;
        // One document with a compound target (pairs draw two units each)
        // and one with only single-sense targets (one unit each). The
        // exact unit count comes from an unlimited traced run; the budget
        // must then be exact-to-the-unit: equal passes, one less trips.
        for doc in [
            "<films><star_picture/><cast/></films>",
            "<cd><artist/><track/></cd>",
        ] {
            let probe =
                BatchEngine::new(semnet::mini_wordnet(), xsdf::XsdfConfig::default()).tracing(true);
            let outcome = probe.process_document_observed(doc);
            assert!(outcome.result.is_ok());
            let units = outcome.span.expect("traced").sense_pairs;
            assert!(units > 0, "{doc}: no scoring work observed");

            let at_budget = BatchEngine::new(semnet::mini_wordnet(), xsdf::XsdfConfig::default())
                .limits(ResourceLimits::unlimited().max_sense_pairs(units));
            assert!(at_budget.process_document(doc).is_ok(), "{doc}: at budget");

            let under = BatchEngine::new(semnet::mini_wordnet(), xsdf::XsdfConfig::default())
                .limits(ResourceLimits::unlimited().max_sense_pairs(units - 1));
            let err = under.process_document(doc).unwrap_err();
            assert_eq!(err.kind(), "limit", "{doc}: one unit under must trip");
        }
    }
}
