//! Per-document trace spans: what happened to each document of a batch,
//! when, on which worker, and why it was slow.
//!
//! The aggregate [`crate::MetricsSnapshot`] answers "how did the batch
//! do"; a [`Trace`] answers "which document burned the budget". Each
//! worker records one [`DocSpan`] per document it attempts — stage start
//! offsets and durations against the shared batch epoch, byte/node/target
//! counts, this document's exact cache hit/miss delta, and the outcome
//! (success or the [`crate::XsdfError`] kind) — and the engine merges the
//! per-worker streams deterministically by input index. Two exports:
//!
//! * [`Trace::to_jsonl`] — one JSON object per document, in input order,
//!   for ad-hoc `jq`/pandas analysis;
//! * [`Trace::to_chrome_trace`] — the Chrome trace-event format, loadable
//!   in Perfetto or `chrome://tracing`, one track per worker with nested
//!   per-stage slices.
//!
//! Timestamps are wall-clock offsets, so they vary run to run; the
//! determinism guarantee is structural: same batch, same thread count →
//! same spans in the same order with the same per-document counters
//! (only `start`/`duration` fields differ).

use std::time::Duration;

/// One pipeline stage's slice of a document span: when it started
/// (relative to the batch epoch) and how long it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpan {
    /// Start offset from the batch epoch.
    pub start: Duration,
    /// Stage duration.
    pub duration: Duration,
}

/// The names of the four pipeline stages, in execution order.
pub const STAGE_NAMES: [&str; 4] = ["parse", "preprocess", "select", "disambiguate"];

/// Everything the runtime observed about one document of a batch.
///
/// A stage slice is `None` when the stage never ran (an earlier stage
/// failed, or a panic cut the document short mid-stage).
#[derive(Debug, Clone, PartialEq)]
pub struct DocSpan {
    /// Input index of the document in the batch.
    pub doc: usize,
    /// Worker (track) that processed it, `0 .. threads`.
    pub worker: usize,
    /// Start offset of the document from the batch epoch.
    pub start: Duration,
    /// End offset of the document from the batch epoch.
    pub end: Duration,
    /// Raw XML size in bytes.
    pub bytes: usize,
    /// `"ok"` or the [`crate::XsdfError::kind`] tag.
    pub outcome: &'static str,
    /// Human-readable error for failed documents.
    pub error: Option<String>,
    /// Tree nodes (0 until the preprocess stage completes).
    pub nodes: usize,
    /// Selected disambiguation targets.
    pub targets: usize,
    /// Targets that received a sense.
    pub assigned: usize,
    /// Sense pairs scored for this document (the guard's tick count).
    pub sense_pairs: u64,
    /// Similarity-cache lookups by this document that hit.
    pub cache_hits: u64,
    /// Similarity-cache lookups by this document that missed.
    pub cache_misses: u64,
    /// Per-stage slices, in [`STAGE_NAMES`] order.
    pub stages: [Option<StageSpan>; 4],
    /// The concepts this document missed the cache for most often, as
    /// `(concept key, miss count)` — the "what would warming help" signal
    /// for slow-document reports. Sorted by count descending, key
    /// ascending; at most [`TOP_MISS_CONCEPTS`] entries.
    pub top_miss_concepts: Vec<(String, u64)>,
}

/// How many of a document's most-missed concepts a span retains.
pub const TOP_MISS_CONCEPTS: usize = 5;

impl DocSpan {
    /// End-to-end duration of the document (all stages plus the
    /// per-document bookkeeping between them).
    pub fn duration(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }

    /// The stage slices that actually ran, with their names.
    pub fn stages(&self) -> impl Iterator<Item = (&'static str, StageSpan)> + '_ {
        STAGE_NAMES
            .iter()
            .zip(&self.stages)
            .filter_map(|(&name, span)| span.map(|s| (name, s)))
    }

    /// This span as one JSON object (a single JSON Lines record).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_field(&mut out, "doc", &self.doc.to_string());
        push_field(&mut out, "worker", &self.worker.to_string());
        push_field(&mut out, "start_us", &json_f64(us(self.start)));
        push_field(&mut out, "duration_us", &json_f64(us(self.duration())));
        push_field(&mut out, "bytes", &self.bytes.to_string());
        push_field(&mut out, "outcome", &json_string(self.outcome));
        if let Some(error) = &self.error {
            push_field(&mut out, "error", &json_string(error));
        }
        push_field(&mut out, "nodes", &self.nodes.to_string());
        push_field(&mut out, "targets", &self.targets.to_string());
        push_field(&mut out, "assigned", &self.assigned.to_string());
        push_field(&mut out, "sense_pairs", &self.sense_pairs.to_string());
        push_field(&mut out, "cache_hits", &self.cache_hits.to_string());
        push_field(&mut out, "cache_misses", &self.cache_misses.to_string());
        for (name, stage) in self.stages() {
            push_field(
                &mut out,
                &format!("{name}_start_us"),
                &json_f64(us(stage.start)),
            );
            push_field(
                &mut out,
                &format!("{name}_us"),
                &json_f64(us(stage.duration)),
            );
        }
        if !self.top_miss_concepts.is_empty() {
            let items: Vec<String> = self
                .top_miss_concepts
                .iter()
                .map(|(key, n)| format!("[{},{n}]", json_string(key)))
                .collect();
            push_field(
                &mut out,
                "top_miss_concepts",
                &format!("[{}]", items.join(",")),
            );
        }
        out.push('}');
        out
    }
}

/// The merged span stream of one batch run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// One span per attempted document, sorted by input index. Documents
    /// cancelled before being scheduled (fail-fast) have no span.
    pub spans: Vec<DocSpan>,
    /// Worker count of the run (the number of Chrome trace tracks).
    pub threads: usize,
}

impl Trace {
    /// The span stream as JSON Lines: one object per document, in input
    /// order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&span.to_json());
            out.push('\n');
        }
        out
    }

    /// The span stream in Chrome trace-event format (the JSON Object
    /// Format: `{"traceEvents": [...]}`), loadable in Perfetto or
    /// `chrome://tracing`. One track (`tid`) per worker; each document
    /// contributes one enclosing `doc` slice plus one nested slice per
    /// completed stage. Timestamps are microsecond offsets from the batch
    /// epoch.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for worker in 0..self.threads.max(1) {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{worker},\
                 \"args\":{{\"name\":\"worker-{worker}\"}}}}"
            ));
        }
        for span in &self.spans {
            let mut args = format!(
                "{{\"doc\":{},\"outcome\":{},\"bytes\":{},\"nodes\":{},\"targets\":{},\
                 \"assigned\":{},\"sense_pairs\":{},\"cache_hits\":{},\"cache_misses\":{}}}",
                span.doc,
                json_string(span.outcome),
                span.bytes,
                span.nodes,
                span.targets,
                span.assigned,
                span.sense_pairs,
                span.cache_hits,
                span.cache_misses,
            );
            events.push(chrome_event(
                &format!("doc {} ({})", span.doc, span.outcome),
                span.worker,
                span.start,
                span.duration(),
                &args,
            ));
            args = format!("{{\"doc\":{}}}", span.doc);
            for (name, stage) in span.stages() {
                events.push(chrome_event(
                    name,
                    span.worker,
                    stage.start,
                    stage.duration,
                    &args,
                ));
            }
        }
        format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
    }

    /// Spans whose end-to-end duration is at least `threshold`, slowest
    /// first (ties broken by input index, so the order is deterministic
    /// for identical timings).
    pub fn slow_docs(&self, threshold: Duration) -> Vec<&DocSpan> {
        let mut slow: Vec<&DocSpan> = self
            .spans
            .iter()
            .filter(|s| s.duration() >= threshold)
            .collect();
        slow.sort_by(|a, b| b.duration().cmp(&a.duration()).then(a.doc.cmp(&b.doc)));
        slow
    }
}

/// One complete ("X") trace event.
fn chrome_event(name: &str, tid: usize, start: Duration, duration: Duration, args: &str) -> String {
    format!(
        "{{\"name\":{},\"cat\":\"xsdf\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\
         \"ts\":{},\"dur\":{},\"args\":{args}}}",
        json_string(name),
        json_f64(us(start)),
        json_f64(us(duration)),
    )
}

fn push_field(out: &mut String, key: &str, value: &str) {
    if !out.ends_with('{') {
        out.push(',');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// JSON-safe float rendering (mirrors `metrics::json_f64`).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// A JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span(doc: usize, total_us: u64) -> DocSpan {
        let start = Duration::from_micros(10 * doc as u64);
        DocSpan {
            doc,
            worker: doc % 2,
            start,
            end: start + Duration::from_micros(total_us),
            bytes: 128,
            outcome: "ok",
            error: None,
            nodes: 9,
            targets: 4,
            assigned: 3,
            sense_pairs: 17,
            cache_hits: 5,
            cache_misses: 2,
            stages: [
                Some(StageSpan {
                    start,
                    duration: Duration::from_micros(total_us / 4),
                }),
                Some(StageSpan {
                    start: start + Duration::from_micros(total_us / 4),
                    duration: Duration::from_micros(total_us / 4),
                }),
                None,
                Some(StageSpan {
                    start: start + Duration::from_micros(total_us / 2),
                    duration: Duration::from_micros(total_us / 2),
                }),
            ],
            top_miss_concepts: vec![("cast.actors".into(), 4), ("star.performer".into(), 2)],
        }
    }

    #[test]
    fn jsonl_has_one_line_per_span_with_stage_fields() {
        let trace = Trace {
            spans: vec![sample_span(0, 100), sample_span(1, 200)],
            threads: 2,
        };
        let jsonl = trace.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"parse_us\":"));
            assert!(line.contains("\"disambiguate_us\":"));
            assert!(
                !line.contains("\"select_us\":"),
                "skipped stage must be absent"
            );
            assert!(
                line.contains("\"top_miss_concepts\":[[\"cast.actors\",4],[\"star.performer\",2]]")
            );
        }
        assert!(lines[0].contains("\"doc\":0"));
        assert!(lines[1].contains("\"doc\":1"));
    }

    #[test]
    fn chrome_trace_has_worker_tracks_and_nested_slices() {
        let trace = Trace {
            spans: vec![sample_span(0, 100)],
            threads: 2,
        };
        let chrome = trace.to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"name\":\"worker-0\""));
        assert!(chrome.contains("\"name\":\"worker-1\""));
        assert!(chrome.contains("\"name\":\"doc 0 (ok)\""));
        assert!(chrome.contains("\"name\":\"parse\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        // 2 metadata + 1 doc + 3 completed stages.
        assert_eq!(chrome.matches("\"ph\":").count(), 6);
    }

    #[test]
    fn slow_docs_filters_and_sorts_slowest_first() {
        let trace = Trace {
            spans: vec![sample_span(0, 50), sample_span(1, 500), sample_span(2, 200)],
            threads: 1,
        };
        let slow = trace.slow_docs(Duration::from_micros(100));
        let docs: Vec<usize> = slow.iter().map(|s| s.doc).collect();
        assert_eq!(docs, [1, 2]);
        assert!(trace.slow_docs(Duration::ZERO).len() == 3);
    }

    #[test]
    fn error_spans_escape_cleanly() {
        let mut span = sample_span(0, 10);
        span.outcome = "panic";
        span.error = Some("payload with \"quotes\" and\nnewline".into());
        let json = span.to_json();
        assert!(json.contains("\"error\":\"payload with \\\"quotes\\\" and\\nnewline\""));
    }
}
