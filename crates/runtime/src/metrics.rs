//! Runtime metrics: per-stage wall-clock timings, throughput, and cache
//! accounting for a batch run.
//!
//! The snapshot is a plain struct so callers can assert on it in tests; the
//! JSON rendering is hand-rolled (this crate is std-only) and stable:
//! key order matches the field order documented on [`MetricsSnapshot`].

use std::time::Duration;

use crate::error::XsdfError;
use crate::hist::Histogram;

/// Per-kind failure tally for one batch run, mirroring the
/// [`XsdfError`] taxonomy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureCounts {
    /// Documents that were not well-formed XML.
    pub parse: usize,
    /// Documents that exceeded a resource limit.
    pub limit: usize,
    /// Documents that ran past their deadline.
    pub deadline: usize,
    /// Documents whose processing panicked (caught at the document
    /// boundary).
    pub panic: usize,
    /// Documents skipped because a fail-fast batch was cancelled first.
    pub cancelled: usize,
}

impl FailureCounts {
    /// Total failed documents across all kinds.
    pub fn total(&self) -> usize {
        self.parse + self.limit + self.deadline + self.panic + self.cancelled
    }

    /// Tallies one failure under its kind.
    pub fn record(&mut self, err: &XsdfError) {
        match err {
            XsdfError::Parse(_) => self.parse += 1,
            XsdfError::LimitExceeded { .. } => self.limit += 1,
            XsdfError::DeadlineExceeded { .. } => self.deadline += 1,
            XsdfError::Panicked { .. } => self.panic += 1,
            XsdfError::Cancelled => self.cancelled += 1,
        }
    }

    /// Element-wise sum of another tally into this one.
    pub fn merge(&mut self, other: &FailureCounts) {
        self.parse += other.parse;
        self.limit += other.limit;
        self.deadline += other.deadline;
        self.panic += other.panic;
        self.cancelled += other.cancelled;
    }
}

/// Cumulative time spent in each pipeline stage, summed across workers.
///
/// Sums are of per-document CPU time, so with `N` busy workers the stage
/// totals can legitimately exceed [`MetricsSnapshot::wall_clock`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// XML parsing (`xmltree::parse`).
    pub parse: Duration,
    /// Tree building + linguistic pre-processing.
    pub preprocess: Duration,
    /// Target selection (ambiguity degrees + threshold).
    pub select: Duration,
    /// Candidate scoring + sense assignment.
    pub disambiguate: Duration,
}

impl StageTimings {
    /// Sum of all stage times.
    pub fn total(&self) -> Duration {
        self.parse + self.preprocess + self.select + self.disambiguate
    }

    /// Element-wise sum of another timing set into this one.
    pub fn merge(&mut self, other: &StageTimings) {
        self.parse += other.parse;
        self.preprocess += other.preprocess;
        self.select += other.select;
        self.disambiguate += other.disambiguate;
    }
}

/// Per-document latency distributions, one histogram per pipeline stage
/// plus the end-to-end (`doc`) distribution.
///
/// Where [`StageTimings`] sums stage time across the batch, these record
/// each document's *individual* stage durations, so tail latency (p99, a
/// single pathological document) is visible instead of averaged away.
/// Failed documents contribute to the stages they completed and to `doc`;
/// stages they never reached record nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageLatency {
    /// Per-document XML parsing latency.
    pub parse: Histogram,
    /// Per-document tree building + linguistic pre-processing latency.
    pub preprocess: Histogram,
    /// Per-document target-selection latency.
    pub select: Histogram,
    /// Per-document scoring + sense-assignment latency.
    pub disambiguate: Histogram,
    /// Per-document end-to-end latency (pickup to completion).
    pub doc: Histogram,
}

impl StageLatency {
    /// The five distributions with their JSON/report names.
    pub fn groups(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("parse", &self.parse),
            ("preprocess", &self.preprocess),
            ("select", &self.select),
            ("disambiguate", &self.disambiguate),
            ("doc", &self.doc),
        ]
    }

    /// Element-wise merge of every distribution in `other` into this one.
    pub fn merge(&mut self, other: &StageLatency) {
        self.parse.merge(&other.parse);
        self.preprocess.merge(&other.preprocess);
        self.select.merge(&other.select);
        self.disambiguate.merge(&other.disambiguate);
        self.doc.merge(&other.doc);
    }
}

/// A point-in-time view of one batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Worker threads used.
    pub threads: usize,
    /// Documents submitted.
    pub documents: usize,
    /// Documents that failed for any reason (the sum of
    /// [`MetricsSnapshot::failures`]).
    pub failed_documents: usize,
    /// Failed documents broken down by [`XsdfError`] kind.
    pub failures: FailureCounts,
    /// Tree nodes across successfully processed documents.
    pub nodes: usize,
    /// Nodes selected as disambiguation targets.
    pub targets: usize,
    /// Targets that received a sense.
    pub assigned: usize,
    /// Per-stage timings (summed across workers).
    pub stages: StageTimings,
    /// Per-document latency distributions (per stage and end-to-end),
    /// merged across workers.
    pub latency: StageLatency,
    /// End-to-end elapsed time of the batch.
    pub wall_clock: Duration,
    /// Similarity-cache lookups that hit.
    pub cache_hits: u64,
    /// Similarity-cache lookups that missed.
    pub cache_misses: u64,
    /// Distinct concept pairs cached at the end of the run.
    pub cache_entries: usize,
    /// Entries evicted from the shared cache over its lifetime (0 when
    /// the cache is unbounded and never trimmed).
    pub cache_evictions: u64,
    /// Accounted bytes currently held by the shared cache (both tables).
    pub cache_bytes: u64,
    /// Lifetime high watermark of `cache_bytes`.
    pub cache_bytes_peak: u64,
    /// Concept pairs that went through the extended-gloss-overlap kernel
    /// (cache misses only; hits never rescore).
    pub gloss_pairs_scored: u64,
    /// Concept context vectors built from scratch (vector-table misses).
    pub vectors_built: u64,
    /// Concept context vectors served from the shared vector table.
    pub vectors_reused: u64,
    /// Distinct concept context vectors cached at the end of the run.
    pub vector_entries: usize,
    /// Candidate senses (or compound sense pairs) skipped by pruning —
    /// density-screened, abandoned mid-scoring by the exact bound, or
    /// skipped by a loop early exit (`xsdf::prune`). 0 when pruning is
    /// off.
    pub candidates_pruned: u64,
    /// Scoring loops stopped early because the leader was mathematically
    /// uncatchable (`xsdf::prune` level (a)). 0 when pruning is off.
    pub early_exits: u64,
}

impl MetricsSnapshot {
    /// Merges another run's snapshot into this one — the aggregation the
    /// sharded batch driver performs over its worker processes' reports.
    ///
    /// All counters sum; stage timings, failure tallies, and latency
    /// histograms merge element-wise (the same commutative, associative
    /// merge the in-process executor uses across worker threads, so the
    /// result is independent of shard count and arrival order). Two
    /// fields are not sums: `threads` takes the maximum (shards run
    /// concurrently, each with its own pool), and `wall_clock` takes the
    /// maximum (concurrent shards overlap; a caller measuring the true
    /// end-to-end elapsed time should overwrite it afterwards). The
    /// cache gauges (`cache_entries`, `cache_bytes`, `cache_bytes_peak`,
    /// `vector_entries`) sum because each process owns a disjoint cache.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.threads = self.threads.max(other.threads);
        self.documents += other.documents;
        self.failed_documents += other.failed_documents;
        self.failures.merge(&other.failures);
        self.nodes += other.nodes;
        self.targets += other.targets;
        self.assigned += other.assigned;
        self.stages.merge(&other.stages);
        self.latency.merge(&other.latency);
        self.wall_clock = self.wall_clock.max(other.wall_clock);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_entries += other.cache_entries;
        self.cache_evictions += other.cache_evictions;
        self.cache_bytes += other.cache_bytes;
        self.cache_bytes_peak += other.cache_bytes_peak;
        self.gloss_pairs_scored += other.gloss_pairs_scored;
        self.vectors_built += other.vectors_built;
        self.vectors_reused += other.vectors_reused;
        self.vector_entries += other.vector_entries;
        self.candidates_pruned += other.candidates_pruned;
        self.early_exits += other.early_exits;
    }

    /// *Successful* documents processed per wall-clock second — failed
    /// documents are excluded from the numerator. The subtraction
    /// saturates: `MetricsSnapshot` is a plain public struct, so an
    /// externally constructed (or future merge-path) snapshot with
    /// `failed_documents > documents` reports `0.0` instead of panicking
    /// in debug builds or emitting a garbage rate in release.
    pub fn docs_per_sec(&self) -> f64 {
        per_second(
            self.documents.saturating_sub(self.failed_documents),
            self.wall_clock,
        )
    }

    /// Tree nodes processed per wall-clock second. Like
    /// [`MetricsSnapshot::docs_per_sec`], this counts successes only:
    /// [`MetricsSnapshot::nodes`] accumulates over successfully processed
    /// documents.
    pub fn nodes_per_sec(&self) -> f64 {
        per_second(self.nodes, self.wall_clock)
    }

    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The snapshot as a pretty-printed JSON object.
    ///
    /// Durations are reported in (fractional) milliseconds under `_ms`
    /// keys; derived rates are included so downstream dashboards need no
    /// arithmetic.
    pub fn to_json(&self) -> String {
        self.to_json_extended(&[])
    }

    /// The snapshot as JSON with caller-supplied fields appended after the
    /// snapshot's own — how a resident service extends the engine metrics
    /// with its serving-layer counters (uptime, queue depth, per-endpoint
    /// latency) while keeping one flat, dashboard-friendly object. Each
    /// `extra` entry is a `(key, rendered JSON value)` pair; keys should
    /// not collide with the snapshot's documented keys.
    pub fn to_json_extended(&self, extra: &[(String, String)]) -> String {
        let mut out = String::from("{\n");
        let mut fields: Vec<(String, String)> = Vec::new();
        let mut field = |key: &str, value: String| fields.push((key.to_string(), value));
        for (key, value) in [
            ("threads", self.threads.to_string()),
            ("documents", self.documents.to_string()),
            ("failed_documents", self.failed_documents.to_string()),
            ("failed_parse", self.failures.parse.to_string()),
            ("failed_limit", self.failures.limit.to_string()),
            ("failed_deadline", self.failures.deadline.to_string()),
            ("failed_panic", self.failures.panic.to_string()),
            ("failed_cancelled", self.failures.cancelled.to_string()),
            ("nodes", self.nodes.to_string()),
            ("targets", self.targets.to_string()),
            ("assigned", self.assigned.to_string()),
            ("parse_ms", json_f64(ms(self.stages.parse))),
            ("preprocess_ms", json_f64(ms(self.stages.preprocess))),
            ("select_ms", json_f64(ms(self.stages.select))),
            ("disambiguate_ms", json_f64(ms(self.stages.disambiguate))),
            ("wall_clock_ms", json_f64(ms(self.wall_clock))),
            ("docs_per_sec", json_f64(self.docs_per_sec())),
            ("nodes_per_sec", json_f64(self.nodes_per_sec())),
            ("cache_hits", self.cache_hits.to_string()),
            ("cache_misses", self.cache_misses.to_string()),
            ("cache_hit_rate", json_f64(self.cache_hit_rate())),
            ("cache_entries", self.cache_entries.to_string()),
            ("cache_evictions", self.cache_evictions.to_string()),
            ("cache_bytes", self.cache_bytes.to_string()),
            ("cache_bytes_peak", self.cache_bytes_peak.to_string()),
            ("gloss_pairs_scored", self.gloss_pairs_scored.to_string()),
            ("vectors_built", self.vectors_built.to_string()),
            ("vectors_reused", self.vectors_reused.to_string()),
            ("vector_entries", self.vector_entries.to_string()),
            ("candidates_pruned", self.candidates_pruned.to_string()),
            ("early_exits", self.early_exits.to_string()),
        ] {
            field(key, value);
        }
        // Per-document latency percentiles, per stage and end-to-end.
        for (name, hist) in self.latency.groups() {
            field(&format!("{name}_p50_ms"), json_f64(ms(hist.p50())));
            field(&format!("{name}_p90_ms"), json_f64(ms(hist.p90())));
            field(&format!("{name}_p99_ms"), json_f64(ms(hist.p99())));
            field(&format!("{name}_max_ms"), json_f64(ms(hist.max())));
        }
        fields.extend(extra.iter().cloned());
        for (i, (key, value)) in fields.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(key);
            out.push_str("\": ");
            out.push_str(value);
            if i + 1 < fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn per_second(count: usize, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        count as f64 / secs
    }
}

/// JSON-safe float rendering: finite values keep a decimal marker, the
/// rest degrade to `null` (mirrors serde_json).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            threads: 4,
            documents: 10,
            failed_documents: 1,
            failures: FailureCounts {
                parse: 1,
                ..FailureCounts::default()
            },
            nodes: 900,
            targets: 300,
            assigned: 250,
            stages: StageTimings {
                parse: Duration::from_millis(5),
                preprocess: Duration::from_millis(10),
                select: Duration::from_millis(15),
                disambiguate: Duration::from_millis(70),
            },
            latency: {
                let mut latency = StageLatency::default();
                for doc_ms in [1u64, 2, 3, 4, 30] {
                    latency.doc.record(Duration::from_millis(doc_ms));
                    latency.parse.record(Duration::from_micros(doc_ms * 10));
                }
                latency
            },
            wall_clock: Duration::from_millis(30),
            cache_hits: 75,
            cache_misses: 25,
            cache_entries: 25,
            cache_evictions: 3,
            cache_bytes: 4096,
            cache_bytes_peak: 8192,
            gloss_pairs_scored: 25,
            vectors_built: 12,
            vectors_reused: 48,
            vector_entries: 12,
            candidates_pruned: 7,
            early_exits: 2,
        }
    }

    #[test]
    fn derived_rates() {
        let m = sample();
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!((m.docs_per_sec() - 300.0).abs() < 1e-9);
        assert!((m.nodes_per_sec() - 30000.0).abs() < 1e-9);
        assert_eq!(m.stages.total(), Duration::from_millis(100));
    }

    #[test]
    fn zero_division_is_quiet() {
        let m = MetricsSnapshot {
            wall_clock: Duration::ZERO,
            cache_hits: 0,
            cache_misses: 0,
            ..sample()
        };
        assert_eq!(m.docs_per_sec(), 0.0);
        assert_eq!(m.cache_hit_rate(), 0.0);
    }

    #[test]
    fn json_has_all_keys() {
        let json = sample().to_json();
        for key in [
            "threads",
            "documents",
            "failed_documents",
            "failed_parse",
            "failed_limit",
            "failed_deadline",
            "failed_panic",
            "failed_cancelled",
            "nodes",
            "targets",
            "assigned",
            "parse_ms",
            "preprocess_ms",
            "select_ms",
            "disambiguate_ms",
            "wall_clock_ms",
            "docs_per_sec",
            "nodes_per_sec",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
            "cache_entries",
            "cache_evictions",
            "cache_bytes",
            "cache_bytes_peak",
            "gloss_pairs_scored",
            "vectors_built",
            "vectors_reused",
            "vector_entries",
            "candidates_pruned",
            "early_exits",
        ] {
            assert!(
                json.contains(&format!("\"{key}\":")),
                "missing {key} in {json}"
            );
        }
        // Latency percentile keys: every stage and the end-to-end group.
        for group in ["parse", "preprocess", "select", "disambiguate", "doc"] {
            for stat in ["p50", "p90", "p99", "max"] {
                let key = format!("\"{group}_{stat}_ms\":");
                assert!(json.contains(&key), "missing {key} in {json}");
            }
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache_hit_rate\": 0.75"));
        assert!(json.contains("\"failed_parse\": 1"));
        // The doc histogram's exact max surfaces unapproximated.
        assert!(json.contains("\"doc_max_ms\": 30.0"), "{json}");
    }

    #[test]
    fn docs_per_sec_saturates_on_inconsistent_counts() {
        // `MetricsSnapshot` is a plain public struct: nothing stops an
        // external caller (or a future merge path) from building one with
        // more failures than documents. The rate must degrade to 0, not
        // panic in debug or report a huge garbage value in release.
        let m = MetricsSnapshot {
            documents: 2,
            failed_documents: 5,
            ..sample()
        };
        assert_eq!(m.docs_per_sec(), 0.0);
    }

    #[test]
    fn snapshot_merge_sums_counters_and_maxes_wall_clock() {
        let mut a = sample();
        let b = MetricsSnapshot {
            threads: 2,
            documents: 7,
            failed_documents: 2,
            failures: FailureCounts {
                parse: 1,
                limit: 1,
                ..FailureCounts::default()
            },
            wall_clock: Duration::from_millis(50),
            ..sample()
        };
        let a0 = a.clone();
        a.merge(&b);
        assert_eq!(a.documents, a0.documents + 7);
        assert_eq!(a.failed_documents, a0.failed_documents + 2);
        assert_eq!(a.failures.total(), a.failed_documents);
        assert_eq!(a.nodes, a0.nodes * 2);
        assert_eq!(a.threads, 4, "threads is a max, not a sum");
        assert_eq!(
            a.wall_clock,
            Duration::from_millis(50),
            "wall clock is a max"
        );
        assert_eq!(a.stages.parse, a0.stages.parse * 2);
        assert_eq!(a.latency.doc.count(), a0.latency.doc.count() * 2);
        assert_eq!(a.cache_bytes, a0.cache_bytes * 2);

        // Merge order does not matter (commutativity at the field level).
        let mut ba = b.clone();
        ba.merge(&a0);
        assert_eq!(ba, a);
    }

    #[test]
    fn failure_counts_tally_by_kind() {
        let mut counts = FailureCounts::default();
        counts.record(&XsdfError::Cancelled);
        counts.record(&XsdfError::Panicked {
            message: "boom".into(),
        });
        counts.record(&XsdfError::Panicked {
            message: "boom again".into(),
        });
        assert_eq!(counts.panic, 2);
        assert_eq!(counts.cancelled, 1);
        assert_eq!(counts.total(), 3);
        let mut merged = FailureCounts {
            parse: 1,
            ..FailureCounts::default()
        };
        merged.merge(&counts);
        assert_eq!(merged.total(), 4);
    }
}
