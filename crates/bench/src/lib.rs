//! placeholder
