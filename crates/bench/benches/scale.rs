//! Streaming scale-out benchmark: pushes progressively larger slices of
//! the seeded document stream through the `xsdf-runtime` batch engine
//! and reports throughput, tail latency, and memory at each size.
//!
//! The corpus never exists as a list: documents are generated lazily
//! from `(seed, position)` via [`corpus::stream::document_at`] and fed
//! to the engine in fixed-size chunks, so a 10⁵-document run holds one
//! chunk of XML at a time — the point of the measurement is that the
//! memory column stays flat while the document column grows 100×.
//!
//! Like the other plain harnesses here (`harness = false` + custom
//! `main`), it emits a machine-readable `BENCH_scale.json` at the
//! workspace root. CI runs it in quick mode (`XSDF_BENCH_QUICK=1`, tiny
//! sizes) as a smoke test that the harness runs and the JSON schema
//! holds; the committed numbers come from a full run.

use runtime::{BatchEngine, MetricsSnapshot};
use std::hint::black_box;
use std::time::Instant;
use xsdf::XsdfConfig;

/// Documents per generate-serialize-run chunk. Bounds resident XML to
/// one chunk regardless of the total corpus size.
const CHUNK_DOCS: usize = 256;

/// The stream seed: distinct from the soak harness's seed so the two
/// workloads stay independently reproducible.
const SCALE_STREAM_SEED: u64 = 0x5CA1E;

struct SizeResult {
    documents: usize,
    elapsed_s: f64,
    docs_per_sec: f64,
    nodes_per_sec: f64,
    doc_p50_ms: f64,
    doc_p99_ms: f64,
    rss_bytes: u64,
    peak_rss_bytes: u64,
}

/// Runs `documents` stream positions through one warm engine in
/// `CHUNK_DOCS`-document chunks, merging per-chunk metrics exactly the
/// way the sharded driver merges per-process reports.
fn run_size(engine: &BatchEngine, sn: &semnet::SemanticNetwork, documents: usize) -> SizeResult {
    let started = Instant::now();
    let mut merged: Option<MetricsSnapshot> = None;
    let mut pos = 0u64;
    while (pos as usize) < documents {
        let take = CHUNK_DOCS.min(documents - pos as usize);
        let chunk: Vec<String> = (0..take)
            .map(|i| {
                let doc = corpus::stream::document_at(sn, SCALE_STREAM_SEED, pos + i as u64);
                xmltree::serialize::to_string_compact(&doc.doc)
            })
            .collect();
        let refs: Vec<&str> = chunk.iter().map(String::as_str).collect();
        let report = engine.run(&refs);
        assert_eq!(
            report.metrics.failed_documents, 0,
            "generated documents must all process"
        );
        black_box(&report.results);
        match &mut merged {
            None => merged = Some(report.metrics),
            Some(m) => m.merge(&report.metrics),
        }
        pos += take as u64;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let metrics = merged.expect("at least one chunk ran");
    let doc_hist = &metrics.latency.doc;
    SizeResult {
        documents,
        elapsed_s,
        docs_per_sec: documents as f64 / elapsed_s,
        nodes_per_sec: metrics.nodes as f64 / elapsed_s,
        doc_p50_ms: doc_hist.p50().as_secs_f64() * 1e3,
        doc_p99_ms: doc_hist.p99().as_secs_f64() * 1e3,
        rss_bytes: server::bench::rss_self_bytes().unwrap_or(0),
        peak_rss_bytes: server::bench::rss_peak_bytes().unwrap_or(0),
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let quick = std::env::var_os("XSDF_BENCH_QUICK").is_some();
    let sizes: &[usize] = if quick {
        &[50, 100, 200]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let sn = semnet::mini_wordnet();
    let engine = BatchEngine::new(sn, XsdfConfig::default()).threads(cores);

    eprintln!(
        "scale_streaming_batch: sizes {sizes:?}, {cores} threads, chunk {CHUNK_DOCS}, {} mode",
        if quick { "quick" } else { "full" }
    );

    let mut results: Vec<SizeResult> = Vec::new();
    for &documents in sizes {
        let r = run_size(&engine, sn, documents);
        eprintln!(
            "  {documents:>7} docs: {:8.1} docs/s, {:9.0} nodes/s, p50 {:6.3} ms, \
             p99 {:6.3} ms, rss {:5.1} MB (peak {:5.1} MB), {:7.1} s",
            r.docs_per_sec,
            r.nodes_per_sec,
            r.doc_p50_ms,
            r.doc_p99_ms,
            r.rss_bytes as f64 / 1e6,
            r.peak_rss_bytes as f64 / 1e6,
            r.elapsed_s
        );
        results.push(r);
    }

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"scale_streaming_batch\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str(&format!("  \"threads\": {cores},\n"));
    out.push_str(&format!("  \"chunk_docs\": {CHUNK_DOCS},\n"));
    out.push_str(&format!("  \"seed\": {SCALE_STREAM_SEED},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"documents\": {}, \"elapsed_s\": {}, \"docs_per_sec\": {}, \
             \"nodes_per_sec\": {}, \"doc_p50_ms\": {}, \"doc_p99_ms\": {}, \
             \"rss_mb\": {}, \"peak_rss_mb\": {}}}{}\n",
            r.documents,
            json_f64(r.elapsed_s),
            json_f64(r.docs_per_sec),
            json_f64(r.nodes_per_sec),
            json_f64(r.doc_p50_ms),
            json_f64(r.doc_p99_ms),
            json_f64(r.rss_bytes as f64 / 1e6),
            json_f64(r.peak_rss_bytes as f64 / 1e6),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = std::env::var("XSDF_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_scale.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, &out).expect("write BENCH_scale.json");
    eprintln!("wrote {path}");
    print!("{out}");
}
