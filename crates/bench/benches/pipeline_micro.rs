//! Micro-benchmarks of the pipeline stages: parsing, tree construction,
//! ambiguity scoring, sphere/vector construction, the three similarity
//! measures, and end-to-end disambiguation of single documents.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xmltree::tree::TreeBuilder;
use xsdf::{LingTokenizer, Xsdf, XsdfConfig};

const FIG1: &str = r#"<films><picture title="Rear Window"><director>Hitchcock</director><year>1954</year><genre>mystery</genre><cast><star>Stewart</star><star>Kelly</star></cast><plot>A wheelchair bound photographer spies on his neighbors</plot></picture></films>"#;

fn shakespeare_doc() -> String {
    let sn = semnet::mini_wordnet();
    let doc = corpus::gen::generate_document(sn, corpus::DatasetId::Shakespeare, 0, 1);
    xmltree::serialize::to_string_compact(&doc.doc)
}

fn parsing(c: &mut Criterion) {
    let big = shakespeare_doc();
    let mut group = c.benchmark_group("parse");
    group.bench_function("figure1", |b| {
        b.iter(|| black_box(xmltree::parse(FIG1).unwrap()))
    });
    group.bench_function("shakespeare", |b| {
        b.iter(|| black_box(xmltree::parse(&big).unwrap()))
    });
    group.finish();
}

fn tree_building(c: &mut Criterion) {
    let sn = semnet::mini_wordnet();
    let doc = xmltree::parse(&shakespeare_doc()).unwrap();
    c.bench_function("tree_build_with_preprocessing", |b| {
        b.iter(|| {
            black_box(
                TreeBuilder::with_tokenizer(LingTokenizer::new(sn))
                    .build(&doc)
                    .unwrap()
                    .tree,
            )
        })
    });
}

fn ambiguity_scoring(c: &mut Criterion) {
    let sn = semnet::mini_wordnet();
    let doc = xmltree::parse(&shakespeare_doc()).unwrap();
    let tree = TreeBuilder::with_tokenizer(LingTokenizer::new(sn))
        .build(&doc)
        .unwrap()
        .tree;
    c.bench_function("ambiguity_select_targets", |b| {
        b.iter(|| {
            black_box(xsdf::ambiguity::select_targets(
                sn,
                &tree,
                xsdf::AmbiguityWeights::equal(),
                xsdf::ThresholdPolicy::Auto,
            ))
        })
    });
}

fn sphere_and_vectors(c: &mut Criterion) {
    let sn = semnet::mini_wordnet();
    let doc = xmltree::parse(&shakespeare_doc()).unwrap();
    let tree = TreeBuilder::with_tokenizer(LingTokenizer::new(sn))
        .build(&doc)
        .unwrap()
        .tree;
    let center = xmltree::NodeId(tree.len() as u32 / 2);
    let mut group = c.benchmark_group("context");
    for radius in [1u32, 2, 3] {
        group.bench_function(format!("xml_vector_r{radius}"), |b| {
            b.iter(|| black_box(xsdf::sphere::xml_context_vector(&tree, center, radius)))
        });
    }
    let concept = sn.by_key("cast.actors").unwrap();
    group.bench_function("concept_vector_r2", |b| {
        b.iter(|| {
            black_box(xsdf::sphere::concept_context_vector(
                sn,
                concept,
                2,
                &semnet::graph::RelationFilter::All,
            ))
        })
    });
    group.finish();
}

fn similarity_measures(c: &mut Criterion) {
    let sn = semnet::mini_wordnet();
    let a = sn.by_key("cast.actors").unwrap();
    let b_ = sn.by_key("star.performer").unwrap();
    let mut group = c.benchmark_group("similarity");
    group.bench_function("wu_palmer", |b| {
        b.iter(|| black_box(semsim::wu_palmer(sn, a, b_)))
    });
    group.bench_function("lin", |b| b.iter(|| black_box(semsim::lin(sn, a, b_))));
    group.bench_function("gloss_overlap", |b| {
        b.iter(|| black_box(semsim::extended_gloss_overlap(sn, a, b_)))
    });
    group.bench_function("combined_cached", |b| {
        let sim = semsim::CombinedSimilarity::default();
        b.iter(|| black_box(sim.similarity(sn, a, b_)))
    });
    group.finish();
}

fn end_to_end(c: &mut Criterion) {
    let sn = semnet::mini_wordnet();
    let big = shakespeare_doc();
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    group.bench_function("figure1_default", |b| {
        let xsdf = Xsdf::new(sn, XsdfConfig::default());
        b.iter(|| black_box(xsdf.disambiguate_str(FIG1).unwrap()))
    });
    group.bench_function("shakespeare_optimal", |b| {
        let xsdf = Xsdf::new(sn, XsdfConfig::optimal_rich());
        b.iter(|| black_box(xsdf.disambiguate_str(&big).unwrap()))
    });
    group.finish();
}

fn batch_parallelism(c: &mut Criterion) {
    let sn = semnet::mini_wordnet();
    let xsdf = Xsdf::new(sn, XsdfConfig::default());
    let docs: Vec<xmltree::Document> = (0..8)
        .map(|i| {
            let d = corpus::gen::generate_document(sn, corpus::DatasetId::Imdb, i, 7);
            xmltree::parse(&xmltree::serialize::to_string_compact(&d.doc)).unwrap()
        })
        .collect();
    let trees: Vec<_> = docs.iter().map(|d| xsdf.build_tree(d)).collect();
    let refs: Vec<&xmltree::XmlTree> = trees.iter().collect();
    let mut group = c.benchmark_group("batch_parallelism");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| black_box(xsdf.disambiguate_batch(&refs, threads)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    parsing,
    tree_building,
    ambiguity_scoring,
    sphere_and_vectors,
    similarity_measures,
    end_to_end,
    batch_parallelism
);
criterion_main!(benches);
