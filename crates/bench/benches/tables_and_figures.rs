//! One Criterion benchmark per table/figure of the paper, timing the full
//! regeneration of each artifact on a reduced corpus (1 document per
//! dataset; the `exp_*` binaries regenerate the full-corpus numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use eval::experiments::{fig8, fig9, table1, table2, table3, table4};
use std::hint::black_box;

fn bench_corpus() -> (&'static semnet::SemanticNetwork, corpus::Corpus) {
    let sn = semnet::mini_wordnet();
    let corpus = corpus::Corpus::generate_small(sn, 2015, 1);
    (sn, corpus)
}

fn table1_grouping(c: &mut Criterion) {
    let (sn, corpus) = bench_corpus();
    c.bench_function("table1_grouping", |b| {
        b.iter(|| black_box(table1::run(sn, &corpus)))
    });
}

fn table2_ambiguity_correlation(c: &mut Criterion) {
    let (sn, corpus) = bench_corpus();
    let mut group = c.benchmark_group("table2_ambiguity_correlation");
    group.sample_size(10);
    group.bench_function("all_tests", |b| {
        b.iter(|| black_box(table2::run(sn, &corpus, 8)))
    });
    group.finish();
}

fn table3_corpus_stats(c: &mut Criterion) {
    let (sn, corpus) = bench_corpus();
    c.bench_function("table3_corpus_stats", |b| {
        b.iter(|| black_box(table3::run(sn, &corpus)))
    });
}

fn table4_qualitative(c: &mut Criterion) {
    c.bench_function("table4_qualitative", |b| {
        b.iter(|| black_box(table4::render()))
    });
}

fn fig8_configurations(c: &mut Criterion) {
    let (sn, corpus) = bench_corpus();
    let mut group = c.benchmark_group("fig8_configurations");
    group.sample_size(10);
    group.bench_function("full_sweep", |b| {
        b.iter(|| black_box(fig8::run(sn, &corpus, 6)))
    });
    group.finish();
}

fn fig9_comparative(c: &mut Criterion) {
    let (sn, corpus) = bench_corpus();
    let mut group = c.benchmark_group("fig9_comparative");
    group.sample_size(10);
    group.bench_function("three_methods", |b| {
        b.iter(|| black_box(fig9::run(sn, &corpus, 6)))
    });
    group.finish();
}

criterion_group!(
    benches,
    table1_grouping,
    table2_ambiguity_correlation,
    table3_corpus_stats,
    table4_qualitative,
    fig8_configurations,
    fig9_comparative
);
criterion_main!(benches);
