//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **selection** — Motivation 1's claim that disambiguating everything
//!   is "time consuming and sometimes needless": timing the pipeline with
//!   threshold 0 (all nodes) vs the automatic threshold (ambiguous nodes
//!   only).
//! * **context model** — the sphere context vs the baselines' root-path
//!   and Gaussian-decay contexts.
//! * **similarity** — the combined measure of Definition 9 vs each single
//!   measure.
//! * **radius** — the cost of growing the sphere.

use baselines::{Disambiguator, Rpd, Vsd};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xsdf::{ThresholdPolicy, Xsdf, XsdfConfig};

fn test_tree() -> (&'static semnet::SemanticNetwork, xmltree::XmlTree) {
    let sn = semnet::mini_wordnet();
    let doc = corpus::gen::generate_document(sn, corpus::DatasetId::Amazon, 0, 1);
    (sn, doc.tree)
}

fn ablation_selection(c: &mut Criterion) {
    let (sn, tree) = test_tree();
    let mut group = c.benchmark_group("ablation_selection");
    group.sample_size(20);
    group.bench_function("all_nodes_thresh0", |b| {
        let xsdf = Xsdf::new(sn, XsdfConfig::default());
        b.iter(|| black_box(xsdf.disambiguate_tree(&tree)))
    });
    group.bench_function("ambiguous_only_auto", |b| {
        let xsdf = Xsdf::new(
            sn,
            XsdfConfig {
                threshold: ThresholdPolicy::Auto,
                ..XsdfConfig::default()
            },
        );
        b.iter(|| black_box(xsdf.disambiguate_tree(&tree)))
    });
    group.finish();
}

fn ablation_context_models(c: &mut Criterion) {
    let (sn, tree) = test_tree();
    let mut group = c.benchmark_group("ablation_context_models");
    group.sample_size(20);
    group.bench_function("sphere_xsdf", |b| {
        let xsdf = Xsdf::new(sn, XsdfConfig::optimal_flat());
        b.iter(|| black_box(xsdf.disambiguate_tree(&tree)))
    });
    group.bench_function("root_path_rpd", |b| {
        let rpd = Rpd::with_content();
        b.iter(|| black_box(rpd.disambiguate(sn, &tree)))
    });
    group.bench_function("gaussian_decay_vsd", |b| {
        let vsd = Vsd::with_content();
        b.iter(|| black_box(vsd.disambiguate(sn, &tree)))
    });
    group.finish();
}

fn ablation_similarity(c: &mut Criterion) {
    let (sn, tree) = test_tree();
    let mut group = c.benchmark_group("ablation_similarity");
    group.sample_size(20);
    for (name, weights) in [
        ("edge_only", semsim::SimilarityWeights::edge_only()),
        ("node_only", semsim::SimilarityWeights::node_only()),
        ("gloss_only", semsim::SimilarityWeights::gloss_only()),
        ("combined_def9", semsim::SimilarityWeights::equal()),
    ] {
        group.bench_function(name, |b| {
            let xsdf = Xsdf::new(
                sn,
                XsdfConfig {
                    similarity: weights,
                    ..XsdfConfig::default()
                },
            );
            b.iter(|| black_box(xsdf.disambiguate_tree(&tree)))
        });
    }
    group.finish();
}

fn ablation_radius(c: &mut Criterion) {
    let (sn, tree) = test_tree();
    let mut group = c.benchmark_group("ablation_radius");
    group.sample_size(20);
    for radius in [1u32, 2, 3] {
        group.bench_function(format!("r{radius}"), |b| {
            let xsdf = Xsdf::new(
                sn,
                XsdfConfig {
                    radius,
                    ..XsdfConfig::default()
                },
            );
            b.iter(|| black_box(xsdf.disambiguate_tree(&tree)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_selection,
    ablation_context_models,
    ablation_similarity,
    ablation_radius
);
criterion_main!(benches);
