//! Serial loop vs. the `xsdf-runtime` batch engine over a corpus of
//! generated documents, reporting cold-cache and warm-cache timings
//! against the committed pre-precomputation baseline.
//!
//! Unlike the criterion benches, this is a plain harness (`harness =
//! false` + custom `main`) so it can emit a machine-readable
//! `BENCH_batch.json` at the workspace root: the `before` block is the
//! baseline measured at the commit just before the precomputed-gloss /
//! vector-cache work landed, the `after` block is re-measured on every
//! run, and `speedup_*` ratios compare the two. CI runs it in quick mode
//! (`XSDF_BENCH_QUICK=1`) as a smoke test that the harness still runs and
//! the JSON stays parseable; the committed numbers come from a full run.

use runtime::BatchEngine;
use std::hint::black_box;
use std::time::Instant;
use xsdf::{Xsdf, XsdfConfig};

/// Baseline medians (ms) measured at commit `e4b80ee` — the tree just
/// before gloss precomputation, id-based overlap, and the shared vector
/// table — on the same 32-document batch with the same harness settings.
const BEFORE_COMMIT: &str = "e4b80ee";
const BEFORE_SERIAL_MS: f64 = 1021.0;
const BEFORE_COLD_1_THREAD_MS: f64 = 338.083;
const BEFORE_WARM_MS: f64 = 15.621;

/// At least 32 documents, cycling the small generated corpus.
fn batch_xml(min_docs: usize) -> Vec<String> {
    let sn = semnet::mini_wordnet();
    let base: Vec<String> = corpus::Corpus::generate_small(sn, 11, 2)
        .documents()
        .iter()
        .map(|d| xmltree::serialize::to_string_compact(&d.doc))
        .collect();
    base.iter()
        .cycle()
        .take(min_docs.max(base.len()))
        .cloned()
        .collect()
}

/// Median wall-clock of `iters` timed runs (after `warmup` untimed ones).
fn median_ms(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let quick = std::env::var_os("XSDF_BENCH_QUICK").is_some();
    let (warmup, iters) = if quick { (0, 1) } else { (2, 7) };

    let sn = semnet::mini_wordnet();
    let sources = batch_xml(32);
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());

    eprintln!(
        "batch_32_docs: {} docs, {} cores, {} mode ({} warmup + {} timed)",
        docs.len(),
        cores,
        if quick { "quick" } else { "full" },
        warmup,
        iters
    );

    // Serial reference: one pipeline, one document at a time.
    let serial_ms = median_ms(warmup, iters, || {
        let xsdf = Xsdf::new(sn, XsdfConfig::default());
        for xml in &docs {
            black_box(xsdf.disambiguate_str(xml).unwrap());
        }
    });
    eprintln!("  serial_xsdf_loop        {serial_ms:10.3} ms");

    // Cold cache: a fresh engine (empty shared tables) every iteration.
    let cold_1_thread_ms = median_ms(warmup, iters, || {
        let engine = BatchEngine::new(sn, XsdfConfig::default()).threads(1);
        black_box(engine.run(&docs));
    });
    eprintln!("  runtime_1_thread (cold) {cold_1_thread_ms:10.3} ms");

    let cold_n_threads_ms = median_ms(warmup, iters, || {
        let engine = BatchEngine::new(sn, XsdfConfig::default()).threads(cores);
        black_box(engine.run(&docs));
    });
    eprintln!("  runtime_{cores}_threads (cold) {cold_n_threads_ms:10.3} ms");

    // Warm cache: one engine reused, shared tables populated by a first
    // untimed run.
    let warm_engine = BatchEngine::new(sn, XsdfConfig::default()).threads(cores);
    warm_engine.run(&docs);
    let warm_ms = median_ms(warmup, iters, || {
        black_box(warm_engine.run(&docs));
    });
    eprintln!("  runtime_{cores}_threads (warm) {warm_ms:10.3} ms");

    // Per-document latency distribution: one instrumented cold 1-thread
    // run, read off the engine's always-on latency histograms.
    let latency_report = BatchEngine::new(sn, XsdfConfig::default())
        .threads(1)
        .run(&docs);
    let doc_hist = &latency_report.metrics.latency.doc;
    let doc_p50_ms = doc_hist.p50().as_secs_f64() * 1e3;
    let doc_p99_ms = doc_hist.p99().as_secs_f64() * 1e3;
    eprintln!("  per-doc cold p50        {doc_p50_ms:10.3} ms");
    eprintln!("  per-doc cold p99        {doc_p99_ms:10.3} ms");

    let fields: Vec<(&str, String)> = vec![
        ("bench", "\"batch_32_docs\"".to_string()),
        (
            "mode",
            format!("\"{}\"", if quick { "quick" } else { "full" }),
        ),
        ("documents", docs.len().to_string()),
        ("threads", cores.to_string()),
        ("iters", iters.to_string()),
        ("before_commit", format!("\"{BEFORE_COMMIT}\"")),
        ("before_serial_ms", json_f64(BEFORE_SERIAL_MS)),
        ("before_cold_1_thread_ms", json_f64(BEFORE_COLD_1_THREAD_MS)),
        ("before_warm_ms", json_f64(BEFORE_WARM_MS)),
        ("after_serial_ms", json_f64(serial_ms)),
        ("after_cold_1_thread_ms", json_f64(cold_1_thread_ms)),
        ("after_cold_n_threads_ms", json_f64(cold_n_threads_ms)),
        ("after_warm_ms", json_f64(warm_ms)),
        ("doc_latency_p50_ms", json_f64(doc_p50_ms)),
        ("doc_latency_p99_ms", json_f64(doc_p99_ms)),
        ("speedup_serial", json_f64(BEFORE_SERIAL_MS / serial_ms)),
        (
            "speedup_cold_1_thread",
            json_f64(BEFORE_COLD_1_THREAD_MS / cold_1_thread_ms),
        ),
        ("speedup_warm", json_f64(BEFORE_WARM_MS / warm_ms)),
    ];
    let mut out = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str("  \"");
        out.push_str(key);
        out.push_str("\": ");
        out.push_str(value);
        if i + 1 < fields.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");

    let path = std::env::var("XSDF_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_batch.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, &out).expect("write BENCH_batch.json");
    eprintln!("wrote {path}");
    print!("{out}");
}
