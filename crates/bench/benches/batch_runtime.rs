//! Serial loop vs. the `xsdf-runtime` batch engine over a corpus of
//! generated documents: whole-document parallel speedup and the effect of
//! the shared similarity cache.

use criterion::{criterion_group, criterion_main, Criterion};
use runtime::BatchEngine;
use std::hint::black_box;
use xsdf::{Xsdf, XsdfConfig};

/// At least 32 documents, cycling the small generated corpus.
fn batch_xml(min_docs: usize) -> Vec<String> {
    let sn = semnet::mini_wordnet();
    let base: Vec<String> = corpus::Corpus::generate_small(sn, 11, 2)
        .documents()
        .iter()
        .map(|d| xmltree::serialize::to_string_compact(&d.doc))
        .collect();
    base.iter()
        .cycle()
        .take(min_docs.max(base.len()))
        .cloned()
        .collect()
}

fn serial_vs_batch(c: &mut Criterion) {
    let sn = semnet::mini_wordnet();
    let sources = batch_xml(32);
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());

    let mut group = c.benchmark_group("batch_32_docs");
    group.sample_size(10);
    group.bench_function("serial_xsdf_loop", |b| {
        let xsdf = Xsdf::new(sn, XsdfConfig::default());
        b.iter(|| {
            for xml in &docs {
                black_box(xsdf.disambiguate_str(xml).unwrap());
            }
        })
    });
    group.bench_function("runtime_1_thread", |b| {
        b.iter(|| {
            let engine = BatchEngine::new(sn, XsdfConfig::default()).threads(1);
            black_box(engine.run(&docs))
        })
    });
    group.bench_function(format!("runtime_{cores}_threads"), |b| {
        b.iter(|| {
            let engine = BatchEngine::new(sn, XsdfConfig::default()).threads(cores);
            black_box(engine.run(&docs))
        })
    });
    group.bench_function(format!("runtime_{cores}_threads_warm_cache"), |b| {
        let engine = BatchEngine::new(sn, XsdfConfig::default()).threads(cores);
        engine.run(&docs); // warm the shared cache once
        b.iter(|| black_box(engine.run(&docs)))
    });
    group.finish();
}

criterion_group!(benches, serial_vs_batch);
criterion_main!(benches);
