//! Serial loop vs. the `xsdf-runtime` batch engine over a corpus of
//! generated documents, reporting cold-cache and warm-cache timings
//! against the committed pre-precomputation baseline.
//!
//! Unlike the criterion benches, this is a plain harness (`harness =
//! false` + custom `main`) so it can emit a machine-readable
//! `BENCH_batch.json` at the workspace root: the `before` block is the
//! baseline measured at the commit just before the precomputed-gloss /
//! vector-cache work landed, the `after` block is re-measured on every
//! run, and `speedup_*` ratios compare the two. CI runs it in quick mode
//! (`XSDF_BENCH_QUICK=1`) as a smoke test that the harness still runs and
//! the JSON stays parseable; the committed numbers come from a full run.

use runtime::BatchEngine;
use std::hint::black_box;
use std::time::Instant;
use xsdf::{Xsdf, XsdfConfig};

/// Baseline medians (ms) measured at commit `e4b80ee` — the tree just
/// before gloss precomputation, id-based overlap, and the shared vector
/// table — on the same 32-document batch with the same harness settings.
const BEFORE_COMMIT: &str = "e4b80ee";
const BEFORE_SERIAL_MS: f64 = 1021.0;
const BEFORE_COLD_1_THREAD_MS: f64 = 338.083;
const BEFORE_WARM_MS: f64 = 15.621;

/// At least 32 documents, cycling the small generated corpus.
fn batch_xml(min_docs: usize) -> Vec<String> {
    let sn = semnet::mini_wordnet();
    let base: Vec<String> = corpus::Corpus::generate_small(sn, 11, 2)
        .documents()
        .iter()
        .map(|d| xmltree::serialize::to_string_compact(&d.doc))
        .collect();
    base.iter()
        .cycle()
        .take(min_docs.max(base.len()))
        .cloned()
        .collect()
}

/// A deliberately polysemous batch: every label is a multi-sense
/// mini-WordNet word (cast/star/track/picture plus a compound), so
/// candidate lists are as wide as the network allows and the exact
/// pruner (`--prune exact`) has leaders to defend. The generated corpus
/// above mixes in unambiguous structure; this one measures pruning where
/// it matters.
fn polysemous_xml(min_docs: usize) -> Vec<String> {
    let templates = [
        "<films><picture><cast><star>Stewart</star><star>Kelly</star></cast>\
         <plot>a photographer spies on his neighbors</plot></picture></films>",
        "<cd><title/><artist/><company/><track/><track/></cd>",
        "<films><star_picture/><cast><star>Kelly</star></cast><track/></films>",
        "<picture><cast><star/><star/></cast><plot/><track/></picture>",
    ];
    templates
        .iter()
        .map(|s| s.to_string())
        .cycle()
        .take(min_docs.max(templates.len()))
        .collect()
}

/// A synthetic hyper-polysemous workload: one target word with 48
/// readings in a hand-built network, in a context whose every label is a
/// synonym of the intended reading. MiniWordNet tops out at ~5 senses
/// per word, where candidate lists are too short for the exact pruner's
/// bound to bite; real lexicons (WordNet: dozens of senses) are the
/// regime it is designed for, and this workload reproduces it. The
/// intended reading is scored first (highest frequency) and scores the
/// theoretical maximum (every context entry carries it as a sense, so
/// `sim = 1` per entry); every decoy's running bound then falls below
/// the leader after one entry and the other ~7 evaluations are skipped.
fn hyper_polysemous() -> (semnet::SemanticNetwork, &'static str) {
    use semnet::{NetworkBuilder, PartOfSpeech};
    const CONTEXT: [&str; 8] = [
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    ];
    let mut b = NetworkBuilder::new();
    b.concept(
        "entity.n",
        &["entity"],
        "the root of the synthetic taxonomy",
        50,
        PartOfSpeech::Noun,
    );
    // The intended reading: "blob" plus every context label as lemmas.
    let mut hub_lemmas = vec!["blob"];
    hub_lemmas.extend(CONTEXT);
    b.noun(
        "hub.n",
        &hub_lemmas,
        "the hub reading every context synonym points at",
        100,
        "entity.n",
    );
    b.noun(
        "noise.n",
        &["noiseword"],
        "the decoy parent away from the hub",
        1,
        "entity.n",
    );
    // Each context label also has one unique low-frequency reading, so a
    // decoy's per-entry similarity is a fresh pair, not a cache hit.
    for name in CONTEXT {
        b.noun(
            &format!("{name}_alt.n"),
            &[name],
            &format!("an alternative reading of {name} unrelated to the hub"),
            1,
            "noise.n",
        );
    }
    for i in 0..47 {
        b.noun(
            &format!("decoy{i}.n"),
            &["blob"],
            &format!("unrelated decoy reading number {i} about nothing relevant"),
            1,
            "noise.n",
        );
    }
    let sn = b.build().expect("synthetic network is well-formed");
    (
        sn,
        "<blob><alpha/><beta/><gamma/><delta/><epsilon/><zeta/><eta/><theta/></blob>",
    )
}

/// A WordNet-scale synthetic network: `n` noun concepts under one root in
/// an 8-ary hypernym tree (WordNet's noun taxonomy averages branching in
/// the single digits), each with one unique lemma, one lemma shared with
/// ~3 siblings (so the word index has real multi-sense entries), and a
/// ~15-word gloss that gives the gloss-artifact build genuine
/// tokenization and extended-gloss work. Everything is a pure function of
/// `i`, so the network — and its snapshot — is bit-reproducible across
/// runs and machines.
fn synthetic_wordnet(n: usize) -> semnet::SemanticNetwork {
    use semnet::{NetworkBuilder, PartOfSpeech};
    let mut b = NetworkBuilder::new();
    b.concept(
        "entity.n",
        &["entity"],
        "the root of the synthetic wordnet scale taxonomy used by the cold start benchmark",
        1000,
        PartOfSpeech::Noun,
    );
    let shared = (n / 3).max(1);
    for i in 0..n {
        let key = format!("syn{i}.n");
        let parent = if i < 8 {
            "entity.n".to_string()
        } else {
            format!("syn{}.n", i / 8 - 1)
        };
        let unique = format!("term{i}");
        let common = format!("word{}", i % shared);
        let gloss = format!(
            "a synthetic concept number {i} of the scale benchmark whose gloss mentions \
             word{} and term{} so the artifact build tokenizes realistic sentences",
            (i + 7) % shared,
            (i + 13) % n,
        );
        b.noun(
            &key,
            &[&unique, &common],
            &gloss,
            (i % 1000) as u32 + 1,
            &parent,
        );
    }
    b.build().expect("synthetic wordnet is well-formed")
}

/// Median wall-clock of `iters` timed runs (after `warmup` untimed ones).
fn median_ms(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let quick = std::env::var_os("XSDF_BENCH_QUICK").is_some();
    let (warmup, iters) = if quick { (0, 1) } else { (2, 7) };

    let sn = semnet::mini_wordnet();
    let sources = batch_xml(32);
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());

    eprintln!(
        "batch_32_docs: {} docs, {} cores, {} mode ({} warmup + {} timed)",
        docs.len(),
        cores,
        if quick { "quick" } else { "full" },
        warmup,
        iters
    );

    // Serial reference: one pipeline, one document at a time.
    let serial_ms = median_ms(warmup, iters, || {
        let xsdf = Xsdf::new(sn, XsdfConfig::default());
        for xml in &docs {
            black_box(xsdf.disambiguate_str(xml).unwrap());
        }
    });
    eprintln!("  serial_xsdf_loop        {serial_ms:10.3} ms");

    // Cold cache: a fresh engine (empty shared tables) every iteration.
    let cold_1_thread_ms = median_ms(warmup, iters, || {
        let engine = BatchEngine::new(sn, XsdfConfig::default()).threads(1);
        black_box(engine.run(&docs));
    });
    eprintln!("  runtime_1_thread (cold) {cold_1_thread_ms:10.3} ms");

    let cold_n_threads_ms = median_ms(warmup, iters, || {
        let engine = BatchEngine::new(sn, XsdfConfig::default()).threads(cores);
        black_box(engine.run(&docs));
    });
    eprintln!("  runtime_{cores}_threads (cold) {cold_n_threads_ms:10.3} ms");

    // Warm cache: one engine reused, shared tables populated by a first
    // untimed run.
    let warm_engine = BatchEngine::new(sn, XsdfConfig::default()).threads(cores);
    warm_engine.run(&docs);
    let warm_ms = median_ms(warmup, iters, || {
        black_box(warm_engine.run(&docs));
    });
    eprintln!("  runtime_{cores}_threads (warm) {warm_ms:10.3} ms");

    // Exact pruning (level (a)) vs no pruning, cold, one thread, over
    // the polysemous batch. Every document gets a *fresh* engine: the
    // pruner saves similarity evaluations, and a warm shared cache hides
    // exactly that work (a cycled batch would run warm from document 5
    // on and dilute the measurement ~8x).
    let poly_sources = polysemous_xml(4);
    let poly_docs: Vec<&str> = poly_sources.iter().map(String::as_str).collect();
    // Radius 3: the widest spheres the conformance sweep covers, so each
    // candidate carries the most context entries and an abandoned
    // candidate forfeits the most work.
    let unpruned_config = XsdfConfig {
        radius: 3,
        ..XsdfConfig::default()
    };
    let pruned_config = XsdfConfig {
        prune: xsdf::PruningConfig::exact(),
        ..unpruned_config.clone()
    };
    // The per-iteration wall clock here is a few ms, so scheduler noise
    // swamps a 7-sample median; triple the samples for this comparison.
    let prune_iters = iters * 3;
    let unpruned_cold_ms = median_ms(warmup, prune_iters, || {
        for doc in &poly_docs {
            let engine = BatchEngine::new(sn, unpruned_config.clone()).threads(1);
            black_box(engine.run(&[*doc]));
        }
    });
    eprintln!("  polysemous unpruned (cold) {unpruned_cold_ms:7.3} ms");
    let pruned_cold_ms = median_ms(warmup, prune_iters, || {
        for doc in &poly_docs {
            let engine = BatchEngine::new(sn, pruned_config.clone()).threads(1);
            black_box(engine.run(&[*doc]));
        }
    });
    eprintln!("  polysemous pruned   (cold) {pruned_cold_ms:7.3} ms");
    // Level (b) at K=2 — the approximate screen, for the
    // exactness-vs-speed table in EXPERIMENTS.md.
    let topk_config = XsdfConfig {
        prune: xsdf::PruningConfig::parse("topk:2").expect("valid spec"),
        ..unpruned_config.clone()
    };
    let topk2_cold_ms = median_ms(warmup, prune_iters, || {
        for doc in &poly_docs {
            let engine = BatchEngine::new(sn, topk_config.clone()).threads(1);
            black_box(engine.run(&[*doc]));
        }
    });
    eprintln!("  polysemous topk:2   (cold) {topk2_cold_ms:7.3} ms");
    let pruned_report = BatchEngine::new(sn, pruned_config)
        .threads(1)
        .run(&poly_docs);
    let candidates_pruned = pruned_report.metrics.candidates_pruned;
    let early_exits = pruned_report.metrics.early_exits;
    assert!(
        candidates_pruned > 0,
        "exact pruning must fire on the polysemous batch"
    );
    eprintln!("  candidates_pruned          {candidates_pruned:7}");
    eprintln!("  early_exits                {early_exits:7}");

    // The exact pruner targets the dimension mini-WordNet cannot
    // produce: wide candidate lists (see `hyper_polysemous`). A 48-way
    // ambiguous target measures level (a) in the regime it is designed
    // for; fresh engines per run keep the saved similarity evaluations
    // from hiding in a warm cache, and each timed sample batches
    // several runs so it is not sub-millisecond.
    let (hyper_sn, hyper_doc) = hyper_polysemous();
    // Threshold 0.2 selects only the 48-way target (polysemy factor 1.0)
    // and leaves the two-sense context labels (factor ~1/47) unselected
    // on BOTH sides, so the comparison isolates the wide candidate list
    // instead of diluting it with identical context-target work.
    let hyper_base_config = XsdfConfig {
        threshold: xsdf::ThresholdPolicy::Fixed(0.2),
        ..XsdfConfig::default()
    };
    let hyper_pruned_config = XsdfConfig {
        prune: xsdf::PruningConfig::exact(),
        ..hyper_base_config.clone()
    };
    let hyper_reps = 20;
    let hyper_unpruned_cold_ms = median_ms(warmup, prune_iters, || {
        for _ in 0..hyper_reps {
            let engine = BatchEngine::new(&hyper_sn, hyper_base_config.clone()).threads(1);
            black_box(engine.run(&[hyper_doc]));
        }
    });
    eprintln!("  hyper-polysemous unpruned (cold) {hyper_unpruned_cold_ms:7.3} ms");
    let hyper_pruned_cold_ms = median_ms(warmup, prune_iters, || {
        for _ in 0..hyper_reps {
            let engine = BatchEngine::new(&hyper_sn, hyper_pruned_config.clone()).threads(1);
            black_box(engine.run(&[hyper_doc]));
        }
    });
    eprintln!("  hyper-polysemous pruned   (cold) {hyper_pruned_cold_ms:7.3} ms");
    let hyper_report = BatchEngine::new(&hyper_sn, hyper_pruned_config)
        .threads(1)
        .run(&[hyper_doc]);
    let hyper_candidates_pruned = hyper_report.metrics.candidates_pruned;
    assert!(
        hyper_candidates_pruned > 0,
        "exact pruning must fire on the hyper-polysemous document"
    );
    eprintln!("  hyper candidates_pruned          {hyper_candidates_pruned:7}");
    // Level (a) exactness spot check on the synthetic network too: the
    // conformance sweep proves it over mini-WordNet; this keeps the
    // speedup we report here provably free.
    let hyper_plain_report = BatchEngine::new(&hyper_sn, hyper_base_config)
        .threads(1)
        .run(&[hyper_doc]);
    let want = hyper_plain_report.results[0].as_ref().expect("doc parses");
    let got = hyper_report.results[0].as_ref().expect("doc parses");
    assert_eq!(want.reports.len(), got.reports.len());
    for (a, b) in want.reports.iter().zip(&got.reports) {
        assert_eq!(
            a.chosen.map(|(s, f)| (s, f.to_bits())),
            b.chosen.map(|(s, f)| (s, f.to_bits())),
            "exact pruning must not change the hyper-polysemous result"
        );
    }

    // Per-document latency distribution: one instrumented cold 1-thread
    // run, read off the engine's always-on latency histograms.
    let latency_report = BatchEngine::new(sn, XsdfConfig::default())
        .threads(1)
        .run(&docs);
    let doc_hist = &latency_report.metrics.latency.doc;
    let doc_p50_ms = doc_hist.p50().as_secs_f64() * 1e3;
    let doc_p99_ms = doc_hist.p99().as_secs_f64() * 1e3;
    eprintln!("  per-doc cold p50        {doc_p50_ms:10.3} ms");
    eprintln!("  per-doc cold p99        {doc_p99_ms:10.3} ms");

    // Cold start: rebuilding the network from its text export (parse +
    // validation + the full gloss-artifact build — what every process
    // paid before compiled snapshots) vs. decoding the snapshot (one
    // validated read, artifacts arriving pre-built). Measured on the
    // builtin MiniWordNet and on a WordNet-scale synthetic network; the
    // loaded network is spot-checked against the rebuild each iteration
    // so the speedup never comes from skipped work.
    let cs_iters = if quick { 1 } else { 5 };
    let coldstart = |sn: &semnet::SemanticNetwork| -> (f64, f64, usize) {
        let text = semnet::format::to_text(sn);
        let snap = semnet::snapshot::encode(sn);
        let rebuild_ms = median_ms(warmup.min(1), cs_iters, || {
            let rebuilt = semnet::format::from_text(&text).expect("text export parses");
            black_box(rebuilt.gloss_artifacts());
            black_box(&rebuilt);
        });
        let load_ms = median_ms(warmup.min(1), cs_iters, || {
            let loaded = semnet::snapshot::decode(&snap).expect("snapshot decodes");
            black_box(loaded.gloss_artifacts());
            assert_eq!(loaded.len(), sn.len());
            assert_eq!(loaded.total_frequency(), sn.total_frequency());
            black_box(&loaded);
        });
        (rebuild_ms, load_ms, snap.len())
    };
    let (cs_mini_rebuild_ms, cs_mini_load_ms, _) = coldstart(sn);
    eprintln!("  coldstart mini  rebuild {cs_mini_rebuild_ms:10.3} ms");
    eprintln!("  coldstart mini  load    {cs_mini_load_ms:10.3} ms");
    let synth_concepts = if quick { 8_000 } else { 117_000 };
    let synth = synthetic_wordnet(synth_concepts);
    let (cs_synth_rebuild_ms, cs_synth_load_ms, cs_synth_bytes) = coldstart(&synth);
    eprintln!("  coldstart synth({synth_concepts}) rebuild {cs_synth_rebuild_ms:10.3} ms");
    eprintln!("  coldstart synth({synth_concepts}) load    {cs_synth_load_ms:10.3} ms");
    eprintln!(
        "  coldstart synth speedup {:10.1}x ({cs_synth_bytes} snapshot bytes)",
        cs_synth_rebuild_ms / cs_synth_load_ms
    );

    let fields: Vec<(&str, String)> = vec![
        ("bench", "\"batch_32_docs\"".to_string()),
        (
            "mode",
            format!("\"{}\"", if quick { "quick" } else { "full" }),
        ),
        ("documents", docs.len().to_string()),
        ("threads", cores.to_string()),
        ("iters", iters.to_string()),
        ("before_commit", format!("\"{BEFORE_COMMIT}\"")),
        ("before_serial_ms", json_f64(BEFORE_SERIAL_MS)),
        ("before_cold_1_thread_ms", json_f64(BEFORE_COLD_1_THREAD_MS)),
        ("before_warm_ms", json_f64(BEFORE_WARM_MS)),
        ("after_serial_ms", json_f64(serial_ms)),
        ("after_cold_1_thread_ms", json_f64(cold_1_thread_ms)),
        ("after_cold_n_threads_ms", json_f64(cold_n_threads_ms)),
        ("after_warm_ms", json_f64(warm_ms)),
        ("doc_latency_p50_ms", json_f64(doc_p50_ms)),
        ("doc_latency_p99_ms", json_f64(doc_p99_ms)),
        ("speedup_serial", json_f64(BEFORE_SERIAL_MS / serial_ms)),
        (
            "speedup_cold_1_thread",
            json_f64(BEFORE_COLD_1_THREAD_MS / cold_1_thread_ms),
        ),
        ("speedup_warm", json_f64(BEFORE_WARM_MS / warm_ms)),
        ("unpruned_cold_ms", json_f64(unpruned_cold_ms)),
        ("pruned_cold_ms", json_f64(pruned_cold_ms)),
        (
            "speedup_pruned",
            json_f64(unpruned_cold_ms / pruned_cold_ms),
        ),
        ("topk2_cold_ms", json_f64(topk2_cold_ms)),
        ("speedup_topk2", json_f64(unpruned_cold_ms / topk2_cold_ms)),
        ("candidates_pruned", candidates_pruned.to_string()),
        ("early_exits", early_exits.to_string()),
        ("hyper_polysemy", "48".to_string()),
        ("hyper_unpruned_cold_ms", json_f64(hyper_unpruned_cold_ms)),
        ("hyper_pruned_cold_ms", json_f64(hyper_pruned_cold_ms)),
        (
            "speedup_hyper_pruned",
            json_f64(hyper_unpruned_cold_ms / hyper_pruned_cold_ms),
        ),
        (
            "hyper_candidates_pruned",
            hyper_candidates_pruned.to_string(),
        ),
        ("coldstart_mini_rebuild_ms", json_f64(cs_mini_rebuild_ms)),
        ("coldstart_mini_load_ms", json_f64(cs_mini_load_ms)),
        (
            "coldstart_mini_speedup",
            json_f64(cs_mini_rebuild_ms / cs_mini_load_ms),
        ),
        ("coldstart_synth_concepts", synth_concepts.to_string()),
        ("coldstart_synth_rebuild_ms", json_f64(cs_synth_rebuild_ms)),
        ("coldstart_synth_load_ms", json_f64(cs_synth_load_ms)),
        (
            "coldstart_synth_speedup",
            json_f64(cs_synth_rebuild_ms / cs_synth_load_ms),
        ),
        ("coldstart_synth_snapshot_bytes", cs_synth_bytes.to_string()),
    ];
    let mut out = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str("  \"");
        out.push_str(key);
        out.push_str("\": ");
        out.push_str(value);
        if i + 1 < fields.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");

    let path = std::env::var("XSDF_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_batch.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, &out).expect("write BENCH_batch.json");
    eprintln!("wrote {path}");
    print!("{out}");
}
