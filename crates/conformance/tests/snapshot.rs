//! Snapshot-vs-rebuild differential: a network decoded from its compiled
//! snapshot must drive the whole pipeline to *bit-identical* results —
//! same reports, same chosen-score bits, same annotated XML — at every
//! thread count. This is the load path's license to skip the rebuild:
//! anything the rebuild computes that the snapshot fails to carry
//! (artifact tables, sense ordering, cumulative frequencies) diverges
//! here first.

use conformance::harness::{cases, network, nucleus};
use semnet::snapshot;
use xmltree::serialize::to_string_compact;
use xsdf::{DisambiguationResult, Xsdf};

/// Bitwise equality of two disambiguation results (same contract as the
/// metamorphic suite): the snapshot claims full fidelity, so no float
/// tolerance is applied anywhere.
fn assert_results_identical(a: &DisambiguationResult, b: &DisambiguationResult, ctx: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{ctx}: report count");
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.node, rb.node, "{ctx}: node order");
        assert_eq!(ra.label, rb.label, "{ctx}: label of {:?}", ra.node);
        assert_eq!(
            ra.ambiguity.to_bits(),
            rb.ambiguity.to_bits(),
            "{ctx}: ambiguity of {:?}: {} vs {}",
            ra.node,
            ra.ambiguity,
            rb.ambiguity
        );
        assert_eq!(
            ra.selected, rb.selected,
            "{ctx}: selection of {:?}",
            ra.node
        );
        assert_eq!(
            ra.candidates, rb.candidates,
            "{ctx}: candidate count of {:?}",
            ra.node
        );
        let key = |c: &Option<(xsdf::SenseChoice, f64)>| c.map(|(s, f)| (s, f.to_bits()));
        assert_eq!(
            key(&ra.chosen),
            key(&rb.chosen),
            "{ctx}: chosen sense of {:?}",
            ra.node
        );
    }
}

/// The sweep's nucleus, disambiguated once on the rebuilt network and
/// once on a snapshot round-trip of it: reports and annotated XML must
/// match bit for bit.
#[test]
fn snapshot_loaded_network_disambiguates_bitwise_identically() {
    let rebuilt = network();
    let loaded = snapshot::decode(&snapshot::encode(rebuilt))
        .expect("snapshot of the conformance network must decode");
    let all = cases(rebuilt);
    for case in nucleus(&all, 3) {
        let ctx = format!("{} snapshot", case.context());
        let a = Xsdf::new(rebuilt, case.config());
        let b = Xsdf::new(&loaded, case.config());
        let ra = a.disambiguate_tree(&a.build_tree(&case.doc));
        let rb = b.disambiguate_tree(&b.build_tree(&case.doc));
        assert_results_identical(&ra, &rb, &ctx);
        assert_eq!(
            ra.semantic_tree.to_annotated_xml(),
            rb.semantic_tree.to_annotated_xml(),
            "{ctx}: annotated XML"
        );
    }
}

/// Batch runs over the snapshot-loaded network at 1, 2, and 8 threads
/// all match the rebuilt network's single-threaded reference — the
/// combination the CLI's `--network file.snap` batch mode relies on.
#[test]
fn snapshot_loaded_batch_matches_rebuild_at_every_thread_count() {
    let rebuilt = network();
    let loaded = snapshot::decode(&snapshot::encode(rebuilt))
        .expect("snapshot of the conformance network must decode");
    let all = cases(rebuilt);
    let subset = nucleus(&all, 5);
    let sources: Vec<String> = subset.iter().map(|c| to_string_compact(&c.doc)).collect();
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    // One config for the whole batch (batch runs share a pipeline).
    let reference = runtime::BatchEngine::new(rebuilt, subset[0].config())
        .threads(1)
        .run(&docs);
    for threads in [1usize, 2, 8] {
        let engine = runtime::BatchEngine::new(&loaded, subset[0].config()).threads(threads);
        let report = engine.run(&docs);
        assert_eq!(report.results.len(), reference.results.len());
        for ((case, got), want) in subset.iter().zip(&report.results).zip(&reference.results) {
            let got = got.as_ref().expect("conformance case parses");
            let want = want.as_ref().expect("conformance case parses");
            assert_results_identical(
                want,
                got,
                &format!("{} snapshot batch threads {threads}", case.context()),
            );
            assert_eq!(
                want.semantic_tree.to_annotated_xml(),
                got.semantic_tree.to_annotated_xml(),
                "{} snapshot batch threads {threads}: annotated XML",
                case.context()
            );
        }
    }
}
