//! Candidate-pruning conformance: level (a) — the exact early exit — is
//! proven *result-identical* (bit-for-bit) against the unpruned pipeline
//! across the corpus sweep, serially and through 1/2/8-thread batches;
//! level (b) — the density pre-score — is proven *deterministic* with
//! bounded divergence (a divergence table per K, collapsing to zero once
//! K covers every candidate list).
//!
//! Setting `XSDF_CONFORMANCE_PRUNE=exact` additionally runs the whole
//! differential suite (`tests/differential.rs`) with the optimized side
//! pruned, turning every oracle check into an exactness proof too; this
//! file covers the pruned-vs-unpruned comparison directly so the proof
//! does not depend on that environment variable being set.

use conformance::harness::network;
use xmltree::serialize::to_string_compact;
use xsdf::{DisambiguationResult, PruningConfig, SenseChoice, Xsdf, XsdfConfig};

use conformance::harness::{cases, nucleus};

/// Bitwise equality of two disambiguation results (same contract as the
/// metamorphic suite): node order, labels, ambiguity bits, selection,
/// candidate counts, and chosen (sense, score-bits) pairs.
fn assert_results_identical(a: &DisambiguationResult, b: &DisambiguationResult, ctx: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{ctx}: report count");
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.node, rb.node, "{ctx}: node order");
        assert_eq!(ra.label, rb.label, "{ctx}: label of {:?}", ra.node);
        assert_eq!(
            ra.ambiguity.to_bits(),
            rb.ambiguity.to_bits(),
            "{ctx}: ambiguity of {:?}",
            ra.node
        );
        assert_eq!(
            ra.selected, rb.selected,
            "{ctx}: selection of {:?}",
            ra.node
        );
        assert_eq!(
            ra.candidates, rb.candidates,
            "{ctx}: candidate count of {:?}",
            ra.node
        );
        let key = |c: &Option<(SenseChoice, f64)>| c.map(|(s, f)| (s, f.to_bits()));
        assert_eq!(
            key(&ra.chosen),
            key(&rb.chosen),
            "{ctx}: chosen sense of {:?}",
            ra.node
        );
    }
}

fn with_prune(base: XsdfConfig, prune: PruningConfig) -> XsdfConfig {
    XsdfConfig { prune, ..base }
}

/// Level (a): the exact early exit changes *nothing* — every sweep case
/// produces bit-identical reports with pruning off and on. The slack
/// derivation in `xsdf::prune` is the argument; this is the proof run.
#[test]
fn exact_pruning_is_bitwise_identical_across_the_sweep() {
    let sn = network();
    let all = cases(sn);
    for case in nucleus(&all, 3) {
        let ctx = case.context();
        let plain = Xsdf::new(sn, case.config());
        let pruned = Xsdf::new(sn, with_prune(case.config(), PruningConfig::exact()));
        let tree = plain.build_tree(&case.doc);
        let want = plain.disambiguate_tree(&tree);
        let got = pruned.disambiguate_tree(&tree);
        assert_results_identical(&want, &got, &format!("{ctx} exact-pruned"));
    }
}

/// Level (a) through the batch runtime: pruned batches at 1, 2 and 8
/// threads are bit-identical to the unpruned serial reference, and the
/// pruner demonstrably fires (`candidates_pruned > 0`) over the sweep.
#[test]
fn exact_pruned_batches_are_bitwise_identical_at_1_2_8_threads() {
    let sn = network();
    let all = cases(sn);
    let subset = nucleus(&all, 5);
    // One config for the whole batch (batch runs share a pipeline).
    let base = subset[0].config();
    let plain = Xsdf::new(sn, base.clone());
    let sources: Vec<String> = subset.iter().map(|c| to_string_compact(&c.doc)).collect();
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let reference: Vec<DisambiguationResult> = subset
        .iter()
        .map(|c| plain.disambiguate_tree(&plain.build_tree(&c.doc)))
        .collect();
    for threads in [1usize, 2, 8] {
        let engine =
            runtime::BatchEngine::new(sn, with_prune(base.clone(), PruningConfig::exact()))
                .threads(threads);
        let report = engine.run(&docs);
        assert!(
            report.metrics.candidates_pruned > 0,
            "threads {threads}: the sweep must exercise the pruner for this proof to bite"
        );
        for ((case, result), want) in subset.iter().zip(&report.results).zip(&reference) {
            let got = result.as_ref().expect("conformance case parses");
            assert_results_identical(
                want,
                got,
                &format!("{} pruned threads {threads}", case.context()),
            );
        }
    }
}

/// Level (b): the density pre-score is an *approximation*, so it may
/// change choices — but deterministically (two runs agree bit-for-bit),
/// with bit-identical scores wherever it picks the same sense (survivors
/// reuse the unpruned arithmetic), and with divergence collapsing to
/// zero once K covers every candidate list. Prints the divergence table
/// the sweep measured.
#[test]
fn density_pruning_divergence_is_bounded_and_deterministic() {
    let sn = network();
    let all = cases(sn);
    let subset = nucleus(&all, 7);
    let mut table: Vec<(usize, usize, usize)> = Vec::new(); // (K, diverged, targets)
    for k in [1usize, 2, 8, 1 << 20] {
        let mut diverged = 0usize;
        let mut targets = 0usize;
        for case in subset.iter() {
            let ctx = case.context();
            let plain = Xsdf::new(sn, case.config());
            let pruned = Xsdf::new(sn, with_prune(case.config(), PruningConfig::density(k)));
            let tree = plain.build_tree(&case.doc);
            let want = plain.disambiguate_tree(&tree);
            let once = pruned.disambiguate_tree(&tree);
            let twice = pruned.disambiguate_tree(&tree);
            assert_results_identical(&once, &twice, &format!("{ctx} density K={k} rerun"));
            for (rw, rp) in want.reports.iter().zip(&once.reports) {
                if !rw.selected {
                    continue;
                }
                targets += 1;
                match (&rw.chosen, &rp.chosen) {
                    (Some((ws, wf)), Some((ps, pf))) if ws == ps => {
                        assert_eq!(
                            wf.to_bits(),
                            pf.to_bits(),
                            "{ctx} K={k}: same sense at {:?} must keep the unpruned score",
                            rw.label
                        );
                    }
                    (None, None) => {}
                    _ => diverged += 1,
                }
            }
        }
        table.push((k, diverged, targets));
    }
    eprintln!("density divergence table (K, diverged, targets): {table:?}");
    let (_, diverged_at_huge_k, targets) = *table.last().unwrap();
    assert!(targets > 0, "the sweep must select targets");
    assert_eq!(
        diverged_at_huge_k, 0,
        "K beyond every candidate count must reproduce the unpruned choices exactly"
    );
}
