//! Degenerate-input differentials: the corners where a formula's
//! denominator, sphere, or candidate list collapses — single-node trees,
//! radius-0 spheres, fully unknown labels, and compound labels with one
//! unknown token. Each input runs through **both** implementations and
//! must agree exactly like the main sweep does.

use conformance::harness::network;
use semsim::SimilarityWeights;
use xsdf::ambiguity::select_targets;
use xsdf::config::{AmbiguityWeights, ThresholdPolicy, VectorSimilarity, XsdfConfig};
use xsdf::senses::{candidates_for_label, SenseCandidates};
use xsdf::sphere::{xml_context_vector, xml_sphere};
use xsdf::Xsdf;

use conformance::reference::{
    ambiguity as ref_amb, preprocess as ref_pre, scoring as ref_score, similarity as ref_sim,
    sphere as ref_sph,
};

const TOL: f64 = 1e-12;

/// Runs one document through the full pipeline and the full reference,
/// asserting per-node agreement on degrees, vectors, and final choices.
fn assert_full_agreement(xml: &str, cfg: XsdfConfig, ctx: &str) {
    let sn = network();
    let doc = xmltree::parse(xml).unwrap_or_else(|e| panic!("{ctx}: must parse: {e:?}"));
    let xsdf = Xsdf::new(sn, cfg.clone());
    let tree = xsdf.build_tree(&doc);
    let w = cfg.ambiguity_weights;
    for node in tree.preorder() {
        let opt = xsdf::ambiguity::ambiguity_degree(sn, &tree, node, w);
        let reference = ref_amb::ambiguity_degree(sn, &tree, node, w);
        assert!(
            (opt - reference).abs() <= TOL,
            "{ctx}: degree of {:?}: {opt} vs {reference}",
            tree.label(node)
        );
        let ov = xml_context_vector(&tree, node, cfg.radius);
        let rv = ref_sph::xml_context_vector(&tree, node, cfg.radius);
        assert_eq!(ov.len(), rv.len(), "{ctx}: vector support of {node:?}");
        for (label, weight) in ov.iter() {
            let r = rv.get(label).copied().unwrap_or(f64::NAN);
            assert!(
                (weight - r).abs() <= TOL,
                "{ctx}: vector dim {label:?} of {node:?}: {weight} vs {r}"
            );
        }
    }
    let result = xsdf.disambiguate_tree(&tree);
    let mut sim = |a, b| ref_sim::combined_similarity(sn, cfg.similarity, a, b);
    for report in &result.reports {
        let reference = ref_score::score_target(sn, &tree, report.node, &cfg, &mut sim);
        let opt = report.chosen;
        match (opt, reference) {
            (None, None) => {}
            (Some((oc, os)), Some((rc, rs))) => {
                assert_eq!(oc, rc, "{ctx}: chosen sense at {:?}", report.label);
                assert!(
                    (os - rs).abs() <= TOL,
                    "{ctx}: chosen score at {:?}: {os} vs {rs}",
                    report.label
                );
            }
            (o, r) => panic!(
                "{ctx}: choice presence at {:?}: {o:?} vs {r:?}",
                report.label
            ),
        }
    }
}

/// A single-node tree: depth 0, density 0, an empty sphere at any radius,
/// and a context vector holding only the center.
#[test]
fn single_node_tree_agrees_through_both_implementations() {
    let sn = network();
    let doc = xmltree::parse("<star/>").unwrap();
    let xsdf = Xsdf::new(sn, XsdfConfig::default());
    let tree = xsdf.build_tree(&doc);
    assert_eq!(tree.len(), 1, "single-element document builds one node");
    let root = tree.root();
    for radius in 0..=3 {
        assert!(xml_sphere(&tree, root, radius).is_empty());
        assert!(ref_sph::xml_sphere(&tree, root, radius).is_empty());
        // |S| = 1 ⇒ scale = 2/(1+1) = 1, center at Struct(0) = 1.
        let v = xml_context_vector(&tree, root, radius);
        assert_eq!(v.len(), 1);
        assert_eq!(v.get("star"), 1.0);
    }
    for cfg in [
        XsdfConfig::default(),
        XsdfConfig {
            radius: 0,
            ..XsdfConfig::default()
        },
    ] {
        assert_full_agreement("<star/>", cfg, "single-node");
    }
}

/// Radius 0 degenerates every sphere to the center ring `R_0 = {x}`:
/// concept scores lose all context terms and context vectors compare the
/// bare label dimensions — but both implementations must still agree.
#[test]
fn radius_zero_spheres_agree_through_both_implementations() {
    for measure in [
        VectorSimilarity::Cosine,
        VectorSimilarity::Jaccard,
        VectorSimilarity::Pearson,
    ] {
        let cfg = XsdfConfig {
            radius: 0,
            vector_similarity: measure,
            ..XsdfConfig::default()
        };
        assert_full_agreement(
            "<cast><star>Kelly</star><director>Stanley</director></cast>",
            cfg,
            &format!("radius-0 {measure:?}"),
        );
    }
}

/// A label no normalization chain can resolve: `Unknown` candidates, a
/// polysemy component of zero, and no chosen sense — on both sides.
#[test]
fn unknown_labels_agree_through_both_implementations() {
    let sn = network();
    assert!(matches!(
        candidates_for_label(sn, "zorbleflux"),
        SenseCandidates::Unknown
    ));
    assert!(matches!(
        ref_pre::candidates_for_label(sn, "zorbleflux"),
        ref_pre::RefCandidates::Unknown
    ));
    let xml = "<zorbleflux><star>Kelly</star><blarfwig/></zorbleflux>";
    assert_full_agreement(xml, XsdfConfig::default(), "unknown-labels");
    // Unknown labels are never selected as targets, under either policy.
    let doc = xmltree::parse(xml).unwrap();
    let xsdf = Xsdf::new(sn, XsdfConfig::default());
    let tree = xsdf.build_tree(&doc);
    for policy in [ThresholdPolicy::Fixed(0.0), ThresholdPolicy::Auto] {
        let w = AmbiguityWeights::equal();
        let opt = select_targets(sn, &tree, w, policy);
        let reference = ref_amb::select_targets(sn, &tree, w, policy);
        for (o, r) in opt.iter().zip(&reference) {
            assert_eq!(
                o.selected,
                r.selected,
                "selection of {:?}",
                tree.label(o.node)
            );
            if tree.label(o.node).contains("zorble") || tree.label(o.node).contains("blarf") {
                assert!(
                    !o.selected,
                    "unknown label {:?} selected",
                    tree.label(o.node)
                );
            }
        }
    }
}

/// Compound labels where exactly one token is known exercise the
/// one-sided fallback (and its keep-first tie-break) in both orders:
/// known-first (`star_zorble`) and known-second (`zorble_star`).
#[test]
fn compound_with_one_unknown_token_agrees_through_both_implementations() {
    let sn = network();
    for tag in ["star_zorble", "zorble_star"] {
        // Pre-processing splits the tag into tokens and stores the
        // space-joined compound label in the tree.
        let label = tag.replace('_', " ");
        let label = label.as_str();
        let opt = candidates_for_label(sn, label);
        let reference = ref_pre::candidates_for_label(sn, label);
        match (&opt, &reference) {
            (
                SenseCandidates::Compound { first, second },
                ref_pre::RefCandidates::Compound {
                    first: rf,
                    second: rs,
                },
            ) => {
                assert_eq!(first, rf, "{label}: first token senses");
                assert_eq!(second, rs, "{label}: second token senses");
                assert!(
                    first.is_empty() != second.is_empty(),
                    "{label}: exactly one side must be unknown (got {} and {})",
                    first.len(),
                    second.len()
                );
            }
            other => panic!("{label}: expected compound on both sides, got {other:?}"),
        }
        let xml = format!("<cast><{tag}>Kelly</{tag}><director/></cast>");
        assert_full_agreement(&xml, XsdfConfig::default(), &format!("compound {tag}"));
    }
}

/// The degenerate similarity inputs themselves: identity pairs score 1,
/// and the combined measure stays within `[0, 1]` for every weight split,
/// reference and optimized alike.
#[test]
fn identity_and_bounds_hold_on_degenerate_similarity_inputs() {
    let sn = network();
    let senses = sn.senses("star");
    assert!(!senses.is_empty(), "mini_wordnet must know star");
    let weights = SimilarityWeights::equal();
    let sim = semsim::CombinedSimilarity::new(weights);
    for &s in senses {
        let o = sim.similarity(sn, s, s);
        let r = ref_sim::combined_similarity(sn, weights, s, s);
        assert!((o - 1.0).abs() <= TOL, "optimized identity: {o}");
        assert!((r - 1.0).abs() <= TOL, "reference identity: {r}");
    }
}
