//! The differential oracle: the optimized pipeline against the
//! straight-from-the-paper reference, over the corpus sweep.
//!
//! Tier A (every document in the sweep): pre-processing, sense
//! candidates, ambiguity degrees and selection, XML context vectors,
//! and the vector measures.
//!
//! Tier B (a deterministic nucleus of the sweep): the full naive scoring
//! formulas — Definitions 8–10, Equations 10, 12 and 13 — against
//! `ConceptContext`, `ContextVectorScorer`, and the pipeline's final
//! sense choices. The naive references re-derive ancestor maps, gloss
//! token lists and cumulative frequencies per call, so this tier samples
//! targets instead of sweeping every node.
//!
//! Agreement is `≤ 1e-12` everywhere a float is compared (the reference
//! accumulates sums in different orders than the optimized path), and
//! discrete (exact) for token lists, candidate lists, selection flags
//! and sense choices.

use std::collections::HashMap;

use conformance::harness::network;
use conformance::harness::{cases, nucleus};
use conformance::reference::{ambiguity as ref_amb, preprocess as ref_pre};
use conformance::reference::{scoring as ref_score, similarity as ref_sim, sphere as ref_sph};
use semnet::{ConceptId, SemanticNetwork};
use semsim::{CombinedSimilarity, SimilarityWeights, SparseVector};
use xmltree::tree::ValueTokenizer;
use xmltree::{DocNode, XmlTree};
use xsdf::ambiguity::select_targets;
use xsdf::concept_based::ConceptContext;
use xsdf::config::{AmbiguityWeights, ThresholdPolicy, VectorSimilarity};
use xsdf::context_based::ContextVectorScorer;
use xsdf::senses::{
    candidates_for_label, disambiguation_candidates, LingTokenizer, SenseCandidates,
};
use xsdf::sphere::xml_context_vector;
use xsdf::Xsdf;

const TOL: f64 = 1e-12;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL
}

/// Compares an optimized sparse vector against a reference vector.
fn assert_vectors_match(opt: &SparseVector, reference: &ref_sph::RefVector, ctx: &str) {
    assert_eq!(opt.len(), reference.len(), "{ctx}: dimension count");
    for (label, w) in opt.iter() {
        let r = reference.get(label).copied().unwrap_or(f64::NAN);
        assert!(close(w, r), "{ctx}: dimension {label:?}: {w} vs {r}");
    }
}

fn ref_candidates_match(opt: &SenseCandidates, reference: &ref_pre::RefCandidates) -> bool {
    match (opt, reference) {
        (SenseCandidates::Unknown, ref_pre::RefCandidates::Unknown) => true,
        (SenseCandidates::Single(a), ref_pre::RefCandidates::Single(b)) => a == b,
        (
            SenseCandidates::Compound { first, second },
            ref_pre::RefCandidates::Compound {
                first: rf,
                second: rs,
            },
        ) => first == rf && second == rs,
        _ => false,
    }
}

/// Tier A: every element/attribute name and every text value in every
/// document processes identically through the reference pipeline and the
/// `LingTokenizer`, and every resulting tree label resolves to the same
/// sense-candidate lists.
#[test]
fn preprocessing_and_candidates_agree_across_sweep() {
    let sn = network();
    let tokenizer = LingTokenizer::new(sn);
    for case in &cases(sn) {
        let ctx = case.context();
        for id in case.doc.all_nodes() {
            match case.doc.node(id) {
                DocNode::Element { name, attributes } => {
                    let opt = tokenizer.normalize_label(name);
                    let reference = ref_pre::label_for_tag_name(sn, name);
                    assert_eq!(opt, reference, "{ctx}: element name {name:?}");
                    for attr in attributes {
                        let opt = tokenizer.normalize_label(&attr.name);
                        let reference = ref_pre::label_for_tag_name(sn, &attr.name);
                        assert_eq!(opt, reference, "{ctx}: attribute name {:?}", attr.name);
                        let opt_tokens = tokenizer.tokenize_value(&attr.value);
                        let ref_tokens = ref_pre::process_text_value(sn, &attr.value);
                        assert_eq!(
                            opt_tokens, ref_tokens,
                            "{ctx}: attribute value {:?}",
                            attr.value
                        );
                    }
                }
                DocNode::Text(text) | DocNode::CData(text) => {
                    let opt_tokens = tokenizer.tokenize_value(text);
                    let ref_tokens = ref_pre::process_text_value(sn, text);
                    assert_eq!(opt_tokens, ref_tokens, "{ctx}: text value {text:?}");
                }
                DocNode::Comment(_) | DocNode::ProcessingInstruction { .. } => {}
            }
        }
        // Sense candidates over the processed labels of the built tree,
        // both raw (Definition 3's polysemy input) and noun-filtered
        // (the disambiguation inputs).
        let xsdf = Xsdf::new(sn, case.config());
        let tree = xsdf.build_tree(&case.doc);
        for node in tree.preorder() {
            let label = tree.label(node);
            let opt = candidates_for_label(sn, label);
            let reference = ref_pre::candidates_for_label(sn, label);
            assert!(
                ref_candidates_match(&opt, &reference),
                "{ctx}: candidates for label {label:?}: {opt:?} vs {reference:?}"
            );
            let kind = tree.node(node).kind;
            let opt = disambiguation_candidates(sn, label, kind);
            let reference = ref_pre::disambiguation_candidates(sn, label, kind);
            assert!(
                ref_candidates_match(&opt, &reference),
                "{ctx}: disambiguation candidates for {label:?} ({kind:?})"
            );
        }
    }
}

/// Tier A: ambiguity degrees (Definition 3) and target selection under
/// both threshold policies agree on every node of every document.
#[test]
fn ambiguity_degrees_and_selection_agree_across_sweep() {
    let sn = network();
    let w = AmbiguityWeights::equal();
    assert_eq!(
        ref_amb::max_polysemy(sn),
        sn.max_polysemy(),
        "max polysemy normalizer"
    );
    for case in &cases(sn) {
        let ctx = case.context();
        let xsdf = Xsdf::new(sn, case.config());
        let tree = xsdf.build_tree(&case.doc);
        for node in tree.preorder() {
            assert_eq!(
                ref_amb::depth(&tree, node),
                tree.depth(node),
                "{ctx}: depth of {node:?}"
            );
            assert_eq!(
                ref_amb::density(&tree, node),
                tree.density(node),
                "{ctx}: density of {node:?}"
            );
            let opt = xsdf::ambiguity::ambiguity_degree(sn, &tree, node, w);
            let reference = ref_amb::ambiguity_degree(sn, &tree, node, w);
            assert!(
                close(opt, reference),
                "{ctx}: degree of {node:?} ({:?}): {opt} vs {reference}",
                tree.label(node)
            );
        }
        for policy in [
            ThresholdPolicy::Fixed(0.0),
            ThresholdPolicy::Fixed(0.3),
            ThresholdPolicy::Auto,
        ] {
            let opt = select_targets(sn, &tree, w, policy);
            let reference = ref_amb::select_targets(sn, &tree, w, policy);
            let threshold = ref_amb::resolve_threshold(sn, &tree, w, policy);
            assert_eq!(opt.len(), reference.len(), "{ctx}: selection length");
            for (o, r) in opt.iter().zip(&reference) {
                assert_eq!(o.node, r.node, "{ctx}: selection order");
                assert!(
                    close(o.degree, r.degree),
                    "{ctx} {policy:?}: degree {:?}: {} vs {}",
                    o.node,
                    o.degree,
                    r.degree
                );
                // At the exact threshold boundary a last-ulp difference
                // in the two mean computations could legitimately flip
                // the flag; away from it the flags must agree.
                if (o.degree - threshold).abs() > 1e-9 {
                    assert_eq!(
                        o.selected, r.selected,
                        "{ctx} {policy:?}: selection flag of {:?} (degree {}, threshold {})",
                        o.node, o.degree, threshold
                    );
                }
            }
        }
    }
}

/// Tier A: XML context vectors (Definitions 6–7) agree on every node at
/// the case's radius, and the three vector measures of footnote 10 agree
/// on real vector pairs.
#[test]
fn xml_context_vectors_and_measures_agree_across_sweep() {
    let sn = network();
    for case in &cases(sn) {
        let ctx = case.context();
        let xsdf = Xsdf::new(sn, case.config());
        let tree = xsdf.build_tree(&case.doc);
        let root_opt = xml_context_vector(&tree, tree.root(), case.radius);
        let ref_root = ref_sph::xml_context_vector(&tree, tree.root(), case.radius);
        for node in tree.preorder() {
            let opt = xml_context_vector(&tree, node, case.radius);
            let reference = ref_sph::xml_context_vector(&tree, node, case.radius);
            assert_vectors_match(&opt, &reference, &format!("{ctx}: vector of {node:?}"));

            // Measure agreement on the (node, root) vector pair.
            let ref_node = reference;
            for measure in [
                VectorSimilarity::Cosine,
                VectorSimilarity::Jaccard,
                VectorSimilarity::Pearson,
            ] {
                let o = measure.apply(&opt, &root_opt);
                let r = ref_sim::apply_measure(measure, &ref_node, &ref_root);
                assert!(
                    close(o, r),
                    "{ctx}: {measure:?} of ({node:?}, root): {o} vs {r}"
                );
            }
        }
    }
}

/// Sampled concept pairs for the similarity differential: a deterministic
/// stride over the full pair space.
fn sample_pairs(
    sn: &SemanticNetwork,
    stride_a: usize,
    stride_b: usize,
) -> Vec<(ConceptId, ConceptId)> {
    let all: Vec<ConceptId> = sn.all_concepts().collect();
    let mut out = Vec::new();
    for (i, &a) in all.iter().enumerate().step_by(stride_a) {
        for (j, &b) in all.iter().enumerate().step_by(stride_b) {
            let _ = (i, j);
            out.push((a, b));
        }
    }
    out
}

/// Tier B: the three constituent similarity measures and their
/// Definition 9 combinations agree with the naive per-call references on
/// a deterministic sample of concept pairs.
#[test]
fn similarity_measures_agree_on_sampled_pairs() {
    let sn = network();
    // Edge and node measures are cheap enough for a dense sample.
    for (a, b) in sample_pairs(sn, 2, 3) {
        let o = semsim::wu_palmer(sn, a, b);
        let r = ref_sim::wu_palmer(sn, a, b);
        assert!(close(o, r), "wu_palmer({a:?}, {b:?}): {o} vs {r}");
        let o = semsim::lin(sn, a, b);
        let r = ref_sim::lin(sn, a, b);
        assert!(close(o, r), "lin({a:?}, {b:?}): {o} vs {r}");
    }
    // The naive gloss reference re-tokenizes per call: sparser sample.
    for (a, b) in sample_pairs(sn, 5, 7) {
        let o = semsim::extended_gloss_overlap(sn, a, b);
        let r = ref_sim::extended_gloss_overlap(sn, a, b);
        assert!(close(o, r), "gloss({a:?}, {b:?}): {o} vs {r}");
    }
    for weights in [
        SimilarityWeights::equal(),
        SimilarityWeights::edge_only(),
        SimilarityWeights::node_only(),
        SimilarityWeights::gloss_only(),
        SimilarityWeights::new(0.5, 0.3, 0.2).unwrap(),
    ] {
        let sim = CombinedSimilarity::new(weights);
        for (a, b) in sample_pairs(sn, 7, 11) {
            let o = sim.similarity(sn, a, b);
            let r = ref_sim::combined_similarity(sn, weights, a, b);
            assert!(
                close(o, r),
                "combined({weights:?}, {a:?}, {b:?}): {o} vs {r}"
            );
        }
    }
}

/// Up to `limit` selected targets of a result, evenly spaced.
fn sample_targets(xsdf: &Xsdf, tree: &XmlTree, limit: usize) -> Vec<xmltree::NodeId> {
    let selected: Vec<xmltree::NodeId> = xsdf
        .select(tree)
        .into_iter()
        .filter(|na| na.selected)
        .map(|na| na.node)
        .collect();
    if selected.len() <= limit {
        return selected;
    }
    let step = selected.len().div_ceil(limit);
    selected.into_iter().step_by(step).collect()
}

/// A memoizing wrapper around the pure reference similarity — harness
/// plumbing only (the reference itself stays cache-free); it merely
/// avoids re-deriving the same pure pair value thousands of times while
/// the differential sweeps a document.
fn memo_sim<'a>(
    sn: &'a SemanticNetwork,
    weights: SimilarityWeights,
) -> impl FnMut(ConceptId, ConceptId) -> f64 + 'a {
    let mut memo: HashMap<(ConceptId, ConceptId), f64> = HashMap::new();
    move |a, b| {
        *memo
            .entry((a, b))
            .or_insert_with(|| ref_sim::combined_similarity(sn, weights, a, b))
    }
}

/// Tier B: the full scoring stack — Definition 8 / Equation 10 concept
/// scores, Definition 10 / Equation 12 context scores, and the pipeline's
/// final Equation 13 choices — agrees with the naive reference on sampled
/// targets of the sweep nucleus.
#[test]
fn full_scoring_and_choices_agree_on_nucleus() {
    let sn = network();
    let all = cases(sn);
    let stride = if conformance::harness::quick() { 7 } else { 11 };
    for case in nucleus(&all, stride) {
        let ctx = case.context();
        let cfg = case.config();
        let xsdf = Xsdf::new(sn, cfg.clone());
        let tree = xsdf.build_tree(&case.doc);
        let result = xsdf.disambiguate_tree(&tree);
        let mut sim = memo_sim(sn, cfg.similarity);
        for target in sample_targets(&xsdf, &tree, 4) {
            // Constituent scores, candidate by candidate.
            let opt_sim = CombinedSimilarity::new(cfg.similarity);
            let concept_ctx = ConceptContext::build(sn, &tree, target, cfg.radius);
            let scorer = ContextVectorScorer::build(&tree, target, cfg.radius)
                .with_measure(cfg.vector_similarity);
            let label = tree.label(target);
            if let SenseCandidates::Single(senses) =
                disambiguation_candidates(sn, label, tree.node(target).kind)
            {
                for &s in &senses {
                    let o = concept_ctx.score_single(sn, &opt_sim, s);
                    let r =
                        ref_score::concept_score_single(sn, &tree, target, cfg.radius, s, &mut sim);
                    assert!(
                        close(o, r),
                        "{ctx}: Definition 8 score of {s:?} at {label:?}: {o} vs {r}"
                    );
                    let o = scorer.score_single(sn, s);
                    let r = ref_score::context_score_single(sn, &tree, target, &cfg, s);
                    assert!(
                        close(o, r),
                        "{ctx}: Definition 10 score of {s:?} at {label:?}: {o} vs {r}"
                    );
                }
            }
            // The final choice (Equation 13 plus tie-breaks and the
            // annotation gate).
            let opt_chosen = result
                .reports
                .iter()
                .find(|r| r.node == target)
                .and_then(|r| r.chosen);
            let ref_chosen = ref_score::score_target(sn, &tree, target, &cfg, &mut sim);
            match (opt_chosen, ref_chosen) {
                (None, None) => {}
                (Some((oc, os)), Some((rc, rs))) => {
                    assert_eq!(oc, rc, "{ctx}: chosen sense at {label:?}");
                    assert!(
                        close(os, rs),
                        "{ctx}: chosen score at {label:?}: {os} vs {rs}"
                    );
                }
                (o, r) => panic!("{ctx}: choice presence at {label:?}: {o:?} vs {r:?}"),
            }
        }
    }
}
