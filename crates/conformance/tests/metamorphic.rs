//! Metamorphic invariants: properties that must hold between *runs* of
//! the optimized pipeline rather than against the reference formulas —
//! caching, threading, sphere growth, label renaming, and the
//! serialize→reparse round trip must all be behavior-preserving.

use conformance::harness::network;
use semsim::{CombinedSimilarity, LocalCache};
use xmltree::serialize::to_string_compact;
use xmltree::XmlTree;
use xsdf::config::VectorSimilarity;
use xsdf::sphere::{xml_context_vector, xml_sphere};
use xsdf::{DisambiguationResult, Xsdf};

use conformance::harness::{cases, nucleus};
use conformance::reference::sphere as ref_sph;

/// Bitwise equality of two disambiguation results: same nodes in the same
/// order, same labels, ambiguity bits, selection flags, candidate counts,
/// and chosen (sense, score-bits) pairs. Caching and threading claim
/// *bit-for-bit* reproducibility, so no tolerance is applied.
fn assert_results_identical(a: &DisambiguationResult, b: &DisambiguationResult, ctx: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{ctx}: report count");
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.node, rb.node, "{ctx}: node order");
        assert_eq!(ra.label, rb.label, "{ctx}: label of {:?}", ra.node);
        assert_eq!(
            ra.ambiguity.to_bits(),
            rb.ambiguity.to_bits(),
            "{ctx}: ambiguity of {:?}: {} vs {}",
            ra.node,
            ra.ambiguity,
            rb.ambiguity
        );
        assert_eq!(
            ra.selected, rb.selected,
            "{ctx}: selection of {:?}",
            ra.node
        );
        assert_eq!(
            ra.candidates, rb.candidates,
            "{ctx}: candidate count of {:?}",
            ra.node
        );
        let key = |c: &Option<(xsdf::SenseChoice, f64)>| c.map(|(s, f)| (s, f.to_bits()));
        assert_eq!(
            key(&ra.chosen),
            key(&rb.chosen),
            "{ctx}: chosen sense of {:?}",
            ra.node
        );
    }
}

/// Caching must be score-invisible: the cacheless run, a cold shared-cache
/// run, and a warm re-run over the same cache all produce bit-identical
/// reports.
#[test]
fn cache_on_off_and_warm_runs_are_bitwise_identical() {
    let sn = network();
    let all = cases(sn);
    for case in nucleus(&all, 5) {
        let ctx = case.context();
        let xsdf = Xsdf::new(sn, case.config());
        let tree = xsdf.build_tree(&case.doc);
        let baseline = xsdf.disambiguate_tree(&tree);
        let cached = CombinedSimilarity::with_cache(case.config().similarity, LocalCache::new());
        let cold = xsdf.disambiguate_tree_with(&tree, &cached);
        let warm = xsdf.disambiguate_tree_with(&tree, &cached);
        assert_results_identical(&baseline, &cold, &format!("{ctx} cache cold"));
        assert_results_identical(&baseline, &warm, &format!("{ctx} cache warm"));
    }
}

/// Thread count must be result-invisible: batch runs at 1, 2 and 8
/// threads produce bit-identical reports in the submission order.
#[test]
fn batch_thread_counts_are_bitwise_identical() {
    let sn = network();
    let all = cases(sn);
    let subset = nucleus(&all, 5);
    // One config for the whole batch (batch runs share a pipeline).
    let xsdf = Xsdf::new(sn, subset[0].config());
    let trees: Vec<XmlTree> = subset.iter().map(|c| xsdf.build_tree(&c.doc)).collect();
    let tree_refs: Vec<&XmlTree> = trees.iter().collect();
    let one = xsdf.disambiguate_batch(&tree_refs, 1);
    let two = xsdf.disambiguate_batch(&tree_refs, 2);
    let eight = xsdf.disambiguate_batch(&tree_refs, 8);
    assert_eq!(one.len(), subset.len());
    for (i, case) in subset.iter().enumerate() {
        let ctx = case.context();
        assert_results_identical(&one[i], &two[i], &format!("{ctx} threads 1 vs 2"));
        assert_results_identical(&one[i], &eight[i], &format!("{ctx} threads 1 vs 8"));
    }
}

/// Eviction must be score-invisible too: batch runs under tiny entry and
/// byte budgets — evicting constantly, at 1, 2, and 8 threads — are
/// bit-identical to the cacheless serial reference. A bounded cache may
/// change when scores are recomputed, never what they are.
#[test]
fn bounded_cache_eviction_is_bitwise_invisible() {
    let sn = network();
    let all = cases(sn);
    let subset = nucleus(&all, 5);
    // One config for the whole batch (batch runs share a pipeline).
    let xsdf = Xsdf::new(sn, subset[0].config());
    let sources: Vec<String> = subset.iter().map(|c| to_string_compact(&c.doc)).collect();
    let docs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let reference: Vec<DisambiguationResult> = subset
        .iter()
        .map(|c| xsdf.disambiguate_tree(&xsdf.build_tree(&c.doc)))
        .collect();
    let budgets = [
        runtime::CacheBudget {
            max_entries: 4,
            max_bytes: 0,
        },
        runtime::CacheBudget {
            max_entries: 0,
            max_bytes: 8 * 1024,
        },
    ];
    for budget in budgets {
        for threads in [1usize, 2, 8] {
            let engine = runtime::BatchEngine::new(sn, subset[0].config())
                .threads(threads)
                .cache_budget(budget);
            let report = engine.run(&docs);
            assert!(
                report.metrics.cache_evictions > 0,
                "budget {budget:?} must actually evict for this test to bite"
            );
            for ((case, result), want) in subset.iter().zip(&report.results).zip(&reference) {
                let got = result.as_ref().expect("conformance case parses");
                assert_results_identical(
                    want,
                    got,
                    &format!("{} budget {budget:?} threads {threads}", case.context()),
                );
            }
        }
    }
}

/// Definition 5: spheres are nested in the radius — `S_r(x) ⊆ S_{r+1}(x)`
/// with unchanged distances — and the context vector's support can only
/// grow with them. Checked on both implementations.
#[test]
fn spheres_grow_monotonically_with_radius() {
    let sn = network();
    let all = cases(sn);
    for case in nucleus(&all, 7) {
        let ctx = case.context();
        let xsdf = Xsdf::new(sn, case.config());
        let tree = xsdf.build_tree(&case.doc);
        for node in tree.preorder() {
            let mut prev_len = 0usize;
            for radius in 0..=3u32 {
                let sphere = xml_sphere(&tree, node, radius);
                let reference = ref_sph::xml_sphere(&tree, node, radius);
                let mut opt_sorted: Vec<_> = sphere.clone();
                opt_sorted.sort_unstable();
                let mut ref_sorted = reference;
                ref_sorted.sort_unstable();
                assert_eq!(
                    opt_sorted, ref_sorted,
                    "{ctx}: sphere of {node:?} at radius {radius}"
                );
                assert!(
                    sphere.len() >= prev_len,
                    "{ctx}: sphere of {node:?} shrank at radius {radius}"
                );
                if radius > 0 {
                    let smaller = xml_sphere(&tree, node, radius - 1);
                    for (n, d) in &smaller {
                        assert_eq!(
                            sphere.iter().find(|(m, _)| m == n).map(|(_, d)| d),
                            Some(d),
                            "{ctx}: distance of {n:?} changed from radius {} to {radius}",
                            radius - 1
                        );
                    }
                }
                prev_len = sphere.len();
            }
        }
    }
}

/// Label renaming is a structural no-op: under an injective relabeling,
/// structural ambiguity components, sphere shapes, and XML context
/// vectors (modulo renamed dimensions) are bit-identical — none of them
/// may depend on what the labels *say*, only on where they sit.
#[test]
fn injective_relabeling_preserves_structural_quantities() {
    let sn = network();
    let all = cases(sn);
    for case in nucleus(&all, 7) {
        let ctx = case.context();
        let xsdf = Xsdf::new(sn, case.config());
        let tree = xsdf.build_tree(&case.doc);
        // The suffix keeps the map injective: distinct labels stay
        // distinct, and no renamed label collides with an original.
        let rename = |l: &str| format!("{l}\u{1F}renamed");
        let renamed = tree.relabeled(rename);
        assert_eq!(tree.len(), renamed.len(), "{ctx}: node count");
        for node in tree.preorder() {
            assert_eq!(
                tree.depth(node),
                renamed.depth(node),
                "{ctx}: depth of {node:?}"
            );
            assert_eq!(
                tree.density(node),
                renamed.density(node),
                "{ctx}: density of {node:?}"
            );
            let a = xml_sphere(&tree, node, case.radius);
            let b = xml_sphere(&renamed, node, case.radius);
            assert_eq!(a, b, "{ctx}: sphere of {node:?}");
            let va = xml_context_vector(&tree, node, case.radius);
            let vb = xml_context_vector(&renamed, node, case.radius);
            assert_eq!(va.len(), vb.len(), "{ctx}: vector support of {node:?}");
            for (label, w) in va.iter() {
                let r = vb.get(&rename(label));
                assert_eq!(
                    w.to_bits(),
                    r.to_bits(),
                    "{ctx}: weight of {label:?} at {node:?}: {w} vs {r}"
                );
            }
        }
    }
}

/// Serialize→reparse is a fixpoint: the compact serialization reparses to
/// a document that serializes identically, builds an identical tree, and
/// disambiguates to bit-identical reports.
#[test]
fn serialize_reparse_is_a_fixpoint() {
    let sn = network();
    let all = cases(sn);
    for (i, case) in all.iter().enumerate() {
        let ctx = case.context();
        let s1 = to_string_compact(&case.doc);
        let doc2 = xmltree::parse(&s1)
            .unwrap_or_else(|e| panic!("{ctx}: serialized document must reparse: {e:?}"));
        let s2 = to_string_compact(&doc2);
        assert_eq!(s1, s2, "{ctx}: serialization fixpoint");
        let xsdf = Xsdf::new(sn, case.config());
        let t1 = xsdf.build_tree(&case.doc);
        let t2 = xsdf.build_tree(&doc2);
        assert_eq!(t1.len(), t2.len(), "{ctx}: rebuilt tree size");
        for node in t1.preorder() {
            assert_eq!(t1.label(node), t2.label(node), "{ctx}: label of {node:?}");
            assert_eq!(
                t1.node(node).kind,
                t2.node(node).kind,
                "{ctx}: kind of {node:?}"
            );
            assert_eq!(
                t1.parent(node),
                t2.parent(node),
                "{ctx}: parent of {node:?}"
            );
        }
        // Full-pipeline agreement on a subset (the rebuilt tree is equal
        // node for node, so scoring only needs spot confirmation).
        if i % 9 == 0 {
            let r1 = xsdf.disambiguate_tree(&t1);
            let r2 = xsdf.disambiguate_tree(&t2);
            assert_results_identical(&r1, &r2, &format!("{ctx} reparse"));
        }
    }
}

/// The three vector measures are symmetric and bounded to `[0, 1]` on
/// every real vector pair the sweep produces — the range contract the
/// combined score (Equation 13) relies on.
#[test]
fn vector_measures_are_symmetric_and_bounded() {
    let sn = network();
    let all = cases(sn);
    for case in nucleus(&all, 7) {
        let ctx = case.context();
        let xsdf = Xsdf::new(sn, case.config());
        let tree = xsdf.build_tree(&case.doc);
        let root = xml_context_vector(&tree, tree.root(), case.radius);
        for node in tree.preorder() {
            let v = xml_context_vector(&tree, node, case.radius);
            for measure in [
                VectorSimilarity::Cosine,
                VectorSimilarity::Jaccard,
                VectorSimilarity::Pearson,
            ] {
                let ab = measure.apply(&v, &root);
                let ba = measure.apply(&root, &v);
                // Jaccard accumulates the union in argument order, so
                // symmetry holds to the ulp, not bitwise.
                assert!(
                    (ab - ba).abs() <= 1e-12,
                    "{ctx}: {measure:?} asymmetric at {node:?}: {ab} vs {ba}"
                );
                assert!(
                    (0.0..=1.0).contains(&ab),
                    "{ctx}: {measure:?} out of range at {node:?}: {ab}"
                );
            }
        }
    }
}
