//! Reference semantic similarity (Definition 9 and its three constituent
//! measures) plus the vector measures of footnote 10.
//!
//! Everything here is recomputed from the raw network data on every call:
//! ancestor maps, taxonomy depths, cumulative frequencies, extended-gloss
//! token lists. No precomputed artifact tables, no interning, no caches.

use std::collections::BTreeMap;

use lingproc::{is_stop_word, porter_stem, tokenize_text};
use semnet::{ConceptId, RelationKind, SemanticNetwork};
use semsim::SimilarityWeights;
use xsdf::config::VectorSimilarity;

use super::sphere::{vec_norm, RefVector};

/// All is-a ancestors of a concept with minimal hypernym-path distances,
/// the concept itself at 0 — found by iterating a relax-until-fixpoint
/// walk over upward edges (Hypernym and InstanceHypernym).
pub fn ancestors_with_distance(sn: &SemanticNetwork, c: ConceptId) -> BTreeMap<ConceptId, u32> {
    let mut out: BTreeMap<ConceptId, u32> = BTreeMap::new();
    out.insert(c, 0);
    loop {
        let mut changed = false;
        for (&node, &d) in out.clone().iter() {
            for &(kind, parent) in sn.edges(node) {
                if !kind.is_upward() {
                    continue;
                }
                let better = match out.get(&parent) {
                    None => true,
                    Some(&old) => d + 1 < old,
                };
                if better {
                    out.insert(parent, d + 1);
                    changed = true;
                }
            }
        }
        if !changed {
            return out;
        }
    }
}

/// Taxonomy depth of a concept: roots (no upward edge) are 0; otherwise
/// one more than the *shallowest* parent. Recomputed recursively (the
/// taxonomy is acyclic by construction).
pub fn taxonomy_depth(sn: &SemanticNetwork, c: ConceptId) -> u32 {
    let parents: Vec<ConceptId> = sn
        .edges(c)
        .iter()
        .filter(|(k, _)| k.is_upward())
        .map(|&(_, p)| p)
        .collect();
    match parents.iter().map(|&p| taxonomy_depth(sn, p)).min() {
        None => 0,
        Some(d) => d + 1,
    }
}

/// The lowest common subsumer: the shared is-a ancestor with maximal
/// taxonomy depth, ties broken toward the smallest concept id.
pub fn lowest_common_subsumer(
    sn: &SemanticNetwork,
    a: ConceptId,
    b: ConceptId,
) -> Option<ConceptId> {
    let anc_a = ancestors_with_distance(sn, a);
    let anc_b = ancestors_with_distance(sn, b);
    anc_a
        .keys()
        .filter(|c| anc_b.contains_key(c))
        .copied()
        .max_by_key(|&c| (taxonomy_depth(sn, c), std::cmp::Reverse(c)))
}

/// Wu & Palmer (1994), the paper's `Sim_Edge`:
/// `2·depth(lcs) / (len(a, lcs) + len(b, lcs) + 2·depth(lcs))`.
pub fn wu_palmer(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> f64 {
    if a == b {
        return 1.0;
    }
    let Some(lcs) = lowest_common_subsumer(sn, a, b) else {
        return 0.0;
    };
    let la = ancestors_with_distance(sn, a)
        .get(&lcs)
        .copied()
        .unwrap_or(0) as f64;
    let lb = ancestors_with_distance(sn, b)
        .get(&lcs)
        .copied()
        .unwrap_or(0) as f64;
    let d = taxonomy_depth(sn, lcs) as f64;
    if la + lb + 2.0 * d == 0.0 {
        return 1.0;
    }
    (2.0 * d) / (la + lb + 2.0 * d)
}

/// Cumulative frequency of a concept: its own frequency plus the
/// cumulative frequencies of its direct is-a children (Hyponym and
/// InstanceHyponym edges), recursively.
///
/// Under multiple inheritance this counts a descendant once per distinct
/// downward path — the standard WordNet information-content convention
/// over a DAG, which the network builder follows deliberately. A
/// set-semantics sum (each descendant once) would *not* conform.
pub fn cumulative_frequency(sn: &SemanticNetwork, c: ConceptId) -> u64 {
    let mut sum = sn.concept(c).frequency as u64;
    for &(kind, child) in sn.edges(c) {
        if matches!(kind, RelationKind::Hyponym | RelationKind::InstanceHyponym) {
            sum += cumulative_frequency(sn, child);
        }
    }
    sum
}

/// Information content with add-one smoothing:
/// `IC(c) = −ln((cum_freq(c) + 1) / (total_freq + |C|))`.
pub fn information_content(sn: &SemanticNetwork, c: ConceptId) -> f64 {
    let total: u64 = sn
        .all_concepts()
        .map(|c| sn.concept(c).frequency as u64)
        .sum();
    let p = (cumulative_frequency(sn, c) as f64 + 1.0) / (total as f64 + sn.len() as f64);
    -p.ln()
}

/// Lin (1998), the paper's `Sim_Node`:
/// `2·IC(lcs) / (IC(a) + IC(b))`, clamped into `[0, 1]`.
pub fn lin(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> f64 {
    if a == b {
        return 1.0;
    }
    let Some(lcs) = lowest_common_subsumer(sn, a, b) else {
        return 0.0;
    };
    let ic_lcs = information_content(sn, lcs);
    let denom = information_content(sn, a) + information_content(sn, b);
    if denom <= 0.0 || ic_lcs <= 0.0 {
        return 0.0;
    }
    (2.0 * ic_lcs / denom).clamp(0.0, 1.0)
}

/// The neighbors shared by both concepts (any relation kind), excluding
/// the concepts themselves — the gloss measure's exclusion set.
pub fn shared_neighbors(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> Vec<ConceptId> {
    let targets = |c: ConceptId| -> Vec<ConceptId> {
        let mut out: Vec<ConceptId> = sn.edges(c).iter().map(|&(_, t)| t).collect();
        out.sort_unstable();
        out.dedup();
        out
    };
    targets(a)
        .into_iter()
        .filter(|n| targets(b).contains(n))
        .filter(|&n| n != a && n != b)
        .collect()
}

/// The extended gloss of a concept as a token *string* list: its lemmas,
/// its own gloss, and the glosses of its non-excluded neighbors in edge
/// order (a neighbor reachable through several edges repeats), then
/// stop-filtered and Porter-stemmed. Re-tokenized from scratch per call.
pub fn extended_gloss_tokens(
    sn: &SemanticNetwork,
    c: ConceptId,
    exclude: &[ConceptId],
) -> Vec<String> {
    let concept = sn.concept(c);
    let mut tokens = Vec::new();
    for lemma in &concept.lemmas {
        tokens.extend(tokenize_text(lemma));
    }
    tokens.extend(tokenize_text(&concept.gloss));
    for &(_, neighbor) in sn.edges(c) {
        if !exclude.contains(&neighbor) {
            tokens.extend(tokenize_text(&sn.concept(neighbor).gloss));
        }
    }
    tokens.retain(|t| !is_stop_word(t));
    tokens.iter_mut().for_each(|t| *t = porter_stem(t));
    tokens
}

/// The greedy Banerjee–Pedersen phrase overlap over token strings:
/// repeatedly find the longest common contiguous run (first maximal run
/// in scan order on ties), add its squared length, erase both
/// occurrences, until no common token remains.
pub fn overlap_score(a: &[String], b: &[String]) -> f64 {
    let mut a: Vec<Option<&String>> = a.iter().map(Some).collect();
    let mut b: Vec<Option<&String>> = b.iter().map(Some).collect();
    let mut score = 0.0;
    loop {
        // Longest common run ending at each (i, j), strictly-greater
        // updates so the first maximal run in row-major order wins —
        // the same tie-break as the optimized dynamic program.
        let mut best = (0usize, 0usize, 0usize);
        for i in 0..a.len() {
            for j in 0..b.len() {
                let mut len = 0;
                while i >= len && j >= len && a[i - len].is_some() && a[i - len] == b[j - len] {
                    len += 1;
                }
                if len > best.0 {
                    best = (len, i + 1 - len, j + 1 - len);
                }
            }
        }
        let (len, ai, bi) = best;
        if len == 0 {
            return score;
        }
        score += (len * len) as f64;
        for k in 0..len {
            a[ai + k] = None;
            b[bi + k] = None;
        }
    }
}

/// The saturation constant of the gloss normalization (a raw overlap of
/// 16 maps to 0.5).
pub const GLOSS_SATURATION: f64 = 16.0;

/// The paper's `Sim_Gloss`: normalized extended gloss overlaps, with
/// neighbors shared by both concepts contributing to neither extended
/// gloss.
pub fn extended_gloss_overlap(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> f64 {
    if a == b {
        return 1.0;
    }
    let shared = shared_neighbors(sn, a, b);
    let ga = extended_gloss_tokens(sn, a, &shared);
    let gb = extended_gloss_tokens(sn, b, &shared);
    if !shared.is_empty() && (ga.is_empty() || gb.is_empty()) {
        return 0.0;
    }
    let cross = overlap_score(&ga, &gb);
    cross / (cross + GLOSS_SATURATION)
}

/// Definition 9: the weighted combination of the three measures, clamped
/// into `[0, 1]`. Zero-weighted measures are not evaluated (mirroring
/// the optimized short-circuit, which changes nothing numerically).
pub fn combined_similarity(
    sn: &SemanticNetwork,
    w: SimilarityWeights,
    a: ConceptId,
    b: ConceptId,
) -> f64 {
    let mut score = 0.0;
    if w.edge > 0.0 {
        score += w.edge * wu_palmer(sn, a, b);
    }
    if w.node > 0.0 {
        score += w.node * lin(sn, a, b);
    }
    if w.gloss > 0.0 {
        score += w.gloss * extended_gloss_overlap(sn, a, b);
    }
    score.clamp(0.0, 1.0)
}

/// Cosine similarity over reference vectors, clamped into `[-1, 1]`.
pub fn cosine(a: &RefVector, b: &RefVector) -> f64 {
    let denom = vec_norm(a) * vec_norm(b);
    if denom == 0.0 {
        return 0.0;
    }
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small
        .iter()
        .map(|(l, w)| w * big.get(l).copied().unwrap_or(0.0))
        .sum();
    (dot / denom).clamp(-1.0, 1.0)
}

/// Weighted Jaccard: `Σ min / Σ max` over the union of dimensions.
pub fn jaccard(a: &RefVector, b: &RefVector) -> f64 {
    let mut min_sum = 0.0;
    let mut max_sum = 0.0;
    for (l, &wa) in a {
        let wb = b.get(l).copied().unwrap_or(0.0);
        min_sum += wa.min(wb);
        max_sum += wa.max(wb);
    }
    for (l, &wb) in b {
        if a.get(l).copied().unwrap_or(0.0) == 0.0 {
            max_sum += wb;
        }
    }
    if max_sum == 0.0 {
        0.0
    } else {
        min_sum / max_sum
    }
}

/// Pearson correlation over the union of dimensions, in `[-1, 1]`.
pub fn pearson(a: &RefVector, b: &RefVector) -> f64 {
    let labels: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    let n = labels.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let xs: Vec<f64> = labels
        .iter()
        .map(|l| a.get(*l).copied().unwrap_or(0.0))
        .collect();
    let ys: Vec<f64> = labels
        .iter()
        .map(|l| b.get(*l).copied().unwrap_or(0.0))
        .collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

/// Footnote 10's vector measure, mapped into `[0, 1]` with the
/// degenerate-input contract: a zero or empty vector scores exactly 0
/// under every measure.
pub fn apply_measure(measure: VectorSimilarity, a: &RefVector, b: &RefVector) -> f64 {
    if vec_norm(a) == 0.0 || vec_norm(b) == 0.0 {
        return 0.0;
    }
    match measure {
        VectorSimilarity::Cosine => cosine(a, b).clamp(0.0, 1.0),
        VectorSimilarity::Jaccard => jaccard(a, b),
        VectorSimilarity::Pearson => (pearson(a, b) + 1.0) / 2.0,
    }
}
