//! Reference linguistic pre-processing (Section 3.2) and sense-candidate
//! resolution (Section 3.5 inputs).
//!
//! Transcribed from the paper's three-phase pipeline — tokenization,
//! stop-word removal, conditional stemming — plus its compound-word
//! policy: a multi-token tag name is first tried as one expression against
//! the reference lexicon; only when no single concept matches are the
//! tokens kept separate inside one node label, so one sense *pair* is
//! eventually assigned (contrast with \[29, 56\]).
//!
//! Only the four linguistic primitives are borrowed from `lingproc`
//! (`split_identifier`, `tokenize_text`, `is_stop_word`, `porter_stem`);
//! every policy above them is re-derived here, including the
//! WordNet-morphy-style plural detachment.

use lingproc::{is_stop_word, porter_stem, split_identifier, tokenize_text};
use semnet::{ConceptId, PartOfSpeech, SemanticNetwork};
use xmltree::NodeKind;

/// A processed tag-name label: one lookup token, or an unmatched
/// two-token compound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefLabel {
    /// Single token (or multi-word expression matching one concept).
    Single(String),
    /// Two content tokens with no single-concept match.
    Compound(String, String),
}

impl RefLabel {
    /// The display form used as the tree-node label.
    pub fn display(&self) -> String {
        match self {
            Self::Single(t) => t.clone(),
            Self::Compound(a, b) => format!("{a} {b}"),
        }
    }
}

/// WordNet-morphy noun detachment rules: `-ies → -y`, `-es → -`, `-s → -`.
pub fn morphy_variants(token: &str) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(stem) = token.strip_suffix("ies") {
        if !stem.is_empty() {
            out.push(format!("{stem}y"));
        }
    }
    if let Some(stem) = token.strip_suffix("es") {
        if stem.len() > 1 {
            out.push(stem.to_string());
        }
    }
    if let Some(stem) = token.strip_suffix('s') {
        if stem.len() > 1 && !stem.ends_with('s') {
            out.push(stem.to_string());
        }
    }
    out
}

/// Conditional stemming: a token known to the lexicon is kept verbatim;
/// an unknown one tries plural detachment, then the Porter stem, and
/// falls back to itself.
pub fn normalize_token(sn: &SemanticNetwork, token: &str) -> String {
    if sn.has_word(token) {
        return token.to_string();
    }
    for variant in morphy_variants(token) {
        if sn.has_word(&variant) {
            return variant;
        }
    }
    let stemmed = porter_stem(token);
    if stemmed != token && sn.has_word(&stemmed) {
        stemmed
    } else {
        token.to_string()
    }
}

/// Processes an element/attribute tag name (Section 3.2's three cases).
/// `None` when the name has no alphabetic content.
pub fn process_tag_name(sn: &SemanticNetwork, name: &str) -> Option<RefLabel> {
    let tokens = split_identifier(name);
    if tokens.is_empty() {
        return None;
    }
    if tokens.len() == 1 {
        return Some(RefLabel::Single(normalize_token(sn, &tokens[0])));
    }
    let joined = tokens.join(" ");
    if sn.has_word(&joined) {
        return Some(RefLabel::Single(joined));
    }
    let mut content: Vec<String> = tokens
        .iter()
        .filter(|t| !is_stop_word(t))
        .map(|t| normalize_token(sn, t))
        .collect();
    if content.is_empty() {
        content = tokens.iter().map(|t| normalize_token(sn, t)).collect();
    }
    Some(if content.len() == 1 {
        RefLabel::Single(content.remove(0))
    } else {
        RefLabel::Compound(content[0].clone(), content[1].clone())
    })
}

/// The tree-node label a tag name produces (falls back to the raw name
/// when the name has no alphabetic content).
pub fn label_for_tag_name(sn: &SemanticNetwork, name: &str) -> String {
    match process_tag_name(sn, name) {
        Some(label) => label.display(),
        None => name.to_string(),
    }
}

/// Processes a text value into word tokens, one leaf node each.
pub fn process_text_value(sn: &SemanticNetwork, text: &str) -> Vec<String> {
    tokenize_text(text)
        .into_iter()
        .filter(|t| !is_stop_word(t))
        .map(|t| normalize_token(sn, &t))
        .collect()
}

/// Sense lookup with the normalization fallback chain: the word as given,
/// its lowercase form, plural detachment, then the Porter stem.
pub fn senses_normalized(sn: &SemanticNetwork, word: &str) -> Vec<ConceptId> {
    let direct = sn.senses(word);
    if !direct.is_empty() {
        return direct.to_vec();
    }
    let lower = word.to_lowercase();
    let lowered = sn.senses(&lower);
    if !lowered.is_empty() {
        return lowered.to_vec();
    }
    for variant in morphy_variants(&lower) {
        let senses = sn.senses(&variant);
        if !senses.is_empty() {
            return senses.to_vec();
        }
    }
    sn.senses(&porter_stem(&lower)).to_vec()
}

/// The candidate senses of one node label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefCandidates {
    /// The label is unknown to the network.
    Unknown,
    /// Senses of a single token/expression.
    Single(Vec<ConceptId>),
    /// Per-token sense lists of an unmatched compound.
    Compound {
        /// Senses of the first token.
        first: Vec<ConceptId>,
        /// Senses of the second token.
        second: Vec<ConceptId>,
    },
}

impl RefCandidates {
    /// Number of alternative readings (pair combinations for compounds).
    pub fn candidate_count(&self) -> usize {
        match self {
            Self::Unknown => 0,
            Self::Single(s) => s.len(),
            Self::Compound { first, second } => first.len().max(1) * second.len().max(1),
        }
    }
}

/// Resolves the candidate senses of a processed node label.
pub fn candidates_for_label(sn: &SemanticNetwork, label: &str) -> RefCandidates {
    let direct = senses_normalized(sn, label);
    if !direct.is_empty() {
        return RefCandidates::Single(direct);
    }
    if let Some((a, b)) = label.split_once(' ') {
        if label.matches(' ').count() == 1 {
            let first = senses_normalized(sn, a);
            let second = senses_normalized(sn, b);
            if first.is_empty() && second.is_empty() {
                return RefCandidates::Unknown;
            }
            return RefCandidates::Compound { first, second };
        }
    }
    RefCandidates::Unknown
}

/// Disambiguation candidates: tag names are nominal phrases, so noun (and
/// named-instance) senses are preferred when any exist; value tokens keep
/// every part of speech.
pub fn disambiguation_candidates(
    sn: &SemanticNetwork,
    label: &str,
    kind: NodeKind,
) -> RefCandidates {
    let all = candidates_for_label(sn, label);
    if kind == NodeKind::ValueToken {
        return all;
    }
    let keep_nouns = |senses: Vec<ConceptId>| -> Vec<ConceptId> {
        let nouns: Vec<ConceptId> = senses
            .iter()
            .copied()
            .filter(|&c| sn.concept(c).pos == PartOfSpeech::Noun)
            .collect();
        if nouns.is_empty() {
            senses
        } else {
            nouns
        }
    };
    match all {
        RefCandidates::Unknown => RefCandidates::Unknown,
        RefCandidates::Single(s) => RefCandidates::Single(keep_nouns(s)),
        RefCandidates::Compound { first, second } => RefCandidates::Compound {
            first: keep_nouns(first),
            second: keep_nouns(second),
        },
    }
}
