//! Reference ambiguity measures (Section 3.3): Propositions 1–3,
//! Definition 3, and target selection.
//!
//! All tree statistics (depth, density, their maxima) are recomputed from
//! the raw parent/child structure on every call — nothing is read from
//! the tree's precomputed fields.

use semnet::SemanticNetwork;
use xmltree::{NodeId, XmlTree};
use xsdf::config::{AmbiguityWeights, ThresholdPolicy};

use super::preprocess::{candidates_for_label, RefCandidates};

/// Depth of a node in edges, by walking parents up to the root.
pub fn depth(tree: &XmlTree, node: NodeId) -> u32 {
    let mut d = 0;
    let mut cur = node;
    while let Some(p) = tree.parent(cur) {
        d += 1;
        cur = p;
    }
    d
}

/// Density of a node: the number of *distinct* child labels.
pub fn density(tree: &XmlTree, node: NodeId) -> usize {
    let mut labels: Vec<&str> = tree.children(node).iter().map(|&c| tree.label(c)).collect();
    labels.sort_unstable();
    labels.dedup();
    labels.len()
}

/// The deepest node's depth, over the whole tree.
pub fn max_depth(tree: &XmlTree) -> u32 {
    tree.preorder().map(|n| depth(tree, n)).max().unwrap_or(0)
}

/// The densest node's density, over the whole tree.
pub fn max_density(tree: &XmlTree) -> usize {
    tree.preorder().map(|n| density(tree, n)).max().unwrap_or(0)
}

/// `Max(senses(SN))` recomputed from the concept table: the largest
/// number of concepts any single lemma participates in.
pub fn max_polysemy(sn: &SemanticNetwork) -> usize {
    let mut lemmas: Vec<&str> = Vec::new();
    for c in sn.all_concepts() {
        for lemma in &sn.concept(c).lemmas {
            lemmas.push(lemma);
        }
    }
    lemmas
        .iter()
        .map(|lemma| sn.senses(lemma).len())
        .max()
        .unwrap_or(0)
}

/// Proposition 1: `Amb_Polysemy = (|senses| − 1) / (Max(senses) − 1)`.
pub fn amb_polysemy(sense_count: usize, max_polysemy: usize) -> f64 {
    if max_polysemy <= 1 || sense_count == 0 {
        return 0.0;
    }
    (sense_count as f64 - 1.0) / (max_polysemy as f64 - 1.0)
}

/// Proposition 2: `Amb_Depth = 1 − depth/max_depth`.
pub fn amb_depth(tree: &XmlTree, node: NodeId) -> f64 {
    let max = max_depth(tree);
    if max == 0 {
        return 1.0;
    }
    1.0 - depth(tree, node) as f64 / max as f64
}

/// Proposition 3: `Amb_Density = 1 − density/max_density`.
pub fn amb_density(tree: &XmlTree, node: NodeId) -> f64 {
    let max = max_density(tree);
    if max == 0 {
        return 1.0;
    }
    1.0 - density(tree, node) as f64 / max as f64
}

/// Definition 3 for a known sense count.
pub fn ambiguity_degree_raw(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    node: NodeId,
    sense_count: usize,
    w: AmbiguityWeights,
) -> f64 {
    let pol = amb_polysemy(sense_count, max_polysemy(sn));
    let dep = amb_depth(tree, node);
    let den = amb_density(tree, node);
    let numerator = w.polysemy * pol;
    let denominator = w.depth * (1.0 - dep) + w.density * (1.0 - den) + 1.0;
    numerator / denominator
}

/// Definition 3, resolving the node label's senses; compounds average the
/// two tokens' degrees (Section 3.3's special case).
pub fn ambiguity_degree(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    node: NodeId,
    w: AmbiguityWeights,
) -> f64 {
    match candidates_for_label(sn, tree.label(node)) {
        RefCandidates::Unknown => 0.0,
        RefCandidates::Single(senses) => ambiguity_degree_raw(sn, tree, node, senses.len(), w),
        RefCandidates::Compound { first, second } => {
            let a = ambiguity_degree_raw(sn, tree, node, first.len(), w);
            let b = ambiguity_degree_raw(sn, tree, node, second.len(), w);
            (a + b) / 2.0
        }
    }
}

/// One node's reference selection outcome.
#[derive(Debug, Clone)]
pub struct RefSelection {
    /// The assessed node.
    pub node: NodeId,
    /// Its `Amb_Deg` value.
    pub degree: f64,
    /// Whether it meets the threshold (and has candidate senses at all).
    pub selected: bool,
}

/// The threshold a policy resolves to over a tree (the `Auto` mean runs
/// over nodes with at least one candidate sense).
pub fn resolve_threshold(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    w: AmbiguityWeights,
    policy: ThresholdPolicy,
) -> f64 {
    match policy {
        ThresholdPolicy::Fixed(t) => t,
        ThresholdPolicy::Auto => {
            let eligible: Vec<f64> = tree
                .preorder()
                .filter(|&n| candidates_for_label(sn, tree.label(n)).candidate_count() > 0)
                .map(|n| ambiguity_degree(sn, tree, n, w))
                .collect();
            if eligible.is_empty() {
                0.0
            } else {
                eligible.iter().sum::<f64>() / eligible.len() as f64
            }
        }
    }
}

/// Section 3.3 target selection: every node's degree, selected iff it has
/// candidate senses and `Amb_Deg ≥ Thresh_Amb`.
pub fn select_targets(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    w: AmbiguityWeights,
    policy: ThresholdPolicy,
) -> Vec<RefSelection> {
    let threshold = resolve_threshold(sn, tree, w, policy);
    tree.preorder()
        .map(|node| {
            let degree = ambiguity_degree(sn, tree, node, w);
            let has_candidates = candidates_for_label(sn, tree.label(node)).candidate_count() > 0;
            RefSelection {
                node,
                degree,
                selected: has_candidates && degree >= threshold,
            }
        })
        .collect()
}
