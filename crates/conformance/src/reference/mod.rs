//! Straight-from-the-paper reference implementations.
//!
//! Each submodule transcribes one section of the paper with no regard for
//! speed: no caches, no interning, no precomputed artifacts, no scratch
//! reuse. The differential tests in this crate compare these against the
//! optimized implementations in `lingproc`, `xmltree`, `semnet`, `semsim`
//! and `xsdf`.

pub mod ambiguity;
pub mod preprocess;
pub mod scoring;
pub mod similarity;
pub mod sphere;
