//! Reference disambiguation scoring: the concept-based score (Definition
//! 8, Equation 10), the context-based score (Definition 10, Equation 12),
//! the combined score (Equation 13), and the target's final sense choice
//! with the pipeline's exact tie-breaking and annotation gate.

use semnet::graph::RelationFilter;
use semnet::{ConceptId, SemanticNetwork};
use xmltree::{NodeId, XmlTree};
use xsdf::config::XsdfConfig;
use xsdf::SenseChoice;

use super::preprocess::{disambiguation_candidates, RefCandidates};
use super::similarity::apply_measure;
use super::sphere::{
    compound_concept_context_vector, concept_context_vector, xml_context_vector, xml_sphere,
};

/// A pairwise concept similarity `Sim(s_p, s_q, S̄N)` — Definition 9, or
/// any stand-in the harness supplies (e.g. a memoizing wrapper around the
/// pure reference, to keep differential sweeps affordable without adding
/// caching to the reference itself).
pub type SimFn<'a> = dyn FnMut(ConceptId, ConceptId) -> f64 + 'a;

/// One sphere context node resolved for Definition 8: its vector weight
/// and candidate sense lists (two lists for a compound context label).
struct ContextEntry {
    weight: f64,
    senses: Vec<ConceptId>,
    second_senses: Option<Vec<ConceptId>>,
}

/// Resolves the sphere context entries and Definition 8's `|S_d(x)|` —
/// the center (ring `R_0 = {x}`) plus all context nodes. Context nodes
/// with no known senses contribute no entry but still count toward the
/// cardinality.
fn context_entries(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    target: NodeId,
    radius: u32,
) -> (Vec<ContextEntry>, usize) {
    let sphere = xml_sphere(tree, target, radius);
    let vector = xml_context_vector(tree, target, radius);
    let cardinality = sphere.len() + 1;
    let mut entries = Vec::new();
    for (node, _) in sphere {
        let label = tree.label(node);
        let weight = vector.get(label).copied().unwrap_or(0.0);
        match disambiguation_candidates(sn, label, tree.node(node).kind) {
            RefCandidates::Unknown => {}
            RefCandidates::Single(senses) => entries.push(ContextEntry {
                weight,
                senses,
                second_senses: None,
            }),
            RefCandidates::Compound { first, second } => entries.push(ContextEntry {
                weight,
                senses: first,
                second_senses: Some(second),
            }),
        }
    }
    (entries, cardinality)
}

/// `Max_j Sim(candidate, s_j^i)` over one context entry's senses; a
/// compound context label averages its two tokens' best similarities,
/// falling back to the non-empty side when one token is unknown.
fn max_sim_with(entry: &ContextEntry, score_of: &mut dyn FnMut(ConceptId) -> f64) -> f64 {
    let best_first = entry
        .senses
        .iter()
        .map(|&s| score_of(s))
        .fold(0.0f64, f64::max);
    match &entry.second_senses {
        None => best_first,
        Some(second) => {
            let best_second = second.iter().map(|&s| score_of(s)).fold(0.0f64, f64::max);
            if entry.senses.is_empty() {
                best_second
            } else if second.is_empty() {
                best_first
            } else {
                (best_first + best_second) / 2.0
            }
        }
    }
}

/// `Concept_Score(s_p, S_d(x), S̄N)` of Definition 8.
pub fn concept_score_single(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    target: NodeId,
    radius: u32,
    candidate: ConceptId,
    sim: &mut SimFn,
) -> f64 {
    let (entries, cardinality) = context_entries(sn, tree, target, radius);
    let total: f64 = entries
        .iter()
        .map(|e| max_sim_with(e, &mut |s| sim(candidate, s)) * e.weight)
        .sum();
    (total / cardinality as f64).clamp(0.0, 1.0)
}

/// `Concept_Score((s_p, s_q), S_d(x), S̄N)` of Equation 10: each context
/// comparison averages the two target token senses' similarities.
pub fn concept_score_pair(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    target: NodeId,
    radius: u32,
    first: ConceptId,
    second: ConceptId,
    sim: &mut SimFn,
) -> f64 {
    let (entries, cardinality) = context_entries(sn, tree, target, radius);
    let total: f64 = entries
        .iter()
        .map(|e| max_sim_with(e, &mut |s| (sim(first, s) + sim(second, s)) / 2.0) * e.weight)
        .sum();
    (total / cardinality as f64).clamp(0.0, 1.0)
}

/// `Context_Score(s_p, S_d(x), SN)` of Definition 10: the vector measure
/// over the target's XML context vector and the candidate's semantic
/// context vector (all relation kinds crossed).
pub fn context_score_single(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    target: NodeId,
    cfg: &XsdfConfig,
    candidate: ConceptId,
) -> f64 {
    let xml = xml_context_vector(tree, target, cfg.radius);
    let concept = concept_context_vector(sn, candidate, cfg.radius, &RelationFilter::All);
    apply_measure(cfg.vector_similarity, &xml, &concept)
}

/// `Context_Score((s_p, s_q))` over Equation 12's union-sphere vector.
pub fn context_score_pair(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    target: NodeId,
    cfg: &XsdfConfig,
    first: ConceptId,
    second: ConceptId,
) -> f64 {
    let xml = xml_context_vector(tree, target, cfg.radius);
    let concept =
        compound_concept_context_vector(sn, first, second, cfg.radius, &RelationFilter::All);
    apply_measure(cfg.vector_similarity, &xml, &concept)
}

/// Scores every candidate sense of a selected target and returns the
/// winning sense with its Equation 13 combined score, mirroring the
/// pipeline's determinism contract exactly:
///
/// * `Single` candidates keep the **first** maximum;
/// * the compound one-token-unknown fallback keeps the **first** maximum
///   (it routes through the same single-sense loop as plain candidates —
///   a historical keep-last divergence here was a pipeline bug, fixed
///   together with this reference);
/// * compound pair loops keep the **first** maximum;
/// * the annotation gate admits the winner only when its score is
///   strictly above `min_score`, or the label has exactly one reading.
///
/// Requires `DistancePolicy::EdgeCount` (the paper's distance; weighted
/// policies are an engineering extension outside this reference).
pub fn score_target(
    sn: &SemanticNetwork,
    tree: &XmlTree,
    target: NodeId,
    cfg: &XsdfConfig,
    sim: &mut SimFn,
) -> Option<(SenseChoice, f64)> {
    assert_eq!(
        cfg.distance,
        xmltree::distance::DistancePolicy::EdgeCount,
        "the scoring reference covers the paper's edge-count distance only"
    );
    let (w_concept, w_context) = cfg.process.weights();
    let label = tree.label(target);
    let candidates = disambiguation_candidates(sn, label, tree.node(target).kind);
    let candidate_count = candidates.candidate_count();

    let combined_single = |s: ConceptId, sim: &mut SimFn| -> f64 {
        let c = if w_concept > 0.0 {
            concept_score_single(sn, tree, target, cfg.radius, s, sim)
        } else {
            0.0
        };
        let x = if w_context > 0.0 {
            context_score_single(sn, tree, target, cfg, s)
        } else {
            0.0
        };
        w_concept * c + w_context * x
    };

    let best = match &candidates {
        RefCandidates::Unknown => None,
        RefCandidates::Single(senses) => {
            let mut best: Option<(SenseChoice, f64)> = None;
            for &s in senses {
                let score = combined_single(s, sim);
                if best.is_none() || score > best.as_ref().unwrap().1 {
                    best = Some((SenseChoice::Single(s), score));
                }
            }
            best
        }
        RefCandidates::Compound { first, second } => {
            let one_sided = |senses: &[ConceptId], sim: &mut SimFn| {
                let mut best: Option<(SenseChoice, f64)> = None;
                for &s in senses {
                    let score = combined_single(s, sim);
                    if best.is_none() || score > best.as_ref().unwrap().1 {
                        best = Some((SenseChoice::Single(s), score));
                    }
                }
                best
            };
            if first.is_empty() {
                one_sided(second, sim)
            } else if second.is_empty() {
                one_sided(first, sim)
            } else {
                let mut best: Option<(SenseChoice, f64)> = None;
                for &a in first {
                    for &b in second {
                        let c = if w_concept > 0.0 {
                            concept_score_pair(sn, tree, target, cfg.radius, a, b, sim)
                        } else {
                            0.0
                        };
                        let x = if w_context > 0.0 {
                            context_score_pair(sn, tree, target, cfg, a, b)
                        } else {
                            0.0
                        };
                        let score = w_concept * c + w_context * x;
                        if best.is_none() || score > best.as_ref().unwrap().1 {
                            best = Some((SenseChoice::Pair(a, b), score));
                        }
                    }
                }
                best
            }
        }
    };

    best.filter(|&(_, score)| score > cfg.min_score || candidate_count == 1)
}
