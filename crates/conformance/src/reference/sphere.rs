//! Reference sphere neighborhoods and context vectors (Section 3.4,
//! Definitions 4–7, and the semantic-network side of Section 3.5.2 with
//! Equation 12's compound union sphere).

use std::collections::BTreeMap;

use semnet::graph::RelationFilter;
use semnet::{ConceptId, SemanticNetwork};
use xmltree::{NodeId, XmlTree};

/// A plain labeled vector: dimension label → coordinate. No interning,
/// no sharing; built fresh on every call.
pub type RefVector = BTreeMap<String, f64>;

/// Adds `w` to the coordinate of `label`.
pub fn vec_add(v: &mut RefVector, label: &str, w: f64) {
    *v.entry(label.to_string()).or_insert(0.0) += w;
}

/// The Euclidean norm of a reference vector.
pub fn vec_norm(v: &RefVector) -> f64 {
    v.values().map(|w| w * w).sum::<f64>().sqrt()
}

/// The structural proximity factor of Definition 7:
/// `Struct(x_i) = 1 − Dist(x, x_i)/(d + 1)`.
pub fn struct_factor(dist: u32, radius: u32) -> f64 {
    1.0 - dist as f64 / (radius as f64 + 1.0)
}

/// The number of edges between two tree nodes — the length of the unique
/// connecting path, found by breadth-first search over parent, children,
/// and hyperlink neighbors. `None` when no path exists within the tree.
pub fn node_distance(tree: &XmlTree, a: NodeId, b: NodeId) -> Option<u32> {
    if a == b {
        return Some(0);
    }
    let mut dist: Vec<Option<u32>> = vec![None; tree.len()];
    dist[a.index()] = Some(0);
    let mut frontier = vec![a];
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for node in frontier {
            let mut neighbors: Vec<NodeId> = Vec::new();
            if let Some(p) = tree.parent(node) {
                neighbors.push(p);
            }
            neighbors.extend_from_slice(tree.children(node));
            neighbors.extend(tree.link_neighbors(node));
            for n in neighbors {
                if dist[n.index()].is_none() {
                    dist[n.index()] = Some(d);
                    if n == b {
                        return Some(d);
                    }
                    next.push(n);
                }
            }
        }
        frontier = next;
    }
    None
}

/// The sphere `S_d(x)` of Definition 5 — every node within `radius` edges
/// of the center, excluding the center itself — computed the slow way:
/// one full [`node_distance`] search per candidate node, in preorder.
pub fn xml_sphere(tree: &XmlTree, center: NodeId, radius: u32) -> Vec<(NodeId, u32)> {
    tree.preorder()
        .filter(|&n| n != center)
        .filter_map(|n| match node_distance(tree, center, n) {
            Some(d) if d <= radius => Some((n, d)),
            _ => None,
        })
        .collect()
}

/// The ring `R_d(x)` of Definition 4: nodes at exactly distance `d`.
pub fn xml_ring(tree: &XmlTree, center: NodeId, d: u32) -> Vec<NodeId> {
    xml_sphere(tree, center, d)
        .into_iter()
        .filter(|&(_, dist)| dist == d)
        .map(|(n, _)| n)
        .collect()
}

/// The XML context vector `V_d(x)` of Definitions 6–7. Per Definition 5
/// the sphere includes the degenerate ring `R_0 = {x}`, so the center's
/// own label enters at `Struct = 1` and counts toward `|S_d(x)|`:
///
/// ```text
/// Freq(ℓ) = Σ Struct(x_i)  over sphere nodes labeled ℓ
/// w(ℓ)    = 2·Freq(ℓ) / (|S_d(x)| + 1)
/// ```
pub fn xml_context_vector(tree: &XmlTree, center: NodeId, radius: u32) -> RefVector {
    let context = xml_sphere(tree, center, radius);
    let cardinality = context.len() as f64 + 1.0;
    let scale = 2.0 / (cardinality + 1.0);
    let mut v = RefVector::new();
    vec_add(&mut v, tree.label(center), struct_factor(0, radius) * scale);
    for (node, dist) in context {
        vec_add(
            &mut v,
            tree.label(node),
            struct_factor(dist, radius) * scale,
        );
    }
    v
}

/// The semantic sphere of a concept: concepts within `d` crossable links,
/// excluding the center, with minimal link distances — found by
/// breadth-first expansion over the typed adjacency.
pub fn concept_sphere(
    sn: &SemanticNetwork,
    center: ConceptId,
    d: u32,
    filter: &RelationFilter,
) -> Vec<(ConceptId, u32)> {
    let allows = |kind: semnet::RelationKind| match filter {
        RelationFilter::All => true,
        RelationFilter::Only(kinds) => kinds.contains(&kind),
    };
    let mut seen: Vec<ConceptId> = vec![center];
    let mut out: Vec<(ConceptId, u32)> = Vec::new();
    let mut frontier = vec![center];
    let mut dist = 0u32;
    while dist < d && !frontier.is_empty() {
        dist += 1;
        let mut next = Vec::new();
        for node in frontier {
            for &(kind, neighbor) in sn.edges(node) {
                if allows(kind) && !seen.contains(&neighbor) {
                    seen.push(neighbor);
                    out.push((neighbor, dist));
                    next.push(neighbor);
                }
            }
        }
        frontier = next;
    }
    out
}

/// The semantic-network context vector `V_d(s_p)` of Section 3.5.2: the
/// same Definition 6–7 construction with rings built from semantic
/// relations, every lemma of a concept contributing to its dimension
/// (concept labels are pre-processed, footnote 9).
pub fn concept_context_vector(
    sn: &SemanticNetwork,
    center: ConceptId,
    radius: u32,
    filter: &RelationFilter,
) -> RefVector {
    let sphere = concept_sphere(sn, center, radius, filter);
    let cardinality = sphere.len() as f64 + 1.0;
    let scale = 2.0 / (cardinality + 1.0);
    let mut v = RefVector::new();
    for lemma in &sn.concept(center).lemmas {
        vec_add(&mut v, lemma, struct_factor(0, radius) * scale);
    }
    for (c, dist) in sphere {
        let w = struct_factor(dist, radius) * scale;
        for lemma in &sn.concept(c).lemmas {
            vec_add(&mut v, lemma, w);
        }
    }
    v
}

/// Equation 12's compound-sense context vector `V_d(s_p, s_q)`, built
/// from the union sphere `S_d(s_p) ∪ S_d(s_q)` (each concept at its
/// minimal distance; the two token senses themselves at distance 0).
pub fn compound_concept_context_vector(
    sn: &SemanticNetwork,
    first: ConceptId,
    second: ConceptId,
    radius: u32,
    filter: &RelationFilter,
) -> RefVector {
    let mut union: Vec<(ConceptId, u32)> = vec![(first, 0), (second, 0)];
    union.extend(concept_sphere(sn, first, radius, filter));
    union.extend(concept_sphere(sn, second, radius, filter));
    union.sort_by_key(|&(c, d)| (c, d));
    union.dedup_by_key(|&mut (c, _)| c);
    let cardinality = union.len() as f64;
    let scale = 2.0 / (cardinality + 1.0);
    let mut v = RefVector::new();
    for (c, dist) in union {
        let w = struct_factor(dist, radius) * scale;
        for lemma in &sn.concept(c).lemmas {
            vec_add(&mut v, lemma, w);
        }
    }
    v
}
