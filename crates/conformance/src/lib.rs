//! # conformance
//!
//! Paper-conformance oracle for the XSDF reproduction (*Resolving XML
//! Semantic Ambiguity*, EDBT 2015).
//!
//! The [`reference`] module reimplements every formula of the paper
//! straight from its definitions — linguistic pre-processing (Section
//! 3.2), ambiguity degrees (Propositions 1–3, Definition 3), sphere
//! neighborhoods and context vectors (Definitions 4–7), the three
//! similarity measures and their combination (Definitions 8–9), the
//! context-based score (Definition 10, Equation 12), and the combined
//! score (Equation 13) — written for clarity, with **zero** caching,
//! interning, or scratch-buffer reuse. It deliberately shares no code
//! with the optimized crates beyond the four linguistic primitives
//! (`split_identifier`, `tokenize_text`, `is_stop_word`, `porter_stem`)
//! and raw data accessors of the semantic network.
//!
//! The [`harness`] module drives both implementations over the `corpus`
//! generators (normal and pathological documents) and the integration
//! tests assert agreement: bit-for-bit where the optimized path claims
//! it (cache on/off, thread counts, `EdgeCount` weighted vs unweighted)
//! and `≤ 1e-12` elsewhere, plus metamorphic invariants (sphere
//! monotonicity in the radius, label-renaming equivariance,
//! serialize → reparse fixpoints).
//!
//! Run with `cargo test -p conformance`; set `XSDF_CONFORMANCE_QUICK=1`
//! to shrink the corpus sweep for fast CI turnarounds. Every failure
//! message carries the generator seed and document identity needed to
//! reproduce it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod reference;
