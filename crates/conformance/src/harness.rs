//! The differential-test harness: a deterministic document sweep over the
//! corpus generators (normal and pathological), each document paired with
//! cycling pipeline parameters so radii 1–3, all three vector measures,
//! and all three disambiguation processes get coverage, plus the failure
//! context needed to reproduce any divergence from its printed message.

use corpus::{pathological, Corpus};
use semnet::SemanticNetwork;
use xmltree::Document;
use xsdf::config::{DisambiguationProcess, VectorSimilarity, XsdfConfig};

/// `true` when `XSDF_CONFORMANCE_QUICK` is set to anything but `0`: the
/// sweep shrinks to one corpus seed for fast CI turnarounds.
pub fn quick() -> bool {
    match std::env::var("XSDF_CONFORMANCE_QUICK") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// The corpus seeds of the sweep (one in quick mode).
pub fn seeds() -> Vec<u64> {
    if quick() {
        vec![41]
    } else {
        vec![41, 42, 43, 44]
    }
}

/// The semantic network the conformance suites run against: the builtin
/// MiniWordNet by default, or — when `XSDF_CONFORMANCE_NETWORK` names a
/// file — a network loaded from a compiled snapshot or text export. CI
/// uses this to rerun the whole sweep over a snapshot-loaded network,
/// proving the load path score-identical to the in-process rebuild. A
/// bad path or corrupt file panics: a typo'd CI variable must not
/// silently fall back to the builtin network and vacuously pass.
pub fn network() -> &'static SemanticNetwork {
    use std::sync::OnceLock;
    static NETWORK: OnceLock<&'static SemanticNetwork> = OnceLock::new();
    NETWORK.get_or_init(|| match std::env::var("XSDF_CONFORMANCE_NETWORK") {
        Err(_) => semnet::mini_wordnet(),
        Ok(path) if path.is_empty() => semnet::mini_wordnet(),
        Ok(path) => {
            let bytes = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("XSDF_CONFORMANCE_NETWORK={path:?}: {e}"));
            let sn = if semnet::snapshot::sniff(&bytes) {
                semnet::snapshot::decode(&bytes)
                    .unwrap_or_else(|e| panic!("XSDF_CONFORMANCE_NETWORK={path:?}: {e}"))
            } else {
                let text = String::from_utf8(bytes).unwrap_or_else(|e| {
                    panic!("XSDF_CONFORMANCE_NETWORK={path:?}: not UTF-8: {e}")
                });
                semnet::format::from_text(&text)
                    .unwrap_or_else(|e| panic!("XSDF_CONFORMANCE_NETWORK={path:?}: {e}"))
            };
            eprintln!(
                "conformance network: {} concepts loaded from {path}",
                sn.len()
            );
            Box::leak(Box::new(sn))
        }
    })
}

/// The pruning configuration the sweep's *optimized* side runs under,
/// from `XSDF_CONFORMANCE_PRUNE` (a [`xsdf::PruningConfig::parse`]
/// spec; unset or empty means off). The reference side never prunes, so
/// setting this to `exact` turns every differential check into an
/// exactness proof for pruning level (a): the pruned pipeline must
/// still match the naive full-formula oracle bit-for-bit (within the
/// sweep's documented float tolerance). An invalid spec panics — a
/// typo'd CI variable must not silently run the unpruned sweep twice.
pub fn prune() -> xsdf::PruningConfig {
    match std::env::var("XSDF_CONFORMANCE_PRUNE") {
        Ok(spec) if !spec.is_empty() => xsdf::PruningConfig::parse(&spec)
            .unwrap_or_else(|e| panic!("bad XSDF_CONFORMANCE_PRUNE={spec:?}: {e}")),
        _ => xsdf::PruningConfig::off(),
    }
}

/// One document of the differential sweep with its cycling parameters.
pub struct DocCase {
    /// Where the document came from (seed, dataset, index — or the
    /// pathological generator's name), for failure messages.
    pub origin: String,
    /// The generator seed (0 for pathological documents, which are pure).
    pub seed: u64,
    /// The parsed document.
    pub doc: Document,
    /// Sphere radius for this document (cycles 1, 2, 3).
    pub radius: u32,
    /// Vector measure for this document (cycles the three of footnote 10).
    pub measure: VectorSimilarity,
    /// Disambiguation process for this document (cycles all three).
    pub process: DisambiguationProcess,
}

impl DocCase {
    /// The pipeline configuration this case runs under. Includes the
    /// [`prune`] setting, so an `XSDF_CONFORMANCE_PRUNE=exact` sweep
    /// proves pruning level (a) result-identical against the unpruned
    /// reference.
    pub fn config(&self) -> XsdfConfig {
        XsdfConfig {
            radius: self.radius,
            vector_similarity: self.measure,
            process: self.process,
            prune: prune(),
            ..XsdfConfig::default()
        }
    }

    /// The reproduction context printed by every failing assertion.
    pub fn context(&self) -> String {
        format!(
            "[{} radius={} measure={:?} process={:?}]",
            self.origin, self.radius, self.measure, self.process
        )
    }
}

fn params_for(i: usize) -> (u32, VectorSimilarity, DisambiguationProcess) {
    const MEASURES: [VectorSimilarity; 3] = [
        VectorSimilarity::Cosine,
        VectorSimilarity::Jaccard,
        VectorSimilarity::Pearson,
    ];
    const PROCESSES: [DisambiguationProcess; 3] = [
        DisambiguationProcess::ConceptBased,
        DisambiguationProcess::ContextBased,
        DisambiguationProcess::Combined {
            concept: 1.0,
            context: 1.0,
        },
    ];
    let radius = 1 + (i % 3) as u32;
    let measure = MEASURES[(i / 3) % 3];
    let process = PROCESSES[(i / 9) % 3];
    (radius, measure, process)
}

/// The full document sweep: every corpus document of every seed, plus the
/// pathological suite, each with deterministic cycling parameters. The
/// seeds in play are printed so a failure can be reproduced by running
/// the same binary again (the sweep is a pure function of the seeds).
pub fn cases(sn: &SemanticNetwork) -> Vec<DocCase> {
    let mut out = Vec::new();
    for seed in seeds() {
        let corpus = Corpus::generate(sn, seed);
        for (idx, ad) in corpus.documents().iter().enumerate() {
            let (radius, measure, process) = params_for(idx);
            out.push(DocCase {
                origin: format!("seed={seed} dataset={:?} doc={idx}", ad.dataset),
                seed,
                doc: ad.doc.clone(),
                radius,
                measure,
                process,
            });
        }
    }
    for (idx, (name, xml)) in pathological::suite().into_iter().enumerate() {
        let doc = xmltree::parse(&xml)
            .unwrap_or_else(|e| panic!("pathological doc {name} must parse: {e:?}"));
        let (radius, measure, process) = params_for(idx);
        out.push(DocCase {
            origin: format!("pathological={name}"),
            seed: 0,
            doc,
            radius,
            measure,
            process,
        });
    }
    eprintln!(
        "conformance sweep: {} documents (seeds {:?}, quick={}, prune={:?}) — rerun with \
         XSDF_CONFORMANCE_QUICK={} to reproduce",
        out.len(),
        seeds(),
        quick(),
        prune(),
        u8::from(quick()),
    );
    out
}

/// Every `stride`-th case — the nucleus the expensive full-formula
/// differential runs on (the naive gloss and information-content
/// references re-derive everything per call, so the whole sweep would be
/// needlessly slow at zero extra coverage).
pub fn nucleus(cases: &[DocCase], stride: usize) -> Vec<&DocCase> {
    cases.iter().step_by(stride.max(1)).collect()
}
