//! The common disambiguator interface shared by XSDF and the baselines.

use std::collections::HashMap;

use semnet::SemanticNetwork;
use xmltree::{NodeId, XmlTree};
use xsdf::{SenseChoice, Xsdf, XsdfConfig};

/// Sense assignments per tree node. Nodes a method abstains on are absent.
pub type Assignments = HashMap<NodeId, SenseChoice>;

/// A complete XML disambiguation method: takes a pre-processed rooted
/// ordered labeled tree and assigns senses to its nodes.
pub trait Disambiguator {
    /// Short display name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Disambiguates every node it can, returning the assignments.
    fn disambiguate(&self, sn: &SemanticNetwork, tree: &XmlTree) -> Assignments;

    /// Disambiguates only the given target nodes (the paper's evaluation
    /// protocol). The default runs the full method and filters; methods
    /// whose per-node work is independent override this for speed.
    fn disambiguate_targets(
        &self,
        sn: &SemanticNetwork,
        tree: &XmlTree,
        targets: &[NodeId],
    ) -> Assignments {
        let all = self.disambiguate(sn, tree);
        targets
            .iter()
            .filter_map(|n| all.get(n).map(|&c| (*n, c)))
            .collect()
    }
}

/// Adapter presenting the XSDF pipeline as a [`Disambiguator`].
pub struct XsdfDisambiguator {
    config: XsdfConfig,
}

impl XsdfDisambiguator {
    /// Wraps a configuration.
    pub fn new(config: XsdfConfig) -> Self {
        Self { config }
    }
}

impl Disambiguator for XsdfDisambiguator {
    fn name(&self) -> &'static str {
        "XSDF"
    }

    fn disambiguate(&self, sn: &SemanticNetwork, tree: &XmlTree) -> Assignments {
        let result = Xsdf::new(sn, self.config.clone()).disambiguate_tree(tree);
        result
            .reports
            .into_iter()
            .filter_map(|r| r.chosen.map(|(choice, _)| (r.node, choice)))
            .collect()
    }

    fn disambiguate_targets(
        &self,
        sn: &SemanticNetwork,
        tree: &XmlTree,
        targets: &[NodeId],
    ) -> Assignments {
        let result = Xsdf::new(sn, self.config.clone()).disambiguate_nodes(tree, targets);
        result
            .reports
            .into_iter()
            .filter_map(|r| r.chosen.map(|(choice, _)| (r.node, choice)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;
    use xmltree::tree::TreeBuilder;
    use xsdf::LingTokenizer;

    #[test]
    fn xsdf_adapter_produces_assignments() {
        let sn = mini_wordnet();
        let doc =
            xmltree::parse("<films><picture><cast><star>Kelly</star></cast></picture></films>")
                .unwrap();
        let tree = TreeBuilder::with_tokenizer(LingTokenizer::new(sn))
            .build(&doc)
            .unwrap()
            .tree;
        let d = XsdfDisambiguator::new(XsdfConfig::default());
        assert_eq!(d.name(), "XSDF");
        let assignments = d.disambiguate(sn, &tree);
        assert!(!assignments.is_empty());
        // The cast node is assigned the actors sense.
        let cast = tree.preorder().find(|&n| tree.label(n) == "cast").unwrap();
        match assignments.get(&cast) {
            Some(SenseChoice::Single(c)) => assert_eq!(sn.concept(*c).key, "cast.actors"),
            other => panic!("expected single sense for cast, got {other:?}"),
        }
    }
}
