//! # xsdf-baselines
//!
//! From-scratch re-implementations of the two XML disambiguation methods
//! the paper compares against (Section 4.3.2):
//!
//! * **RPD** — *Root Path Disambiguation* (Tagarelli et al., reference
//!   \[50\]): each node's context is its root path; per-path sense selection
//!   uses gloss-based and edge-based similarity between every sense of the
//!   node's label and all senses of the other labels on the same path.
//! * **VSD** — *Versatile Structural Disambiguation* (Mandreoli et al.,
//!   reference \[29\]): a Gaussian decay function over tree distance assigns
//!   edge weights; nodes reachable through *crossable* edges (weight above
//!   a threshold) form the context; the target label is compared to
//!   candidate senses with an edge-based measure, weighted by the decay.
//!
//! Both implement the common [`Disambiguator`] trait, as does the
//! [`XsdfDisambiguator`] adapter over the core framework, so the evaluation
//! harness can run all three interchangeably (Figure 9 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod rpd;
pub mod vsd;

pub use common::{Assignments, Disambiguator, XsdfDisambiguator};
pub use rpd::Rpd;
pub use vsd::Vsd;
