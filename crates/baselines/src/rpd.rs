//! RPD — Root Path Disambiguation (Tagarelli et al. \[50\], also \[49\]).
//!
//! The context of an XML node is the *root path*: the sequence of nodes
//! from the document root down to the node (Section 2.2.1 of the paper).
//! Disambiguation is performed per path: every sense of the node's label is
//! compared against all senses of the other labels occurring on the same
//! path, using a gloss-based and an edge-based semantic similarity measure
//! (the originals use Banerjee–Pedersen \[6\] and Wu–Palmer \[59\]); the sense
//! with the maximum accumulated similarity wins.
//!
//! Context is a plain *bag of words*: all path labels count the same
//! regardless of their distance from the node (exactly the limitation the
//! paper's Motivation 3 calls out).

use semnet::{ConceptId, SemanticNetwork};
use semsim::{CombinedSimilarity, SimilarityWeights};
use xmltree::navigate::root_path;
use xmltree::{NodeKind, XmlTree};
use xsdf::senses::{disambiguation_candidates, SenseCandidates};
use xsdf::SenseChoice;

use crate::common::{Assignments, Disambiguator};

/// The RPD baseline. The original operates on **structure only** (element
/// and attribute tag labels) — the paper's Table 4 marks "Disambiguates
/// XML structure and content" with an x for RPD — so the faithful default
/// skips value-token nodes. [`Rpd::with_content`] opts into an extended
/// variant that applies the same procedure to tokens.
pub struct Rpd {
    /// Weight of the gloss-based measure (the edge-based measure gets the
    /// complement). The original combines both; equal halves by default.
    pub gloss_weight: f64,
    /// Also disambiguate value-token nodes (an extension beyond \[50\]).
    pub include_values: bool,
}

impl Default for Rpd {
    fn default() -> Self {
        Self {
            gloss_weight: 0.5,
            include_values: false,
        }
    }
}

impl Rpd {
    /// The faithful, structure-only RPD of reference \[50\].
    pub fn new() -> Self {
        Self::default()
    }

    /// The extended variant that also processes value tokens.
    pub fn with_content() -> Self {
        Self {
            include_values: true,
            ..Self::default()
        }
    }

    fn similarity_measure(&self) -> CombinedSimilarity {
        let g = self.gloss_weight.clamp(0.0, 1.0);
        let weights =
            SimilarityWeights::new(1.0 - g, 0.0, g).unwrap_or_else(SimilarityWeights::gloss_only);
        CombinedSimilarity::new(weights)
    }

    /// Flattens a node's candidates to a list of scoreable choices.
    fn choices(sn: &SemanticNetwork, tree: &XmlTree, node: xmltree::NodeId) -> Vec<SenseChoice> {
        match disambiguation_candidates(sn, tree.label(node), tree.node(node).kind) {
            SenseCandidates::Unknown => Vec::new(),
            SenseCandidates::Single(senses) => {
                senses.into_iter().map(SenseChoice::Single).collect()
            }
            SenseCandidates::Compound { first, second } => {
                if first.is_empty() {
                    second.into_iter().map(SenseChoice::Single).collect()
                } else if second.is_empty() {
                    first.into_iter().map(SenseChoice::Single).collect()
                } else {
                    first
                        .iter()
                        .flat_map(|&a| second.iter().map(move |&b| SenseChoice::Pair(a, b)))
                        .collect()
                }
            }
        }
    }

    fn choice_sim(
        sim: &CombinedSimilarity,
        sn: &SemanticNetwork,
        choice: SenseChoice,
        other: ConceptId,
    ) -> f64 {
        match choice {
            SenseChoice::Single(c) => sim.similarity(sn, c, other),
            SenseChoice::Pair(a, b) => {
                (sim.similarity(sn, a, other) + sim.similarity(sn, b, other)) / 2.0
            }
        }
    }

    /// Disambiguates one node from its root-path context.
    fn assign_node(
        &self,
        sn: &SemanticNetwork,
        tree: &XmlTree,
        sim: &CombinedSimilarity,
        node: xmltree::NodeId,
    ) -> Option<SenseChoice> {
        if !self.include_values && tree.node(node).kind == NodeKind::ValueToken {
            return None;
        }
        let candidates = Self::choices(sn, tree, node);
        if candidates.is_empty() {
            return None;
        }
        // Context: every *other* label on the node's root path. For value
        // tokens the path naturally ends at the token, so the containing
        // tags provide the context.
        let path = root_path(tree, node);
        let context_senses: Vec<Vec<ConceptId>> = path
            .iter()
            .filter(|&&p| p != node)
            .map(
                |&p| match disambiguation_candidates(sn, tree.label(p), tree.node(p).kind) {
                    SenseCandidates::Unknown => Vec::new(),
                    SenseCandidates::Single(senses) => senses,
                    SenseCandidates::Compound { mut first, second } => {
                        first.extend(second);
                        first
                    }
                },
            )
            .filter(|senses| !senses.is_empty())
            .collect();

        // Score each candidate: sum over path labels of the best similarity
        // to any sense of that label (bag-of-words: no distance weighting).
        let mut best: Option<(SenseChoice, f64)> = None;
        for &choice in &candidates {
            let score: f64 = context_senses
                .iter()
                .map(|senses| {
                    senses
                        .iter()
                        .map(|&s| Self::choice_sim(sim, sn, choice, s))
                        .fold(0.0f64, f64::max)
                })
                .sum();
            if best.as_ref().is_none_or(|&(_, b)| score > b) {
                best = Some((choice, score));
            }
        }
        best.map(|(choice, score)| {
            // With no informative context every candidate scores 0; RPD
            // then falls back to the first (most frequent) sense, as the
            // original does for single-node paths.
            if score > 0.0 || candidates.len() == 1 {
                choice
            } else {
                candidates[0]
            }
        })
    }
}

impl Disambiguator for Rpd {
    fn name(&self) -> &'static str {
        "RPD"
    }

    fn disambiguate(&self, sn: &SemanticNetwork, tree: &XmlTree) -> Assignments {
        let sim = self.similarity_measure();
        let mut out = Assignments::new();
        for node in tree.preorder() {
            if let Some(choice) = self.assign_node(sn, tree, &sim, node) {
                out.insert(node, choice);
            }
        }
        out
    }

    fn disambiguate_targets(
        &self,
        sn: &SemanticNetwork,
        tree: &XmlTree,
        targets: &[xmltree::NodeId],
    ) -> Assignments {
        let sim = self.similarity_measure();
        let mut out = Assignments::new();
        for &node in targets {
            if let Some(choice) = self.assign_node(sn, tree, &sim, node) {
                out.insert(node, choice);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;
    use xmltree::tree::TreeBuilder;
    use xsdf::LingTokenizer;

    fn tree(xml: &str) -> XmlTree {
        let doc = xmltree::parse(xml).unwrap();
        TreeBuilder::with_tokenizer(LingTokenizer::new(mini_wordnet()))
            .build(&doc)
            .unwrap()
            .tree
    }

    fn key_of(sn: &SemanticNetwork, choice: &SenseChoice) -> String {
        match choice {
            SenseChoice::Single(c) => sn.concept(*c).key.clone(),
            SenseChoice::Pair(a, b) => {
                format!("{}+{}", sn.concept(*a).key, sn.concept(*b).key)
            }
        }
    }

    #[test]
    fn root_path_context_disambiguates_nested_labels() {
        // Path films/picture/cast: "cast" sees picture+films above it.
        let sn = mini_wordnet();
        let t = tree("<films><picture><cast/></picture></films>");
        let cast = t.preorder().find(|&n| t.label(n) == "cast").unwrap();
        let out = Rpd::new().disambiguate(sn, &t);
        assert_eq!(key_of(sn, &out[&cast]), "cast.actors");
    }

    #[test]
    fn assigns_every_known_structural_node() {
        let sn = mini_wordnet();
        let t = tree("<films><picture><cast><star>Kelly</star></cast></picture></films>");
        let out = Rpd::with_content().disambiguate(sn, &t);
        // RPD has no selection phase: all nodes with senses get assigned
        // (the paper's Motivation 1 criticism); with_content extends this
        // to tokens.
        for node in t.preorder() {
            let has = !Rpd::choices(sn, &t, node).is_empty();
            assert_eq!(out.contains_key(&node), has, "label {}", t.label(node));
        }
        // The faithful default skips the "kelly" token (Table 4's last row).
        let faithful = Rpd::new().disambiguate(sn, &t);
        let kelly = t.preorder().find(|&n| t.label(n) == "kelly").unwrap();
        assert!(!faithful.contains_key(&kelly));
        let cast = t.preorder().find(|&n| t.label(n) == "cast").unwrap();
        assert!(faithful.contains_key(&cast));
    }

    #[test]
    fn sibling_context_is_invisible_to_rpd() {
        // The root path of "star" is films/star — the informative sibling
        // "cast" is NOT on it. This is the partial-context weakness the
        // paper exploits (Motivation 2): RPD can only use films above it.
        let sn = mini_wordnet();
        let t = tree("<films><cast/><star/></films>");
        let star = t.preorder().find(|&n| t.label(n) == "star").unwrap();
        let out = Rpd::new().disambiguate(sn, &t);
        // Whatever it picks, the decision was made from {films} only; we
        // assert it still yields *some* sense (graceful degradation).
        assert!(out.contains_key(&star));
    }

    #[test]
    fn structure_only_mode_skips_values() {
        let sn = mini_wordnet();
        let t = tree("<cast><star>Kelly</star></cast>");
        let out = Rpd::new().disambiguate(sn, &t);
        let kelly = t.preorder().find(|&n| t.label(n) == "kelly").unwrap();
        assert!(!out.contains_key(&kelly));
        assert!(Rpd::with_content()
            .disambiguate(sn, &t)
            .contains_key(&kelly));
    }

    #[test]
    fn single_node_falls_back_to_first_sense() {
        let sn = mini_wordnet();
        let t = tree("<star/>");
        let out = Rpd::new().disambiguate(sn, &t);
        let choice = out[&t.root()];
        // First sense = most frequent = star.celestial in MiniWordNet.
        assert_eq!(key_of(sn, &choice), "star.celestial");
    }

    #[test]
    fn gloss_weight_is_tunable() {
        let sn = mini_wordnet();
        let t = tree("<films><picture><cast/></picture></films>");
        let edge_only = Rpd {
            gloss_weight: 0.0,
            ..Rpd::new()
        };
        let gloss_only = Rpd {
            gloss_weight: 1.0,
            ..Rpd::new()
        };
        // Both run to completion; assignments may differ.
        let a = edge_only.disambiguate(sn, &t);
        let b = gloss_only.disambiguate(sn, &t);
        assert_eq!(a.len(), b.len());
    }
}
