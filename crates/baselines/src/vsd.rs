//! VSD — Versatile Structural Disambiguation (Mandreoli et al. \[29\]).
//!
//! VSD generalizes parent and sub-tree contexts: a *Gaussian decay*
//! function assigns a weight to every node as a function of its tree
//! distance from the target, an edge is *crossable* while the accumulated
//! weight stays above a threshold, and all nodes reachable through
//! crossable edges form the context (Section 2.2 of the paper: the
//! *relational information model* — "the closer a node, the more it
//! influences the target node's disambiguation").
//!
//! Each candidate sense of the target label is compared with the senses of
//! every context label using an edge-based similarity measure (the original
//! uses Leacock–Chodorow \[24\]; this implementation uses the workspace's
//! edge measure, Wu–Palmer, which ranks identically on a fixed taxonomy),
//! each contribution multiplied by the context node's decay weight. The
//! top-scoring sense wins. There is no ambiguity-based target selection —
//! every node is processed (the paper's Motivation 1).

use semnet::{ConceptId, SemanticNetwork};
use semsim::wu_palmer;
use xmltree::distance::NodesWithin;
use xmltree::{NodeId, XmlTree};
use xsdf::senses::{disambiguation_candidates, SenseCandidates};
use xsdf::SenseChoice;

use crate::common::{Assignments, Disambiguator};

/// The VSD baseline.
pub struct Vsd {
    /// Standard deviation `σ` of the Gaussian decay
    /// `w(dist) = exp(−dist² / 2σ²)`.
    pub sigma: f64,
    /// Minimum decay weight for an edge to be *crossable*; context
    /// collection stops beyond it.
    pub crossable_threshold: f64,
    /// Mix a gloss-based measure into the sense comparison. Reference \[29\]
    /// is itself a hybrid of concept- and context-based evidence, so the
    /// default blends the edge measure with gloss overlap equally; 0 gives
    /// the pure edge-based variant.
    pub gloss_weight: f64,
    /// Also disambiguate value-token nodes. Like RPD, the original VSD
    /// targets structure labels only (Table 4 of the paper marks
    /// "Disambiguates XML structure and content" with an x), so the
    /// faithful default is `false`. Value tokens still *contribute* to the
    /// context of structural targets either way.
    pub include_values: bool,
}

impl Default for Vsd {
    fn default() -> Self {
        // σ = 1.5 gives w(1) ≈ 0.80, w(2) ≈ 0.41, w(3) ≈ 0.135; with the
        // 0.1 threshold the context spans three edges in every direction —
        // the "versatile" parent+descendant+sibling context of the paper.
        Self {
            sigma: 1.5,
            crossable_threshold: 0.1,
            gloss_weight: 0.5,
            include_values: false,
        }
    }
}

impl Vsd {
    /// The faithful, structure-only VSD of reference \[29\].
    pub fn new() -> Self {
        Self::default()
    }

    /// The extended variant that also processes value tokens.
    pub fn with_content() -> Self {
        Self {
            include_values: true,
            ..Self::default()
        }
    }

    /// The Gaussian decay weight of a node at the given tree distance.
    pub fn decay(&self, dist: u32) -> f64 {
        let d = dist as f64;
        (-d * d / (2.0 * self.sigma * self.sigma)).exp()
    }

    /// The maximum distance that is still crossable.
    fn max_crossable_distance(&self) -> u32 {
        let mut d = 0;
        while self.decay(d + 1) >= self.crossable_threshold && d < 64 {
            d += 1;
        }
        d
    }

    fn sim(&self, sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> f64 {
        let g = self.gloss_weight.clamp(0.0, 1.0);
        if g == 0.0 {
            wu_palmer(sn, a, b)
        } else {
            (1.0 - g) * wu_palmer(sn, a, b) + g * semsim::extended_gloss_overlap(sn, a, b)
        }
    }

    fn choice_sim(&self, sn: &SemanticNetwork, choice: SenseChoice, other: ConceptId) -> f64 {
        match choice {
            SenseChoice::Single(c) => self.sim(sn, c, other),
            SenseChoice::Pair(a, b) => (self.sim(sn, a, other) + self.sim(sn, b, other)) / 2.0,
        }
    }

    fn choices(sn: &SemanticNetwork, tree: &XmlTree, node: NodeId) -> Vec<SenseChoice> {
        match disambiguation_candidates(sn, tree.label(node), tree.node(node).kind) {
            SenseCandidates::Unknown => Vec::new(),
            SenseCandidates::Single(senses) => {
                senses.into_iter().map(SenseChoice::Single).collect()
            }
            SenseCandidates::Compound { first, second } => {
                // VSD's original treats compound tokens as separate labels;
                // we keep the pair structure for comparability of outputs
                // but score pairs by averaging (as its bag model would).
                if first.is_empty() {
                    second.into_iter().map(SenseChoice::Single).collect()
                } else if second.is_empty() {
                    first.into_iter().map(SenseChoice::Single).collect()
                } else {
                    first
                        .iter()
                        .flat_map(|&a| second.iter().map(move |&b| SenseChoice::Pair(a, b)))
                        .collect()
                }
            }
        }
    }
}

impl Vsd {
    /// Disambiguates one node from its crossable-edge context.
    fn assign_node(
        &self,
        sn: &SemanticNetwork,
        tree: &XmlTree,
        node: NodeId,
        reach: u32,
    ) -> Option<SenseChoice> {
        if !self.include_values && tree.node(node).kind == xmltree::NodeKind::ValueToken {
            return None;
        }
        let candidates = Self::choices(sn, tree, node);
        if candidates.is_empty() {
            return None;
        }
        // Context: nodes reachable through crossable edges, each carrying
        // its Gaussian decay weight.
        let context: Vec<(f64, Vec<ConceptId>)> = NodesWithin::new(tree, node, reach)
            .filter_map(|(n, dist)| {
                let weight = self.decay(dist);
                if weight < self.crossable_threshold {
                    return None;
                }
                let senses = match disambiguation_candidates(sn, tree.label(n), tree.node(n).kind) {
                    SenseCandidates::Unknown => return None,
                    SenseCandidates::Single(senses) => senses,
                    SenseCandidates::Compound { mut first, second } => {
                        first.extend(second);
                        first
                    }
                };
                Some((weight, senses))
            })
            .collect();

        let mut best: Option<(SenseChoice, f64)> = None;
        for &choice in &candidates {
            let score: f64 = context
                .iter()
                .map(|(weight, senses)| {
                    weight
                        * senses
                            .iter()
                            .map(|&s| self.choice_sim(sn, choice, s))
                            .fold(0.0f64, f64::max)
                })
                .sum();
            if best.as_ref().is_none_or(|&(_, b)| score > b) {
                best = Some((choice, score));
            }
        }
        best.map(|(choice, score)| {
            if score > 0.0 || candidates.len() == 1 {
                choice
            } else {
                candidates[0]
            }
        })
    }
}

impl Disambiguator for Vsd {
    fn name(&self) -> &'static str {
        "VSD"
    }

    fn disambiguate(&self, sn: &SemanticNetwork, tree: &XmlTree) -> Assignments {
        let reach = self.max_crossable_distance();
        let mut out = Assignments::new();
        for node in tree.preorder() {
            if let Some(choice) = self.assign_node(sn, tree, node, reach) {
                out.insert(node, choice);
            }
        }
        out
    }

    fn disambiguate_targets(
        &self,
        sn: &SemanticNetwork,
        tree: &XmlTree,
        targets: &[NodeId],
    ) -> Assignments {
        let reach = self.max_crossable_distance();
        let mut out = Assignments::new();
        for &node in targets {
            if let Some(choice) = self.assign_node(sn, tree, node, reach) {
                out.insert(node, choice);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semnet::mini_wordnet;
    use xmltree::tree::TreeBuilder;
    use xsdf::LingTokenizer;

    fn tree(xml: &str) -> XmlTree {
        let doc = xmltree::parse(xml).unwrap();
        TreeBuilder::with_tokenizer(LingTokenizer::new(mini_wordnet()))
            .build(&doc)
            .unwrap()
            .tree
    }

    fn key_of(sn: &SemanticNetwork, choice: &SenseChoice) -> String {
        match choice {
            SenseChoice::Single(c) => sn.concept(*c).key.clone(),
            SenseChoice::Pair(a, b) => {
                format!("{}+{}", sn.concept(*a).key, sn.concept(*b).key)
            }
        }
    }

    #[test]
    fn decay_is_gaussian() {
        let vsd = Vsd::new();
        assert_eq!(vsd.decay(0), 1.0);
        assert!(vsd.decay(1) > vsd.decay(2));
        assert!(vsd.decay(2) > vsd.decay(3));
        let expected = (-1.0f64 / (2.0 * 1.5 * 1.5)).exp();
        assert!((vsd.decay(1) - expected).abs() < 1e-12);
    }

    #[test]
    fn crossable_distance_follows_threshold() {
        let vsd = Vsd::new();
        // w(3) ≈ 0.135 ≥ 0.1, w(4) ≈ 0.028 < 0.1.
        assert_eq!(vsd.max_crossable_distance(), 3);
        let tight = Vsd {
            crossable_threshold: 0.5,
            ..Vsd::new()
        };
        assert_eq!(tight.max_crossable_distance(), 1);
    }

    #[test]
    fn versatile_context_sees_siblings() {
        // Unlike RPD, VSD's context crosses sibling edges: "star" sees
        // "cast" at distance 2 (up to films, down to cast).
        let sn = mini_wordnet();
        let t = tree("<films><cast/><star/><actor/></films>");
        let star = t.preorder().find(|&n| t.label(n) == "star").unwrap();
        let out = Vsd::new().disambiguate(sn, &t);
        assert!(out.contains_key(&star));
    }

    #[test]
    fn disambiguates_all_known_nodes_with_content() {
        let sn = mini_wordnet();
        let t = tree("<films><picture><cast><star>Kelly</star></cast></picture></films>");
        let out = Vsd::with_content().disambiguate(sn, &t);
        for node in t.preorder() {
            let has = !Vsd::choices(sn, &t, node).is_empty();
            assert_eq!(out.contains_key(&node), has, "label {}", t.label(node));
        }
        // The faithful default skips value tokens (Table 4's last row).
        let faithful = Vsd::new().disambiguate(sn, &t);
        let kelly = t.preorder().find(|&n| t.label(n) == "kelly").unwrap();
        assert!(!faithful.contains_key(&kelly));
    }

    #[test]
    fn isolated_node_gets_first_sense() {
        let sn = mini_wordnet();
        let t = tree("<star/>");
        let out = Vsd::new().disambiguate(sn, &t);
        assert_eq!(key_of(sn, &out[&t.root()]), "star.celestial");
    }

    #[test]
    fn sigma_controls_context_breadth() {
        let narrow = Vsd {
            sigma: 0.5,
            ..Vsd::new()
        };
        let wide = Vsd {
            sigma: 3.0,
            ..Vsd::new()
        };
        assert!(narrow.max_crossable_distance() < wide.max_crossable_distance());
    }

    #[test]
    fn gloss_mix_changes_nothing_structurally() {
        let sn = mini_wordnet();
        let t = tree("<films><picture><cast/></picture></films>");
        let pure = Vsd::new().disambiguate(sn, &t);
        let mixed = Vsd {
            gloss_weight: 0.5,
            ..Vsd::new()
        }
        .disambiguate(sn, &t);
        assert_eq!(pure.len(), mixed.len());
    }
}
