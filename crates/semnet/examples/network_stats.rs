//! Prints summary statistics of the built-in MiniWordNet semantic network.
//!
//! Run with: `cargo run -p xsdf-semnet --example network_stats`

fn main() {
    let sn = xsdf_semnet::mini_wordnet();
    println!("MiniWordNet statistics");
    println!("  concepts (synsets): {}", sn.len());
    println!("  vocabulary words:   {}", sn.vocabulary_size());
    println!("  typed edges:        {}", sn.all_edges().count());
    println!("  max taxonomy depth: {}", sn.max_depth());
    println!(
        "  max polysemy:       {} (the word \"head\", as in WordNet 2.1)",
        sn.max_polysemy()
    );
    println!("  total corpus freq:  {}", sn.total_frequency());
    for word in [
        "state", "star", "cast", "picture", "play", "line", "kelly", "stewart",
    ] {
        println!("  senses({word:?}) = {}", sn.polysemy(word));
    }
}
