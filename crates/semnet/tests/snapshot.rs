//! Robustness suite for the compiled network snapshot: a valid snapshot
//! round-trips bit-identically, and *every* corruption — truncation at
//! each section boundary and in between, checksum damage, hostile length
//! prefixes — yields a typed [`SnapshotError`], never a panic and never
//! an allocation sized by unvalidated input.

use xsdf_semnet::snapshot::{self, SnapshotError};
use xsdf_semnet::{mini_wordnet, NetworkBuilder, PartOfSpeech, RelationKind};

/// Fully validated decode used by the corruption helpers: decoding must
/// return an error (any typed variant), not a network and not a panic.
fn expect_error(bytes: &[u8], what: &str) -> SnapshotError {
    match snapshot::decode(bytes) {
        Ok(_) => panic!("{what}: corrupt snapshot decoded successfully"),
        Err(e) => e,
    }
}

#[test]
fn roundtrip_is_field_identical() {
    let sn = mini_wordnet();
    let loaded = snapshot::decode(&snapshot::encode(sn)).unwrap();
    assert_eq!(sn.len(), loaded.len());
    assert_eq!(sn.total_frequency(), loaded.total_frequency());
    assert_eq!(sn.max_polysemy(), loaded.max_polysemy());
    assert_eq!(sn.max_depth(), loaded.max_depth());
    assert_eq!(sn.vocabulary_size(), loaded.vocabulary_size());
    for id in sn.all_concepts() {
        assert_eq!(sn.concept(id), loaded.concept(id));
        assert_eq!(sn.edges(id), loaded.edges(id));
        assert_eq!(sn.depth(id), loaded.depth(id));
        assert_eq!(sn.cumulative_frequency(id), loaded.cumulative_frequency(id));
        assert_eq!(sn.by_key(&sn.concept(id).key), Some(id));
    }
    // Word-index sense ordering (first-sense tie-breaks) is preserved.
    for word in ["head", "state", "star", "cast", "play", "kelly"] {
        assert_eq!(sn.senses(word), loaded.senses(word), "senses({word})");
    }
    // The artifacts arrive pre-built and equal to the rebuild's.
    assert_eq!(sn.gloss_artifacts(), loaded.gloss_artifacts());
}

#[test]
fn snapshot_of_loaded_network_is_byte_identical() {
    // encode → decode → encode is a fixed point: nothing in the loaded
    // representation depends on iteration order or rebuild state.
    let original = snapshot::encode(mini_wordnet());
    let loaded = snapshot::decode(&original).unwrap();
    assert_eq!(original, snapshot::encode(&loaded));
}

#[test]
fn truncation_at_every_section_boundary_is_typed() {
    let (bytes, layout) = snapshot::encode_with_layout(mini_wordnet());
    for &(name, offset) in &layout {
        if offset == bytes.len() {
            continue; // the END marker — full length decodes fine
        }
        // Cutting exactly at the boundary: the length prefix in the
        // header no longer matches, or a section is missing outright.
        expect_error(&bytes[..offset], &format!("cut at {name} ({offset})"));
        // A few bytes into the section too.
        for extra in [1usize, 5, 12] {
            let end = (offset + extra).min(bytes.len() - 1);
            expect_error(&bytes[..end], &format!("cut inside {name} ({end})"));
        }
    }
}

#[test]
fn truncation_at_sampled_offsets_never_panics() {
    let bytes = snapshot::encode(mini_wordnet());
    // Every prefix in the header region, then a coarse sweep of the rest.
    for end in 0..bytes.len().min(64) {
        expect_error(&bytes[..end], &format!("prefix {end}"));
    }
    let step = (bytes.len() / 97).max(1);
    for end in (64..bytes.len() - 1).step_by(step) {
        expect_error(&bytes[..end], &format!("prefix {end}"));
    }
}

#[test]
fn checksum_region_bit_flips_are_checksum_errors() {
    let bytes = snapshot::encode(mini_wordnet());
    // Header bytes 20..28 hold the FNV checksum; flip each bit.
    for byte in 20..28 {
        for bit in 0..8 {
            let mut copy = bytes.clone();
            copy[byte] ^= 1 << bit;
            match expect_error(&copy, &format!("checksum byte {byte} bit {bit}")) {
                SnapshotError::Checksum { stored, computed } => assert_ne!(stored, computed),
                other => panic!("expected checksum error, got {other}"),
            }
        }
    }
}

#[test]
fn payload_bit_flips_are_caught_by_the_checksum() {
    let bytes = snapshot::encode(mini_wordnet());
    let step = (bytes.len() / 61).max(1);
    for offset in (28..bytes.len()).step_by(step) {
        let mut copy = bytes.clone();
        copy[offset] ^= 0x40;
        match expect_error(&copy, &format!("payload flip at {offset}")) {
            SnapshotError::Checksum { .. } => {}
            other => panic!("payload flip at {offset}: expected checksum error, got {other}"),
        }
    }
}

/// Recomputes the header checksum/length over a tampered payload so the
/// *structural* validators (not the checksum) face the hostile value.
fn reseal(bytes: &mut [u8]) {
    // Mirrors the format's checksum: FNV-1a folded over 8-byte LE words,
    // trailing partial word zero-padded.
    fn fnv1a64(bytes: &[u8]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut chunks = bytes.chunks_exact(8);
        for w in &mut chunks {
            hash ^= u64::from_le_bytes([w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7]]);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            hash ^= u64::from_le_bytes(tail);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
    let payload_len = (bytes.len() - 28) as u64;
    let checksum = fnv1a64(&bytes[28..]);
    bytes[12..20].copy_from_slice(&payload_len.to_le_bytes());
    bytes[20..28].copy_from_slice(&checksum.to_le_bytes());
}

#[test]
fn hostile_length_prefixes_do_not_allocate() {
    let (bytes, layout) = snapshot::encode_with_layout(mini_wordnet());
    // Overwrite the leading count/offset field of each section body with
    // 0xFFFF_FFFF and reseal. A naive loader would allocate gigabytes;
    // ours must bounds-check against the remaining bytes first. DPTH and
    // CUMF lead with plain data (any value is a legal depth/frequency),
    // so they are exempt.
    for &(name, offset) in &layout {
        if offset == bytes.len() || matches!(name, "DPTH" | "CUMF") {
            continue;
        }
        let mut copy = bytes.clone();
        // Section = tag u32 + len u64 + body; clobber the first 4 body
        // bytes (a count in every section that starts with one).
        let body = offset + 12;
        if body + 4 > copy.len() {
            continue;
        }
        copy[body..body + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        reseal(&mut copy);
        let err = expect_error(&copy, &format!("hostile count in {name}"));
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::Bounds { .. }
                    | SnapshotError::Corrupt { .. }
            ),
            "hostile count in {name}: unexpected {err}"
        );
    }
}

#[test]
fn hostile_section_length_is_truncation() {
    let (bytes, layout) = snapshot::encode_with_layout(mini_wordnet());
    for &(name, offset) in &layout {
        if offset == bytes.len() {
            continue;
        }
        let mut copy = bytes.clone();
        // The section's own u64 length prefix, right after its tag.
        copy[offset + 4..offset + 12].copy_from_slice(&u64::MAX.to_le_bytes());
        reseal(&mut copy);
        let err = expect_error(&copy, &format!("hostile length of {name}"));
        assert!(
            matches!(err, SnapshotError::Truncated { .. }),
            "hostile length of {name}: expected truncation, got {err}"
        );
    }
}

#[test]
fn wrong_magic_version_and_tiny_inputs() {
    assert!(matches!(
        snapshot::decode(b"not a snapshot at all"),
        Err(SnapshotError::Magic)
    ));
    assert!(matches!(snapshot::decode(b""), Err(SnapshotError::Magic)));
    assert!(matches!(
        snapshot::decode(b"XSDFSNA"),
        Err(SnapshotError::Magic)
    ));
    // Magic alone, no header.
    assert!(matches!(
        snapshot::decode(b"XSDFSNAP"),
        Err(SnapshotError::Truncated { .. })
    ));
    let mut versioned = snapshot::encode(mini_wordnet());
    versioned[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        snapshot::decode(&versioned),
        Err(SnapshotError::Version {
            found: 99,
            expected: snapshot::VERSION
        })
    ));
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = snapshot::encode(mini_wordnet());
    bytes.extend_from_slice(b"garbage");
    // Appended bytes break the header length check.
    assert!(matches!(
        snapshot::decode(&bytes),
        Err(SnapshotError::Truncated { .. })
    ));
}

#[test]
fn file_roundtrip_and_missing_file() {
    let sn = {
        let mut b = NetworkBuilder::new();
        b.concept("x.n", &["x"], "a letter", 3, PartOfSpeech::Noun);
        b.concept("y.n", &["y"], "another letter", 1, PartOfSpeech::Noun);
        b.relate("y.n", RelationKind::Hypernym, "x.n");
        b.build().unwrap()
    };
    let path = std::env::temp_dir().join(format!("xsdf-snapshot-test-{}.snap", std::process::id()));
    snapshot::write_file(&sn, &path).unwrap();
    let loaded = snapshot::load_file(&path).unwrap();
    assert_eq!(loaded.len(), 2);
    assert_eq!(loaded.senses("y").len(), 1);
    std::fs::remove_file(&path).unwrap();
    assert!(matches!(
        snapshot::load_file(&path),
        Err(SnapshotError::Io(_))
    ));
}

#[test]
fn error_display_is_informative() {
    let bytes = snapshot::encode(mini_wordnet());
    let mut corrupt = bytes.clone();
    corrupt[21] ^= 1;
    let messages = [
        snapshot::decode(b"nope").unwrap_err().to_string(),
        snapshot::decode(&bytes[..40]).unwrap_err().to_string(),
        snapshot::decode(&corrupt).unwrap_err().to_string(),
    ];
    assert!(messages[0].contains("magic"), "{messages:?}");
    assert!(messages[1].contains("truncated"), "{messages:?}");
    assert!(messages[2].contains("checksum"), "{messages:?}");
}
