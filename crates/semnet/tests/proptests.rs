//! Property-based tests for the semantic network: builder validation,
//! format round-trips, and graph-query invariants.

use proptest::prelude::*;
use xsdf_semnet::graph::{
    ancestors_with_distance, concept_sphere, lowest_common_subsumer, taxonomy_path_length,
    RelationFilter,
};
use xsdf_semnet::{mini_wordnet, ConceptId, NetworkBuilder, PartOfSpeech, RelationKind};

/// Strategy: a random small taxonomy (forest of is-a trees).
fn arb_taxonomy() -> impl Strategy<Value = xsdf_semnet::SemanticNetwork> {
    // parents[i] < i or none → acyclic by construction.
    proptest::collection::vec(proptest::option::of(0usize..50), 1..40).prop_map(|parents| {
        let mut b = NetworkBuilder::new();
        for (i, parent) in parents.iter().enumerate() {
            b.concept(
                &format!("c{i}"),
                &[&format!("w{i}"), &format!("shared{}", i % 5)],
                &format!("gloss for concept number {i} in the random taxonomy"),
                (i as u32 % 17) + 1,
                PartOfSpeech::Noun,
            );
            if let Some(p) = parent {
                let p = p % (i.max(1));
                if p < i {
                    b.relate(&format!("c{i}"), RelationKind::Hypernym, &format!("c{p}"));
                }
            }
        }
        b.build().expect("acyclic by construction")
    })
}

/// Separator-heavy fragments of the kinds that historically corrupted the
/// text format: lemma commas split lemmas, field pipes shifted columns,
/// newlines/tabs/boundary spaces were trimmed or rewritten, and literal
/// backslashes collided with the escape syntax.
const NASTY: &[&str] = &[
    "", " ", "  ", ",", "|", "\\", "\n", "\t", "\r", " | ", ",,", "a, b", "\\s", "||",
];

/// A string mixing random printable text with [`NASTY`] fragments at the
/// start, middle, and end.
fn arb_nasty_text() -> impl Strategy<Value = String> {
    (
        0usize..NASTY.len(),
        "\\PC{0,10}",
        0usize..NASTY.len(),
        "\\PC{0,10}",
        0usize..NASTY.len(),
    )
        .prop_map(|(p, a, m, b, s)| format!("{}{a}{}{b}{}", NASTY[p], NASTY[m], NASTY[s]))
}

/// Strategy: a small chain taxonomy whose keys, lemmas, and glosses are all
/// adversarial.
fn arb_adversarial_network() -> impl Strategy<Value = xsdf_semnet::SemanticNetwork> {
    proptest::collection::vec((arb_nasty_text(), arb_nasty_text(), arb_nasty_text()), 1..8)
        .prop_map(|rows| {
            let mut b = NetworkBuilder::new();
            for (i, (key_part, lemma_part, gloss)) in rows.iter().enumerate() {
                let key = format!("k{i}.{key_part}");
                let lemma = format!("w{i}{lemma_part}");
                b.concept(
                    &key,
                    &[&lemma, &format!("shared{}", i % 3)],
                    gloss,
                    i as u32 + 1,
                    PartOfSpeech::Noun,
                );
                if i > 0 {
                    let parent = format!("k{}.{}", i - 1, rows[i - 1].0);
                    b.relate(&key, RelationKind::Hypernym, &parent);
                }
            }
            b.build().expect("unique keys, acyclic chain")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Format round-trip preserves every concept and edge.
    #[test]
    fn format_roundtrip(sn in arb_taxonomy()) {
        let text = xsdf_semnet::format::to_text(&sn);
        let sn2 = xsdf_semnet::format::from_text(&text).unwrap();
        prop_assert_eq!(sn.len(), sn2.len());
        prop_assert_eq!(sn.total_frequency(), sn2.total_frequency());
        for id in sn.all_concepts() {
            let key = &sn.concept(id).key;
            let id2 = sn2.by_key(key).unwrap();
            prop_assert_eq!(sn.depth(id), sn2.depth(id2));
            prop_assert_eq!(sn.edges(id).len(), sn2.edges(id2).len());
        }
    }

    /// Round-trip through the text format is lossless even when keys,
    /// lemmas, and glosses are stuffed with separators, escapes, and
    /// whitespace (the bugs this pins: comma-split lemmas, pipe-shifted
    /// fields, trimmed/rewritten glosses).
    #[test]
    fn adversarial_roundtrip_lossless(sn in arb_adversarial_network()) {
        let text = xsdf_semnet::format::to_text(&sn);
        let sn2 = xsdf_semnet::format::from_text(&text).unwrap();
        prop_assert_eq!(sn.len(), sn2.len());
        for id in sn.all_concepts() {
            let c1 = sn.concept(id);
            let id2 = sn2.by_key(&c1.key).unwrap();
            let c2 = sn2.concept(id2);
            prop_assert_eq!(&c1.lemmas, &c2.lemmas);
            prop_assert_eq!(&c1.gloss, &c2.gloss);
            prop_assert_eq!(c1.frequency, c2.frequency);
            prop_assert_eq!(c1.pos, c2.pos);
            prop_assert_eq!(sn.edges(id).len(), sn2.edges(id2).len());
        }
    }

    /// Depth equals the minimal hypernym distance to a root.
    #[test]
    fn depth_is_min_ancestor_distance(sn in arb_taxonomy()) {
        for id in sn.all_concepts() {
            let anc = ancestors_with_distance(&sn, id);
            let min_root = anc
                .iter()
                .filter(|(c, _)| sn.hypernyms(**c).next().is_none())
                .map(|(_, d)| *d)
                .min();
            prop_assert_eq!(Some(sn.depth(id)), min_root);
        }
    }

    /// The LCS subsumes both arguments and is the deepest such ancestor.
    #[test]
    fn lcs_is_deepest_common_ancestor(sn in arb_taxonomy()) {
        let nodes: Vec<ConceptId> = sn.all_concepts().collect();
        for &a in nodes.iter().take(6) {
            for &b in nodes.iter().rev().take(6) {
                if let Some(lcs) = lowest_common_subsumer(&sn, a, b) {
                    let anc_a = ancestors_with_distance(&sn, a);
                    let anc_b = ancestors_with_distance(&sn, b);
                    prop_assert!(anc_a.contains_key(&lcs));
                    prop_assert!(anc_b.contains_key(&lcs));
                    for c in anc_a.keys().filter(|c| anc_b.contains_key(c)) {
                        prop_assert!(sn.depth(*c) <= sn.depth(lcs));
                    }
                }
            }
        }
    }

    /// Taxonomy path length is symmetric and satisfies identity.
    #[test]
    fn path_length_symmetric(sn in arb_taxonomy()) {
        let nodes: Vec<ConceptId> = sn.all_concepts().collect();
        for &a in nodes.iter().take(6) {
            prop_assert_eq!(taxonomy_path_length(&sn, a, a), Some(0));
            for &b in nodes.iter().rev().take(6) {
                prop_assert_eq!(
                    taxonomy_path_length(&sn, a, b),
                    taxonomy_path_length(&sn, b, a)
                );
            }
        }
    }

    /// Concept spheres grow monotonically with the radius and never include
    /// the center.
    #[test]
    fn concept_sphere_monotone(sn in arb_taxonomy(), r in 1u32..4) {
        let center = ConceptId(0);
        let small = concept_sphere(&sn, center, r, &RelationFilter::All);
        let big = concept_sphere(&sn, center, r + 1, &RelationFilter::All);
        prop_assert!(big.len() >= small.len());
        prop_assert!(small.iter().all(|&(c, _)| c != center));
        // Distances respect the radius.
        prop_assert!(small.iter().all(|&(_, d)| d >= 1 && d <= r));
    }

    /// Cumulative frequencies dominate own frequencies and IC is finite.
    #[test]
    fn cumulative_frequency_dominates(sn in arb_taxonomy()) {
        for id in sn.all_concepts() {
            prop_assert!(sn.cumulative_frequency(id) >= sn.frequency(id) as u64);
            let ic = sn.information_content(id);
            prop_assert!(ic.is_finite() && ic >= 0.0);
        }
    }
}

/// Word-sense lookups on the real MiniWordNet are first-sense-ordered.
#[test]
fn builtin_senses_sorted_by_frequency() {
    let sn = mini_wordnet();
    for word in ["state", "star", "cast", "line", "play", "title", "head"] {
        let senses = sn.senses(word);
        for pair in senses.windows(2) {
            assert!(
                sn.frequency(pair[0]) >= sn.frequency(pair[1]),
                "{word}: sense order not frequency-sorted"
            );
        }
    }
}
