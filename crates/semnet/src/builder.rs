//! Programmatic construction of [`SemanticNetwork`]s with validation.

use std::collections::HashMap;

use crate::model::{Concept, ConceptId, PartOfSpeech, RelationKind};
use crate::network::SemanticNetwork;

/// Errors detected when finalizing a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A concept key was registered twice.
    DuplicateKey(String),
    /// A relation references a key that was never registered.
    UnknownKey(String),
    /// A concept has no lemmas.
    NoLemmas(String),
    /// The is-a graph contains a cycle through the named key.
    TaxonomyCycle(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateKey(k) => write!(f, "duplicate concept key {k:?}"),
            Self::UnknownKey(k) => write!(f, "relation references unknown key {k:?}"),
            Self::NoLemmas(k) => write!(f, "concept {k:?} has no lemmas"),
            Self::TaxonomyCycle(k) => write!(f, "is-a cycle through concept {k:?}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally assembles a [`SemanticNetwork`].
///
/// Edges are declared by key so concepts can be registered in any order.
/// Every edge automatically gains its inverse (e.g. declaring `isa` also
/// records `has-kind` on the target), so traversals may treat the network
/// as a symmetric graph of typed links.
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    concepts: Vec<Concept>,
    key_index: HashMap<String, ConceptId>,
    relations: Vec<(String, RelationKind, String)>,
    duplicate: Option<String>,
}

impl NetworkBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a concept. `lemmas` are lowercased; multi-word lemmas use
    /// single spaces.
    pub fn concept(
        &mut self,
        key: &str,
        lemmas: &[&str],
        gloss: &str,
        frequency: u32,
        pos: PartOfSpeech,
    ) -> &mut Self {
        if self.key_index.contains_key(key) {
            self.duplicate.get_or_insert_with(|| key.to_string());
            return self;
        }
        let id = ConceptId(self.concepts.len() as u32);
        self.key_index.insert(key.to_string(), id);
        self.concepts.push(Concept {
            key: key.to_string(),
            lemmas: lemmas.iter().map(|l| l.to_lowercase()).collect(),
            gloss: gloss.to_string(),
            frequency,
            pos,
        });
        self
    }

    /// Shorthand: a noun concept with an is-a parent — the dominant pattern
    /// when writing a knowledge base by hand.
    pub fn noun(
        &mut self,
        key: &str,
        lemmas: &[&str],
        gloss: &str,
        frequency: u32,
        parent: &str,
    ) -> &mut Self {
        self.concept(key, lemmas, gloss, frequency, PartOfSpeech::Noun);
        self.relate(key, RelationKind::Hypernym, parent)
    }

    /// Shorthand: a verb concept with an is-a parent.
    pub fn verb(
        &mut self,
        key: &str,
        lemmas: &[&str],
        gloss: &str,
        frequency: u32,
        parent: &str,
    ) -> &mut Self {
        self.concept(key, lemmas, gloss, frequency, PartOfSpeech::Verb);
        self.relate(key, RelationKind::Hypernym, parent)
    }

    /// Shorthand: an adjective concept (no taxonomy parent).
    pub fn adjective(
        &mut self,
        key: &str,
        lemmas: &[&str],
        gloss: &str,
        frequency: u32,
    ) -> &mut Self {
        self.concept(key, lemmas, gloss, frequency, PartOfSpeech::Adjective)
    }

    /// Shorthand: a named individual, `instance-of` its class.
    pub fn instance(
        &mut self,
        key: &str,
        lemmas: &[&str],
        gloss: &str,
        frequency: u32,
        class: &str,
    ) -> &mut Self {
        self.concept(key, lemmas, gloss, frequency, PartOfSpeech::Noun);
        self.relate(key, RelationKind::InstanceHypernym, class)
    }

    /// Declares a typed relation between two keys (inverse auto-inserted).
    pub fn relate(&mut self, from: &str, kind: RelationKind, to: &str) -> &mut Self {
        self.relations
            .push((from.to_string(), kind, to.to_string()));
        self
    }

    /// Number of concepts registered so far.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// `true` if nothing was registered.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Validates and finalizes the network: resolves keys, inserts inverse
    /// edges, builds the word index (senses sorted by descending frequency),
    /// computes is-a depths, cumulative frequencies, and polysemy bounds.
    pub fn build(self) -> Result<SemanticNetwork, BuildError> {
        if let Some(dup) = self.duplicate {
            return Err(BuildError::DuplicateKey(dup));
        }
        for c in &self.concepts {
            if c.lemmas.is_empty() {
                return Err(BuildError::NoLemmas(c.key.clone()));
            }
        }
        let n = self.concepts.len();
        let mut adjacency: Vec<Vec<(RelationKind, ConceptId)>> = vec![Vec::new(); n];
        for (from, kind, to) in &self.relations {
            let &f = self
                .key_index
                .get(from)
                .ok_or_else(|| BuildError::UnknownKey(from.clone()))?;
            let &t = self
                .key_index
                .get(to)
                .ok_or_else(|| BuildError::UnknownKey(to.clone()))?;
            if !adjacency[f.index()].contains(&(*kind, t)) {
                adjacency[f.index()].push((*kind, t));
            }
            let inv = (kind.inverse(), f);
            if !adjacency[t.index()].contains(&inv) {
                adjacency[t.index()].push(inv);
            }
        }

        // Word index: lemma → senses, most frequent first (WordNet-style
        // first-sense ordering).
        let mut word_index: HashMap<String, Vec<ConceptId>> = HashMap::new();
        for (i, c) in self.concepts.iter().enumerate() {
            for lemma in &c.lemmas {
                word_index
                    .entry(lemma.clone())
                    .or_default()
                    .push(ConceptId(i as u32));
            }
        }
        for senses in word_index.values_mut() {
            senses.sort_by(|a, b| {
                self.concepts[b.index()]
                    .frequency
                    .cmp(&self.concepts[a.index()].frequency)
                    .then(a.cmp(b))
            });
        }
        let max_polysemy = word_index.values().map(Vec::len).max().unwrap_or(0);

        // Topological order over is-a edges (children before parents), used
        // for both depth computation and cumulative frequencies; also
        // detects taxonomy cycles.
        let order = taxonomy_topo_order(&self.concepts, &adjacency)?;

        // Depth: roots (no upward edge) are 0; otherwise 1 + min parent depth.
        // Process in reverse topological order (parents before children).
        let mut depths = vec![u32::MAX; n];
        for &id in order.iter().rev() {
            let ups: Vec<ConceptId> = adjacency[id.index()]
                .iter()
                .filter(|(k, _)| k.is_upward())
                .map(|&(_, c)| c)
                .collect();
            depths[id.index()] = if ups.is_empty() {
                0
            } else {
                ups.iter()
                    .map(|p| depths[p.index()].saturating_add(1))
                    .min()
                    .unwrap_or(u32::MAX)
            };
        }

        // Cumulative frequency: own + sum of is-a children, children first.
        // A concept with multiple hypernyms contributes to each parent (the
        // standard WordNet IC convention over a DAG may double-count; this
        // is acceptable and monotone, which is all Lin similarity needs).
        let mut cumulative = vec![0u64; n];
        for &id in &order {
            let mut sum = self.concepts[id.index()].frequency as u64;
            let downs: Vec<ConceptId> = adjacency[id.index()]
                .iter()
                .filter(|(k, _)| matches!(k, RelationKind::Hyponym | RelationKind::InstanceHyponym))
                .map(|&(_, c)| c)
                .collect();
            for d in downs {
                sum += cumulative[d.index()];
            }
            cumulative[id.index()] = sum;
        }

        let total_freq = self.concepts.iter().map(|c| c.frequency as u64).sum();

        Ok(SemanticNetwork {
            concepts: self.concepts,
            adjacency,
            word_index,
            key_index: self.key_index,
            depths,
            cumulative_freq: cumulative,
            total_freq,
            max_polysemy,
            artifacts: std::sync::OnceLock::new(),
        })
    }
}

/// Topological order of concepts such that every concept appears *before*
/// its hypernyms (children first). Errors on is-a cycles.
fn taxonomy_topo_order(
    concepts: &[Concept],
    adjacency: &[Vec<(RelationKind, ConceptId)>],
) -> Result<Vec<ConceptId>, BuildError> {
    let n = concepts.len();
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = in progress, 2 = done
    let mut order = Vec::with_capacity(n);
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        // Iterative DFS along upward edges.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(&mut (node, ref mut edge_idx)) = stack.last_mut() {
            let ups: Vec<usize> = adjacency[node]
                .iter()
                .filter(|(k, _)| k.is_upward())
                .map(|(_, c)| c.index())
                .collect();
            if *edge_idx < ups.len() {
                let next = ups[*edge_idx];
                *edge_idx += 1;
                match state[next] {
                    0 => {
                        state[next] = 1;
                        stack.push((next, 0));
                    }
                    1 => return Err(BuildError::TaxonomyCycle(concepts[next].key.clone())),
                    _ => {}
                }
            } else {
                state[node] = 2;
                stack.pop();
                order.push(ConceptId(node as u32));
            }
        }
    }
    // `order` currently lists parents before the children that reached them
    // (post-order over upward edges puts hypernyms first)… verify direction:
    // post-order emits a node after all its hypernyms, so parents come
    // first. We want children first for cumulative sums, so reverse.
    order.reverse();
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_key_rejected() {
        let mut b = NetworkBuilder::new();
        b.concept("a", &["a"], "", 1, PartOfSpeech::Noun);
        b.concept("a", &["a"], "", 1, PartOfSpeech::Noun);
        assert_eq!(b.build().unwrap_err(), BuildError::DuplicateKey("a".into()));
    }

    #[test]
    fn unknown_relation_target_rejected() {
        let mut b = NetworkBuilder::new();
        b.concept("a", &["a"], "", 1, PartOfSpeech::Noun);
        b.relate("a", RelationKind::Hypernym, "missing");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UnknownKey("missing".into())
        );
    }

    #[test]
    fn empty_lemmas_rejected() {
        let mut b = NetworkBuilder::new();
        b.concept("a", &[], "", 1, PartOfSpeech::Noun);
        assert_eq!(b.build().unwrap_err(), BuildError::NoLemmas("a".into()));
    }

    #[test]
    fn taxonomy_cycle_rejected() {
        let mut b = NetworkBuilder::new();
        b.concept("a", &["a"], "", 1, PartOfSpeech::Noun);
        b.concept("b", &["b"], "", 1, PartOfSpeech::Noun);
        b.relate("a", RelationKind::Hypernym, "b");
        b.relate("b", RelationKind::Hypernym, "a");
        assert!(matches!(b.build(), Err(BuildError::TaxonomyCycle(_))));
    }

    #[test]
    fn non_taxonomic_cycles_allowed() {
        // part-of cycles are odd but must not be rejected (only is-a counts).
        let mut b = NetworkBuilder::new();
        b.concept("a", &["a"], "", 1, PartOfSpeech::Noun);
        b.concept("b", &["b"], "", 1, PartOfSpeech::Noun);
        b.relate("a", RelationKind::PartOf, "b");
        b.relate("b", RelationKind::PartOf, "a");
        assert!(b.build().is_ok());
    }

    #[test]
    fn diamond_taxonomy_depth_is_min_path() {
        // a → b → d, a → c → d… depth(a) computed through the shorter path
        // when one exists.
        let mut b = NetworkBuilder::new();
        b.concept("root", &["root"], "", 1, PartOfSpeech::Noun);
        b.concept("mid", &["mid"], "", 1, PartOfSpeech::Noun);
        b.concept("leaf", &["leaf"], "", 1, PartOfSpeech::Noun);
        b.relate("mid", RelationKind::Hypernym, "root");
        b.relate("leaf", RelationKind::Hypernym, "mid");
        b.relate("leaf", RelationKind::Hypernym, "root"); // shortcut
        let sn = b.build().unwrap();
        assert_eq!(sn.depth(sn.by_key("leaf").unwrap()), 1);
    }

    #[test]
    fn lemmas_lowercased() {
        let mut b = NetworkBuilder::new();
        b.concept(
            "kelly.grace",
            &["Kelly", "Grace Kelly"],
            "",
            1,
            PartOfSpeech::Noun,
        );
        let sn = b.build().unwrap();
        assert!(sn.has_word("kelly"));
        assert!(sn.has_word("grace kelly"));
        assert!(!sn.has_word("Kelly")); // index is lowercase
    }

    #[test]
    fn duplicate_edges_deduplicated() {
        let mut b = NetworkBuilder::new();
        b.concept("a", &["a"], "", 1, PartOfSpeech::Noun);
        b.concept("b", &["b"], "", 1, PartOfSpeech::Noun);
        b.relate("a", RelationKind::Hypernym, "b");
        b.relate("a", RelationKind::Hypernym, "b");
        let sn = b.build().unwrap();
        assert_eq!(sn.edges(sn.by_key("a").unwrap()).len(), 1);
    }

    #[test]
    fn shorthand_helpers() {
        let mut b = NetworkBuilder::new();
        b.concept("entity.n", &["entity"], "", 10, PartOfSpeech::Noun);
        b.noun("person.n", &["person"], "a human", 5, "entity.n");
        b.instance(
            "kelly.grace",
            &["kelly"],
            "Princess of Monaco",
            1,
            "person.n",
        );
        b.verb("run.v", &["run"], "move fast", 3, "entity.n");
        b.adjective("fast.a", &["fast"], "quick", 2);
        let sn = b.build().unwrap();
        assert_eq!(sn.len(), 5);
        let kelly = sn.by_key("kelly.grace").unwrap();
        assert_eq!(sn.depth(kelly), 2);
    }
}
