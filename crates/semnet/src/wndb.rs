//! Importer for the Princeton WordNet database format (`data.noun`,
//! `data.verb`, `data.adj`, `data.adv` — the "WNDB" format of
//! `wndb(5WN)`), so the framework can run against the real WordNet the
//! paper used instead of the built-in MiniWordNet.
//!
//! Only the fields XSDF consumes are read: synset offsets, part of
//! speech, lemmas, inter-synset pointers, and glosses. Sense frequencies
//! (the weighted network `S̄N`) can be supplied separately via
//! [`WndbImporter::set_frequency`] (WordNet ships them in `cntlist`),
//! defaulting to 1.
//!
//! ```text
//! 02084442 05 n 03 dog 0 domestic_dog 0 Canis_familiaris 0 022 @ 02083346 n 0000 ... | a member of the genus Canis
//! ^offset     ^pos ^lemma count            ^pointers: symbol offset pos src/tgt     ^gloss
//! ```

use std::collections::HashMap;

use crate::builder::NetworkBuilder;
use crate::model::{PartOfSpeech, RelationKind};
use crate::network::SemanticNetwork;

/// Errors raised while reading WNDB data.
#[derive(Debug)]
pub enum WndbError {
    /// A malformed data line (1-based line number and explanation).
    Syntax {
        /// Line number within the supplied text.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The assembled network failed validation.
    Build(crate::builder::BuildError),
}

impl std::fmt::Display for WndbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Syntax { line, message } => write!(f, "wndb line {line}: {message}"),
            Self::Build(e) => write!(f, "wndb network invalid: {e}"),
        }
    }
}

impl std::error::Error for WndbError {}

/// Maps a WNDB pointer symbol to the relation kinds this crate models.
/// Unmapped symbols (antonym-of-satellite exotica, domain links, …) are
/// skipped rather than failing the import.
fn relation_of(symbol: &str) -> Option<RelationKind> {
    Some(match symbol {
        "@" => RelationKind::Hypernym,
        "@i" => RelationKind::InstanceHypernym,
        "~" => RelationKind::Hyponym,
        "~i" => RelationKind::InstanceHyponym,
        "#p" => RelationKind::PartOf,
        "%p" => RelationKind::HasPart,
        "#m" => RelationKind::MemberOf,
        "%m" => RelationKind::HasMember,
        "!" => RelationKind::Antonym,
        "&" => RelationKind::SimilarTo,
        "=" => RelationKind::Attribute,
        "+" => RelationKind::DerivedFrom,
        _ => return None,
    })
}

/// One parsed synset line.
#[derive(Debug, Clone)]
struct RawSynset {
    offset: u64,
    pos: PartOfSpeech,
    lemmas: Vec<String>,
    pointers: Vec<(RelationKind, u64, PartOfSpeech)>,
    gloss: String,
}

/// Parses the data lines of one WNDB file (header lines starting with two
/// spaces are skipped, as in the real files).
fn parse_data(text: &str, pos: PartOfSpeech, out: &mut Vec<RawSynset>) -> Result<(), WndbError> {
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        if raw.starts_with("  ") || raw.trim().is_empty() {
            continue; // license header / blanks
        }
        let (head, gloss) = match raw.split_once('|') {
            Some((h, g)) => (h, g.trim().to_string()),
            None => (raw, String::new()),
        };
        let fields: Vec<&str> = head.split_whitespace().collect();
        let err = |message: String| WndbError::Syntax {
            line: line_no,
            message,
        };
        if fields.len() < 4 {
            return Err(err("truncated synset line".into()));
        }
        let offset: u64 = fields[0]
            .parse()
            .map_err(|_| err(format!("bad offset {:?}", fields[0])))?;
        // fields[1] = lex filenum, fields[2] = ss_type, fields[3] = w_cnt (hex).
        let w_cnt = usize::from_str_radix(fields[3], 16)
            .map_err(|_| err(format!("bad word count {:?}", fields[3])))?;
        let mut idx = 4;
        let mut lemmas = Vec::with_capacity(w_cnt);
        for _ in 0..w_cnt {
            let lemma = fields
                .get(idx)
                .ok_or_else(|| err("missing lemma".into()))?
                .replace('_', " ")
                .to_lowercase();
            // Strip adjective syntax markers like "(a)".
            let lemma = lemma.split('(').next().unwrap_or(&lemma).trim().to_string();
            lemmas.push(lemma);
            idx += 2; // lemma + lex_id
        }
        let p_cnt: usize = fields
            .get(idx)
            .ok_or_else(|| err("missing pointer count".into()))?
            .parse()
            .map_err(|_| err("bad pointer count".into()))?;
        idx += 1;
        let mut pointers = Vec::with_capacity(p_cnt);
        for _ in 0..p_cnt {
            let symbol = *fields
                .get(idx)
                .ok_or_else(|| err("missing pointer symbol".into()))?;
            let target: u64 = fields
                .get(idx + 1)
                .ok_or_else(|| err("missing pointer offset".into()))?
                .parse()
                .map_err(|_| err("bad pointer offset".into()))?;
            // `from_code` folds the satellite code `s` to Adjective, so
            // pointers into satellite synsets land on the `a`-keyed entry.
            let target_pos = fields
                .get(idx + 2)
                .and_then(|c| c.chars().next())
                .and_then(PartOfSpeech::from_code)
                .ok_or_else(|| err("bad pointer pos".into()))?;
            if let Some(kind) = relation_of(symbol) {
                pointers.push((kind, target, target_pos));
            }
            idx += 4; // symbol, offset, pos, source/target
        }
        out.push(RawSynset {
            offset,
            pos,
            lemmas,
            pointers,
            gloss,
        });
    }
    Ok(())
}

/// Accumulates WNDB data files and assembles a [`SemanticNetwork`].
#[derive(Debug, Default)]
pub struct WndbImporter {
    synsets: Vec<RawSynset>,
    frequencies: HashMap<(u64, char), u32>,
}

impl WndbImporter {
    /// An empty importer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the contents of one `data.<pos>` file.
    pub fn add_data(&mut self, text: &str, pos: PartOfSpeech) -> Result<&mut Self, WndbError> {
        parse_data(text, pos, &mut self.synsets)?;
        Ok(self)
    }

    /// Sets the corpus frequency of a synset (from `cntlist`-style data).
    pub fn set_frequency(&mut self, offset: u64, pos: PartOfSpeech, frequency: u32) -> &mut Self {
        self.frequencies.insert((offset, pos.code()), frequency);
        self
    }

    /// Number of synsets parsed so far.
    pub fn len(&self) -> usize {
        self.synsets.len()
    }

    /// `true` if nothing was parsed.
    pub fn is_empty(&self) -> bool {
        self.synsets.is_empty()
    }

    /// Assembles the semantic network. Pointers to synsets that were not
    /// loaded (e.g. verbs referenced from a nouns-only import) are skipped.
    pub fn build(self) -> Result<SemanticNetwork, WndbError> {
        let mut keys: HashMap<(u64, char), String> = HashMap::new();
        for s in &self.synsets {
            let key = format!("{}-{:08}", s.pos.code(), s.offset);
            keys.insert((s.offset, s.pos.code()), key);
        }
        let mut b = NetworkBuilder::new();
        for s in &self.synsets {
            let key = &keys[&(s.offset, s.pos.code())];
            let lemmas: Vec<&str> = s.lemmas.iter().map(String::as_str).collect();
            let gloss = if s.gloss.is_empty() {
                "(no gloss)"
            } else {
                &s.gloss
            };
            let freq = self
                .frequencies
                .get(&(s.offset, s.pos.code()))
                .copied()
                .unwrap_or(1);
            b.concept(key, &lemmas, gloss, freq, s.pos);
        }
        for s in &self.synsets {
            let from = &keys[&(s.offset, s.pos.code())];
            for (kind, target, target_pos) in &s.pointers {
                // Only record the canonical direction; the builder inserts
                // inverses automatically, and WNDB lists both directions.
                let canonical = matches!(
                    kind,
                    RelationKind::Hypernym
                        | RelationKind::InstanceHypernym
                        | RelationKind::PartOf
                        | RelationKind::MemberOf
                        | RelationKind::Antonym
                        | RelationKind::SimilarTo
                        | RelationKind::Attribute
                        | RelationKind::DerivedFrom
                );
                if !canonical {
                    continue;
                }
                if let Some(to) = keys.get(&(*target, target_pos.code())) {
                    b.relate(from, *kind, to);
                }
            }
        }
        b.build().map_err(WndbError::Build)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature, hand-written slice of WordNet's data.noun: entity →
    /// physical entity → object; dog under object; plus a part link.
    const NOUN_FIXTURE: &str = "  1 This is a header line and must be skipped.
00001740 03 n 01 entity 0 001 ~ 00001930 n 0000 | that which is perceived to have its own distinct existence
00001930 03 n 02 physical_entity 0 phys 1 002 @ 00001740 n 0000 ~ 00002452 n 0000 | an entity that has physical existence
00002452 03 n 01 object 0 002 @ 00001930 n 0000 %p 00002684 n 0000 | a tangible and visible entity
00002684 05 n 02 dog 0 domestic_dog 1 002 @ 00002452 n 0000 #p 00002452 n 0000 | a member of the genus Canis
";

    #[test]
    fn parses_the_fixture() {
        let mut importer = WndbImporter::new();
        importer.add_data(NOUN_FIXTURE, PartOfSpeech::Noun).unwrap();
        assert_eq!(importer.len(), 4);
        let sn = importer.build().unwrap();
        assert_eq!(sn.len(), 4);
        // Multi-word lemma with underscores resolved.
        assert!(sn.has_word("physical entity"));
        assert!(sn.has_word("domestic dog"));
        // Taxonomy depths follow the hypernym chain.
        let dog = sn.by_key("n-00002684").unwrap();
        assert_eq!(sn.depth(dog), 3);
        // Glosses survive.
        assert!(sn.concept(dog).gloss.contains("genus Canis"));
    }

    #[test]
    fn part_links_imported() {
        let mut importer = WndbImporter::new();
        importer.add_data(NOUN_FIXTURE, PartOfSpeech::Noun).unwrap();
        let sn = importer.build().unwrap();
        let dog = sn.by_key("n-00002684").unwrap();
        let object = sn.by_key("n-00002452").unwrap();
        let wholes: Vec<_> = sn.related(dog, RelationKind::PartOf).collect();
        assert_eq!(wholes, vec![object]);
    }

    #[test]
    fn frequencies_apply() {
        let mut importer = WndbImporter::new();
        importer.add_data(NOUN_FIXTURE, PartOfSpeech::Noun).unwrap();
        importer.set_frequency(0x0, PartOfSpeech::Noun, 0); // no-op key
        importer.set_frequency(2684, PartOfSpeech::Noun, 42);
        let sn = importer.build().unwrap();
        let dog = sn.by_key("n-00002684").unwrap();
        assert_eq!(sn.frequency(dog), 42);
    }

    #[test]
    fn dangling_pointers_skipped() {
        let text = "00000001 03 n 01 widget 0 001 @ 99999999 n 0000 | a thing\n";
        let mut importer = WndbImporter::new();
        importer.add_data(text, PartOfSpeech::Noun).unwrap();
        let sn = importer.build().unwrap();
        assert_eq!(sn.len(), 1);
        assert_eq!(sn.edges(sn.by_key("n-00000001").unwrap()).len(), 0);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let mut importer = WndbImporter::new();
        let err = importer
            .add_data("not a synset line\n", PartOfSpeech::Noun)
            .unwrap_err();
        match err {
            WndbError::Syntax { line, .. } => assert_eq!(line, 1),
            other => panic!("{other}"),
        }
    }

    /// A head adjective plus a satellite (`ss_type s`). Satellite synsets
    /// key under `a` everywhere: the similar-to pointer carries pos `s`,
    /// and `cntlist`-style frequencies are often listed under `s` too —
    /// both must fold to the `a`-keyed synset instead of silently missing.
    const ADJ_SATELLITE_FIXTURE: &str = "\
00004000 00 a 01 fast 0 001 & 00004100 s 0000 | acting or moving quickly
00004100 00 s 01 speedy 0 001 & 00004000 a 0000 | marked by swiftness
";

    #[test]
    fn satellite_frequency_under_s_code_applies() {
        let mut importer = WndbImporter::new();
        importer
            .add_data(ADJ_SATELLITE_FIXTURE, PartOfSpeech::Adjective)
            .unwrap();
        // A cntlist-driven caller parses the sense's `s` code verbatim.
        let satellite_pos = PartOfSpeech::from_code('s').expect("satellite code folds");
        importer.set_frequency(4100, satellite_pos, 42);
        let sn = importer.build().unwrap();
        let speedy = sn.by_key("a-00004100").unwrap();
        assert_eq!(sn.frequency(speedy), 42);
        // The similar-to pointer with target pos `s` resolved.
        let fast = sn.by_key("a-00004000").unwrap();
        let similar: Vec<_> = sn.related(fast, RelationKind::SimilarTo).collect();
        assert_eq!(similar, vec![speedy]);
    }

    #[test]
    fn adjective_markers_stripped() {
        let text = "00003000 00 a 01 light(a) 0 000 | of little weight\n";
        let mut importer = WndbImporter::new();
        importer.add_data(text, PartOfSpeech::Adjective).unwrap();
        let sn = importer.build().unwrap();
        assert!(sn.has_word("light"));
    }

    #[test]
    fn imported_network_drives_the_text_format() {
        let mut importer = WndbImporter::new();
        importer.add_data(NOUN_FIXTURE, PartOfSpeech::Noun).unwrap();
        let sn = importer.build().unwrap();
        let text = crate::format::to_text(&sn);
        let reloaded = crate::format::from_text(&text).unwrap();
        assert_eq!(sn.len(), reloaded.len());
    }
}
