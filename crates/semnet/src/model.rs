//! Core data types of the semantic network (Definition 2).

use std::fmt;

/// Index of a concept (synset) within a [`crate::SemanticNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(pub u32);

impl ConceptId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Part of speech of a synset. The evaluation corpus is overwhelmingly
/// nominal, but verb/adjective senses contribute to polysemy counts
/// (Proposition 1 counts *all* senses of a word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PartOfSpeech {
    /// Noun synset.
    #[default]
    Noun,
    /// Verb synset.
    Verb,
    /// Adjective synset.
    Adjective,
    /// Adverb synset.
    Adverb,
}

impl PartOfSpeech {
    /// One-letter code used by the text format (`n`, `v`, `a`, `r`).
    pub fn code(self) -> char {
        match self {
            Self::Noun => 'n',
            Self::Verb => 'v',
            Self::Adjective => 'a',
            Self::Adverb => 'r',
        }
    }

    /// Parses a one-letter code. WordNet's satellite-adjective code `s`
    /// folds to [`PartOfSpeech::Adjective`], matching how WNDB pointers
    /// (and the importer's synset keys) treat satellites as `a`; without
    /// the fold, frequencies or lookups keyed by a satellite sense's `s`
    /// code would silently miss their synset.
    pub fn from_code(c: char) -> Option<Self> {
        match c {
            'n' => Some(Self::Noun),
            'v' => Some(Self::Verb),
            'a' | 's' => Some(Self::Adjective),
            'r' => Some(Self::Adverb),
            _ => None,
        }
    }
}

/// The semantic relations `R` of Definition 2. Synonymy is not an edge kind:
/// synonymous words live inside one concept (its lemma set), exactly as in
/// the paper ("the synonymous words/expressions being integrated in the
/// concepts themselves").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationKind {
    /// Is-A: the target is a generalization of the source (WordNet hypernym).
    Hypernym,
    /// Inverse of [`RelationKind::Hypernym`].
    Hyponym,
    /// Instance-of: a named individual of a class (e.g. *Grace Kelly*
    /// instance-of *actress*).
    InstanceHypernym,
    /// Inverse of [`RelationKind::InstanceHypernym`].
    InstanceHyponym,
    /// Part-Of: the source is a part of the target (WordNet part meronym,
    /// read source→whole).
    PartOf,
    /// Has-Part: inverse of [`RelationKind::PartOf`].
    HasPart,
    /// Member-Of: the source is a member of the target group.
    MemberOf,
    /// Has-Member: inverse of [`RelationKind::MemberOf`].
    HasMember,
    /// Antonymy between concepts.
    Antonym,
    /// Similarity between adjective concepts.
    SimilarTo,
    /// A noun for which the adjective expresses a value (WordNet attribute).
    Attribute,
    /// Morphological derivation between concepts of different POS.
    DerivedFrom,
}

impl RelationKind {
    /// The inverse relation; inserting an edge automatically inserts its
    /// inverse so traversals can treat the graph as symmetric.
    pub fn inverse(self) -> Self {
        match self {
            Self::Hypernym => Self::Hyponym,
            Self::Hyponym => Self::Hypernym,
            Self::InstanceHypernym => Self::InstanceHyponym,
            Self::InstanceHyponym => Self::InstanceHypernym,
            Self::PartOf => Self::HasPart,
            Self::HasPart => Self::PartOf,
            Self::MemberOf => Self::HasMember,
            Self::HasMember => Self::MemberOf,
            Self::Antonym => Self::Antonym,
            Self::SimilarTo => Self::SimilarTo,
            Self::Attribute => Self::Attribute,
            Self::DerivedFrom => Self::DerivedFrom,
        }
    }

    /// `true` for the two upward is-a kinds (hypernymy and instance
    /// hypernymy), which define taxonomy depth and subsumption.
    pub fn is_upward(self) -> bool {
        matches!(self, Self::Hypernym | Self::InstanceHypernym)
    }

    /// Stable name used by the text format.
    pub fn name(self) -> &'static str {
        match self {
            Self::Hypernym => "isa",
            Self::Hyponym => "has-kind",
            Self::InstanceHypernym => "instance-of",
            Self::InstanceHyponym => "has-instance",
            Self::PartOf => "part-of",
            Self::HasPart => "has-part",
            Self::MemberOf => "member-of",
            Self::HasMember => "has-member",
            Self::Antonym => "antonym",
            Self::SimilarTo => "similar-to",
            Self::Attribute => "attribute",
            Self::DerivedFrom => "derived-from",
        }
    }

    /// Parses a name produced by [`RelationKind::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "isa" => Self::Hypernym,
            "has-kind" => Self::Hyponym,
            "instance-of" => Self::InstanceHypernym,
            "has-instance" => Self::InstanceHyponym,
            "part-of" => Self::PartOf,
            "has-part" => Self::HasPart,
            "member-of" => Self::MemberOf,
            "has-member" => Self::HasMember,
            "antonym" => Self::Antonym,
            "similar-to" => Self::SimilarTo,
            "attribute" => Self::Attribute,
            "derived-from" => Self::DerivedFrom,
            _ => return None,
        })
    }

    /// All relation kinds (for exhaustive iteration in tests/loaders).
    pub const ALL: [RelationKind; 12] = [
        Self::Hypernym,
        Self::Hyponym,
        Self::InstanceHypernym,
        Self::InstanceHyponym,
        Self::PartOf,
        Self::HasPart,
        Self::MemberOf,
        Self::HasMember,
        Self::Antonym,
        Self::SimilarTo,
        Self::Attribute,
        Self::DerivedFrom,
    ];
}

impl fmt::Display for RelationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concept (synset): a unique word sense shared by its synonym lemmas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concept {
    /// Stable, human-readable key, e.g. `"star.performer"`.
    pub key: String,
    /// Synonym lemmas (`c.syn` in the paper), lowercase; multi-word lemmas
    /// use single spaces.
    pub lemmas: Vec<String>,
    /// The gloss `c.gloss`: a textual definition.
    pub gloss: String,
    /// Corpus frequency for the weighted network `S̄N` (Brown-corpus-style
    /// counts in the paper's Figure 2).
    pub frequency: u32,
    /// Part of speech.
    pub pos: PartOfSpeech,
}

impl Concept {
    /// The concept's primary label `c.ℓ` (its first lemma).
    pub fn label(&self) -> &str {
        self.lemmas.first().map(String::as_str).unwrap_or(&self.key)
    }
}

/// A typed edge between two concepts (`E ⊆ C × C` with `g: E → R`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source concept.
    pub from: ConceptId,
    /// Relation label.
    pub kind: RelationKind,
    /// Target concept.
    pub to: ConceptId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_is_involutive() {
        for kind in RelationKind::ALL {
            assert_eq!(kind.inverse().inverse(), kind);
        }
    }

    #[test]
    fn names_roundtrip() {
        for kind in RelationKind::ALL {
            assert_eq!(RelationKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(RelationKind::from_name("bogus"), None);
    }

    #[test]
    fn pos_codes_roundtrip() {
        for pos in [
            PartOfSpeech::Noun,
            PartOfSpeech::Verb,
            PartOfSpeech::Adjective,
            PartOfSpeech::Adverb,
        ] {
            assert_eq!(PartOfSpeech::from_code(pos.code()), Some(pos));
        }
        assert_eq!(PartOfSpeech::from_code('x'), None);
    }

    #[test]
    fn upward_kinds() {
        assert!(RelationKind::Hypernym.is_upward());
        assert!(RelationKind::InstanceHypernym.is_upward());
        assert!(!RelationKind::Hyponym.is_upward());
        assert!(!RelationKind::PartOf.is_upward());
    }

    #[test]
    fn concept_label_is_first_lemma() {
        let c = Concept {
            key: "star.performer".into(),
            lemmas: vec!["star".into(), "principal".into()],
            gloss: "an actor who plays a principal role".into(),
            frequency: 10,
            pos: PartOfSpeech::Noun,
        };
        assert_eq!(c.label(), "star");
    }
}
