//! Graph queries over a semantic network: subsumption, lowest common
//! subsumer, shortest paths, and the semantic sphere neighborhoods used by
//! context-based disambiguation (Section 3.5.2 of the paper).

use std::collections::{HashMap, VecDeque};

use crate::model::{ConceptId, RelationKind};
use crate::network::SemanticNetwork;

/// All is-a ancestors of a concept with their minimal hypernym-path
/// distances, including the concept itself at distance 0.
pub fn ancestors_with_distance(sn: &SemanticNetwork, c: ConceptId) -> HashMap<ConceptId, u32> {
    let mut out = HashMap::new();
    let mut queue = VecDeque::new();
    out.insert(c, 0);
    queue.push_back((c, 0u32));
    while let Some((node, d)) = queue.pop_front() {
        for parent in sn.hypernyms(node) {
            if let std::collections::hash_map::Entry::Vacant(e) = out.entry(parent) {
                e.insert(d + 1);
                queue.push_back((parent, d + 1));
            }
        }
    }
    out
}

/// The lowest common subsumer (LCS) of two concepts: the shared is-a
/// ancestor with maximal taxonomy depth. `None` when the concepts share no
/// ancestor (different taxonomy roots).
pub fn lowest_common_subsumer(
    sn: &SemanticNetwork,
    a: ConceptId,
    b: ConceptId,
) -> Option<ConceptId> {
    let anc_a = ancestors_with_distance(sn, a);
    let anc_b = ancestors_with_distance(sn, b);
    anc_a
        .keys()
        .filter(|c| anc_b.contains_key(c))
        .copied()
        .max_by_key(|&c| (sn.depth(c), std::cmp::Reverse(c)))
}

/// Length (in edges) of the shortest is-a path between two concepts going
/// through their LCS, the path length used by edge-based similarity.
pub fn taxonomy_path_length(sn: &SemanticNetwork, a: ConceptId, b: ConceptId) -> Option<u32> {
    let anc_a = ancestors_with_distance(sn, a);
    let anc_b = ancestors_with_distance(sn, b);
    anc_a
        .iter()
        .filter_map(|(c, da)| anc_b.get(c).map(|db| da + db))
        .min()
}

/// `true` if `ancestor` subsumes `c` (is an is-a ancestor of it, or equal).
pub fn subsumes(sn: &SemanticNetwork, ancestor: ConceptId, c: ConceptId) -> bool {
    ancestors_with_distance(sn, c).contains_key(&ancestor)
}

/// Which relation kinds a semantic sphere traversal may cross.
///
/// The paper builds concept spheres "using the different kinds of semantic
/// relations connecting semantic concepts (e.g., hypernyms, hyponyms,
/// meronyms, holonyms)" — i.e. all typed links. [`RelationFilter`] makes
/// the set explicit and lets ablations restrict it.
#[derive(Debug, Clone)]
pub enum RelationFilter {
    /// Cross every relation kind.
    All,
    /// Cross only the listed kinds.
    Only(Vec<RelationKind>),
}

impl RelationFilter {
    fn allows(&self, kind: RelationKind) -> bool {
        match self {
            Self::All => true,
            Self::Only(kinds) => kinds.contains(&kind),
        }
    }

    /// A stable 64-bit fingerprint of the *crossable set* this filter
    /// denotes, for use in memoization keys (e.g. cached concept context
    /// vectors keyed by `(concept, radius, filter)`).
    ///
    /// The fingerprint is the membership bitmask itself (bit `k` set iff
    /// `RelationKind` with discriminant `k` is crossable). Two filters
    /// allowing the same relation kinds therefore fingerprint equal
    /// regardless of representation — `Only([Hypernym, Hyponym])`,
    /// `Only([Hyponym, Hypernym])` and `Only([Hypernym, Hypernym,
    /// Hyponym])` all collapse, and an `Only` listing every kind equals
    /// `All` — while filters denoting *different* sets can never collide:
    /// the mask is injective for up to 64 relation kinds, unlike the
    /// earlier FNV-1a hash of it, whose collisions (however unlikely)
    /// would have silently served one filter's cached context vectors to
    /// another. Cache keys live in process memory only, so the value
    /// change is invisible to persisted state.
    pub fn fingerprint(&self) -> u64 {
        let mut mask = 0u64;
        for kind in RelationKind::ALL {
            if self.allows(kind) {
                mask |= 1 << (kind as u64);
            }
        }
        mask
    }
}

/// The semantic ring `R_d(c)`: concepts at exactly `d` crossable links from
/// `c` (the semantic-network counterpart of the paper's Definition 4).
pub fn concept_ring(
    sn: &SemanticNetwork,
    center: ConceptId,
    d: u32,
    filter: &RelationFilter,
) -> Vec<ConceptId> {
    concept_sphere(sn, center, d, filter)
        .into_iter()
        .filter(|&(_, dist)| dist == d)
        .map(|(c, _)| c)
        .collect()
}

/// The semantic sphere `S_d(c)`: concepts within `d` crossable links of
/// `c`, excluding the center, with their distances (the semantic-network
/// counterpart of Definition 5, used by Definition 10).
pub fn concept_sphere(
    sn: &SemanticNetwork,
    center: ConceptId,
    d: u32,
    filter: &RelationFilter,
) -> Vec<(ConceptId, u32)> {
    let mut seen: HashMap<ConceptId, u32> = HashMap::new();
    let mut queue = VecDeque::new();
    seen.insert(center, 0);
    queue.push_back((center, 0u32));
    let mut out = Vec::new();
    while let Some((node, dist)) = queue.pop_front() {
        if dist >= d {
            continue;
        }
        for &(kind, next) in sn.edges(node) {
            if filter.allows(kind) && !seen.contains_key(&next) {
                seen.insert(next, dist + 1);
                out.push((next, dist + 1));
                queue.push_back((next, dist + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::model::PartOfSpeech;

    /// entity → { person → actor → { star, clown }, object → vehicle }.
    fn taxonomy() -> SemanticNetwork {
        let mut b = NetworkBuilder::new();
        b.concept("entity", &["entity"], "", 1, PartOfSpeech::Noun);
        b.noun("person", &["person"], "", 1, "entity");
        b.noun("object", &["object"], "", 1, "entity");
        b.noun("actor", &["actor"], "", 1, "person");
        b.noun("star", &["star"], "", 1, "actor");
        b.noun("clown", &["clown"], "", 1, "actor");
        b.noun("vehicle", &["vehicle"], "", 1, "object");
        b.relate("star", RelationKind::MemberOf, "cast");
        b.concept(
            "cast",
            &["cast"],
            "the actors of a show",
            1,
            PartOfSpeech::Noun,
        );
        b.relate("cast", RelationKind::Hypernym, "entity");
        b.build().unwrap()
    }

    fn id(sn: &SemanticNetwork, key: &str) -> ConceptId {
        sn.by_key(key).unwrap()
    }

    #[test]
    fn ancestors_include_self_at_zero() {
        let sn = taxonomy();
        let star = id(&sn, "star");
        let anc = ancestors_with_distance(&sn, star);
        assert_eq!(anc[&star], 0);
        assert_eq!(anc[&id(&sn, "actor")], 1);
        assert_eq!(anc[&id(&sn, "entity")], 3);
    }

    #[test]
    fn lcs_of_siblings_is_parent() {
        let sn = taxonomy();
        let lcs = lowest_common_subsumer(&sn, id(&sn, "star"), id(&sn, "clown")).unwrap();
        assert_eq!(sn.concept(lcs).key, "actor");
    }

    #[test]
    fn lcs_across_branches_is_root() {
        let sn = taxonomy();
        let lcs = lowest_common_subsumer(&sn, id(&sn, "star"), id(&sn, "vehicle")).unwrap();
        assert_eq!(sn.concept(lcs).key, "entity");
    }

    #[test]
    fn lcs_with_self_is_self() {
        let sn = taxonomy();
        let star = id(&sn, "star");
        assert_eq!(lowest_common_subsumer(&sn, star, star), Some(star));
    }

    #[test]
    fn lcs_of_ancestor_pair_is_the_ancestor() {
        let sn = taxonomy();
        let lcs = lowest_common_subsumer(&sn, id(&sn, "star"), id(&sn, "person")).unwrap();
        assert_eq!(sn.concept(lcs).key, "person");
    }

    #[test]
    fn path_length_via_lcs() {
        let sn = taxonomy();
        // star → actor → person ← … clown: star-actor-clown = 2.
        assert_eq!(
            taxonomy_path_length(&sn, id(&sn, "star"), id(&sn, "clown")),
            Some(2)
        );
        // star to vehicle: 3 up + 2 down = 5.
        assert_eq!(
            taxonomy_path_length(&sn, id(&sn, "star"), id(&sn, "vehicle")),
            Some(5)
        );
        assert_eq!(
            taxonomy_path_length(&sn, id(&sn, "star"), id(&sn, "star")),
            Some(0)
        );
    }

    #[test]
    fn subsumption() {
        let sn = taxonomy();
        assert!(subsumes(&sn, id(&sn, "person"), id(&sn, "star")));
        assert!(!subsumes(&sn, id(&sn, "star"), id(&sn, "person")));
        assert!(subsumes(&sn, id(&sn, "star"), id(&sn, "star")));
    }

    #[test]
    fn sphere_crosses_all_relations_by_default() {
        let sn = taxonomy();
        let star = id(&sn, "star");
        let s1: Vec<_> = concept_sphere(&sn, star, 1, &RelationFilter::All)
            .into_iter()
            .map(|(c, _)| sn.concept(c).key.clone())
            .collect();
        // actor (hypernym) and cast (member-of).
        assert!(s1.contains(&"actor".to_string()));
        assert!(s1.contains(&"cast".to_string()));
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn sphere_respects_filter() {
        let sn = taxonomy();
        let star = id(&sn, "star");
        let filter = RelationFilter::Only(vec![RelationKind::Hypernym, RelationKind::Hyponym]);
        let s1: Vec<_> = concept_sphere(&sn, star, 1, &filter)
            .into_iter()
            .map(|(c, _)| sn.concept(c).key.clone())
            .collect();
        assert_eq!(s1, ["actor"]);
    }

    #[test]
    fn sphere_distances_are_bfs_layers() {
        let sn = taxonomy();
        let star = id(&sn, "star");
        let sphere = concept_sphere(&sn, star, 2, &RelationFilter::All);
        let dist: HashMap<_, _> = sphere
            .iter()
            .map(|&(c, d)| (sn.concept(c).key.clone(), d))
            .collect();
        assert_eq!(dist["actor"], 1);
        assert_eq!(dist["cast"], 1);
        assert_eq!(dist["person"], 2);
        assert_eq!(dist["clown"], 2);
        // entity reachable at 2 via cast.
        assert_eq!(dist["entity"], 2);
    }

    #[test]
    fn ring_is_sphere_layer() {
        let sn = taxonomy();
        let star = id(&sn, "star");
        let ring2 = concept_ring(&sn, star, 2, &RelationFilter::All);
        let sphere = concept_sphere(&sn, star, 2, &RelationFilter::All);
        let expected: Vec<_> = sphere
            .into_iter()
            .filter(|&(_, d)| d == 2)
            .map(|(c, _)| c)
            .collect();
        assert_eq!(ring2, expected);
    }

    #[test]
    fn filter_fingerprint_is_representation_independent() {
        let a = RelationFilter::Only(vec![RelationKind::Hypernym, RelationKind::Hyponym]);
        let b = RelationFilter::Only(vec![
            RelationKind::Hyponym,
            RelationKind::Hypernym,
            RelationKind::Hypernym,
        ]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let everything = RelationFilter::Only(RelationKind::ALL.to_vec());
        assert_eq!(everything.fingerprint(), RelationFilter::All.fingerprint());
        assert_ne!(a.fingerprint(), RelationFilter::All.fingerprint());
        assert_ne!(
            RelationFilter::Only(vec![]).fingerprint(),
            RelationFilter::All.fingerprint()
        );
    }

    #[test]
    fn filter_fingerprint_is_injective_over_all_subsets() {
        // Regression for the vector-cache key: distinct crossable sets must
        // produce distinct fingerprints (the FNV hash used before PR 5 had
        // no such guarantee). Enumerate every subset of RelationKind::ALL.
        let kinds = RelationKind::ALL;
        let mut seen = std::collections::HashMap::new();
        for mask in 0u32..(1 << kinds.len()) {
            let subset: Vec<RelationKind> = kinds
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &k)| k)
                .collect();
            let fp = RelationFilter::Only(subset).fingerprint();
            if let Some(prior) = seen.insert(fp, mask) {
                panic!("fingerprint collision: subsets {prior:#b} and {mask:#b} → {fp:#x}");
            }
        }
        assert_eq!(seen.len(), 1 << kinds.len());
    }

    #[test]
    fn disconnected_concepts_have_no_lcs() {
        let mut b = NetworkBuilder::new();
        b.concept("a", &["a"], "", 1, PartOfSpeech::Noun);
        b.concept("b", &["b"], "", 1, PartOfSpeech::Noun);
        let sn = b.build().unwrap();
        assert_eq!(
            lowest_common_subsumer(&sn, ConceptId(0), ConceptId(1)),
            None
        );
        assert_eq!(taxonomy_path_length(&sn, ConceptId(0), ConceptId(1)), None);
    }
}
