//! Compiled binary snapshots of a [`SemanticNetwork`] **and** its
//! fully-built [`GlossArtifacts`], so cold start is a load, not a rebuild.
//!
//! Building a network from source (text format, WNDB files, or the
//! embedded MiniWordNet) re-runs tokenization, stop-filtering, Porter
//! stemming, interning, and neighbor-set sorting for every concept — fine
//! for the ~1k-synset MiniWordNet, a wall for the 117k-synset WordNet the
//! paper assumes. A snapshot serializes the *finished* state — concepts,
//! adjacency, word index, depths, cumulative frequencies, and the entire
//! artifact table — into one flat, offset-based binary that loads with a
//! single sequential read and no per-record parsing.
//!
//! ## Layout
//!
//! ```text
//! header   magic "XSDFSNAP" (8) | version u32 | payload_len u64
//!          | checksum u64 (FNV-1a folded over 8-byte LE words of the payload)
//! payload  a fixed sequence of sections, each:  tag u32 | body_len u64 | body
//!   META   concepts u32 | total_freq u64 | max_polysemy u64
//!   STRS   deduplicated string pool: count u32 | offsets (count+1)×u32 | UTF-8 blob
//!   CONC   key_sid n×u32 | gloss_sid n×u32 | freq n×u32 | pos n×u8
//!          | lemma offsets (n+1)×u32 | lemma_sid flat u32
//!   ADJC   edge offsets (n+1)×u32 | kind flat u8 | target flat u32
//!   DPTH   depths n×u32
//!   CUMF   cumulative frequencies n×u64
//!   WIDX   word index (sorted by lemma): count u32 | lemma_sid w×u32
//!          | sense offsets (w+1)×u32 | sense ids flat u32
//!   VOCB   interned token vocabulary: count u32 | sid v×u32
//!   ARTS   five list-of-lists (lemma/gloss/extended/token-set tokens,
//!          neighbor ids), each offsets (n+1)×u32 | flat u32
//! ```
//!
//! All integers are little-endian. `sid` values index the `STRS` pool;
//! every count, offset, string id, concept id, token id, relation code,
//! and part-of-speech code is bounds-checked on load, so corrupt or
//! truncated input yields a typed [`SnapshotError`] — never a panic, and
//! never an allocation sized by an unvalidated length prefix.
//!
//! ## Bit-identity
//!
//! Every field that influences scoring is serialized verbatim in its
//! stored order: concept order, adjacency order (which fixes extended-
//! gloss assembly), word-index sense order (which fixes first-sense
//! tie-breaks), and the interned artifact tables themselves. The loaded
//! artifacts are installed into the network's `OnceLock`, so batch
//! workers consume the exact bytes a rebuild would have produced; the
//! conformance suite and the CI batch differential pin this.

use std::collections::HashMap;
use std::path::Path;
use std::sync::OnceLock;

use crate::artifacts::GlossArtifacts;
use crate::model::{Concept, ConceptId, PartOfSpeech, RelationKind};
use crate::network::SemanticNetwork;

/// The 8-byte file magic; [`sniff`] uses it to tell snapshots from the
/// text format.
pub const MAGIC: [u8; 8] = *b"XSDFSNAP";

/// Current format version. Loading rejects any other version: layout
/// changes bump this, and there is deliberately no cross-version
/// migration — snapshots are cheap to recompile from source.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8 + 8;

const TAG_META: u32 = u32::from_le_bytes(*b"META");
const TAG_STRS: u32 = u32::from_le_bytes(*b"STRS");
const TAG_CONC: u32 = u32::from_le_bytes(*b"CONC");
const TAG_ADJC: u32 = u32::from_le_bytes(*b"ADJC");
const TAG_DPTH: u32 = u32::from_le_bytes(*b"DPTH");
const TAG_CUMF: u32 = u32::from_le_bytes(*b"CUMF");
const TAG_WIDX: u32 = u32::from_le_bytes(*b"WIDX");
const TAG_VOCB: u32 = u32::from_le_bytes(*b"VOCB");
const TAG_ARTS: u32 = u32::from_le_bytes(*b"ARTS");

/// Errors raised while loading a snapshot. Corrupt input of any shape —
/// wrong magic, foreign version, truncation at any byte, checksum damage,
/// or out-of-range indices — maps to one of these; the loader never
/// panics.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The input does not start with the snapshot magic.
    Magic,
    /// The snapshot was written by an incompatible format version.
    Version {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The input ends before the named structure is complete.
    Truncated {
        /// What was being read.
        context: &'static str,
        /// Byte offset (within the payload) where the read started.
        offset: usize,
    },
    /// The payload checksum does not match the header.
    Checksum {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// A count, offset, or id exceeds its valid range.
    Bounds {
        /// What was out of range.
        context: &'static str,
        /// The offending value.
        value: u64,
        /// The exclusive limit it violated.
        limit: u64,
    },
    /// A structurally invalid value (bad section tag, non-UTF-8 string,
    /// unknown relation or part-of-speech code, non-monotonic offsets).
    Corrupt {
        /// What was invalid.
        context: &'static str,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot io error: {e}"),
            Self::Magic => write!(f, "not a network snapshot (bad magic)"),
            Self::Version { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
            Self::Truncated { context, offset } => {
                write!(
                    f,
                    "snapshot truncated reading {context} at payload offset {offset}"
                )
            }
            Self::Checksum { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (header {stored:#018x}, payload {computed:#018x})"
            ),
            Self::Bounds {
                context,
                value,
                limit,
            } => write!(
                f,
                "snapshot {context} out of range: {value} (limit {limit})"
            ),
            Self::Corrupt { context } => write!(f, "snapshot corrupt: {context}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// `true` if the bytes begin with the snapshot magic — the cheap sniff
/// callers use to route a `--network` file to [`decode`] or to the text
/// [`crate::format`].
pub fn sniff(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// FNV-1a folded over 8-byte little-endian words (the trailing partial
/// word zero-padded). Byte-at-a-time FNV chains one multiply per *byte*;
/// at WordNet scale the payload is tens of megabytes and that serial
/// multiply chain alone would rival the rest of the load. Word folding
/// keeps the mixing (every input bit reaches the state through the same
/// xor-multiply round) at an eighth of the chain length. This is part of
/// the format definition, not an implementation detail — both sides of
/// the checksum must fold identically.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        hash ^= u64::from_le_bytes([w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7]]);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        hash ^= u64::from_le_bytes(tail);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Deduplicating string-pool builder: each distinct string is stored once
/// and referenced by its `u32` id everywhere (keys, glosses, lemmas,
/// word-index entries, and the artifact vocabulary all share the pool).
#[derive(Default)]
struct PoolBuilder {
    ids: HashMap<String, u32>,
    strings: Vec<String>,
}

impl PoolBuilder {
    fn sid(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.ids.insert(s.to_string(), id);
        self.strings.push(s.to_string());
        id
    }
}

struct Writer {
    out: Vec<u8>,
    layout: Vec<(&'static str, usize)>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes one tagged section: the body is produced by `body`, and the
    /// length slot is patched afterwards. Records the section's absolute
    /// start offset in the layout (the corrupt-snapshot suite truncates
    /// at exactly these boundaries).
    fn section(&mut self, name: &'static str, tag: u32, body: impl FnOnce(&mut Self)) {
        self.layout.push((name, self.out.len()));
        self.u32(tag);
        let len_slot = self.out.len();
        self.u64(0);
        let body_start = self.out.len();
        body(self);
        let body_len = (self.out.len() - body_start) as u64;
        self.out[len_slot..len_slot + 8].copy_from_slice(&body_len.to_le_bytes());
    }

    /// A `(n+1)`-entry offset table plus the flattened items of a
    /// list-of-lists, the snapshot's repeated building block.
    fn list_of_lists<L: AsRef<[u32]>>(&mut self, lists: &[L]) {
        let mut offset = 0u32;
        self.u32(offset);
        for list in lists {
            offset += list.as_ref().len() as u32;
            self.u32(offset);
        }
        for list in lists {
            for &v in list.as_ref() {
                self.u32(v);
            }
        }
    }
}

/// Serializes a network (building its [`GlossArtifacts`] first if
/// needed) into snapshot bytes.
pub fn encode(sn: &SemanticNetwork) -> Vec<u8> {
    encode_with_layout(sn).0
}

/// [`encode`], also returning the absolute byte offset of every section
/// boundary (name, offset) — consumed by the corrupt-snapshot test suite
/// and the `compile-network` diagnostics.
pub fn encode_with_layout(sn: &SemanticNetwork) -> (Vec<u8>, Vec<(&'static str, usize)>) {
    let art = sn.gloss_artifacts();
    let n = sn.len();
    let mut pool = PoolBuilder::default();

    // Intern every string first so section bodies only carry ids.
    let mut key_sids = Vec::with_capacity(n);
    let mut gloss_sids = Vec::with_capacity(n);
    let mut lemma_sids: Vec<Vec<u32>> = Vec::with_capacity(n);
    for id in sn.all_concepts() {
        let c = sn.concept(id);
        key_sids.push(pool.sid(&c.key));
        gloss_sids.push(pool.sid(&c.gloss));
        lemma_sids.push(c.lemmas.iter().map(|l| pool.sid(l)).collect());
    }
    // Word index sorted by lemma for a canonical byte stream (HashMap
    // iteration order must not leak into the artifact).
    let mut words: Vec<(&String, &Vec<ConceptId>)> = sn.word_index.iter().collect();
    words.sort_by(|a, b| a.0.cmp(b.0));
    let word_sids: Vec<u32> = words.iter().map(|(w, _)| pool.sid(w)).collect();
    let vocab_sids: Vec<u32> = (0..art.vocab_len() as u32)
        .map(|t| pool.sid(art.token(t)))
        .collect();

    let mut w = Writer {
        out: Vec::new(),
        layout: Vec::new(),
    };
    // Header placeholder; patched after the payload is complete.
    w.out.extend_from_slice(&MAGIC);
    w.u32(VERSION);
    w.u64(0); // payload_len
    w.u64(0); // checksum

    w.section("META", TAG_META, |w| {
        w.u32(n as u32);
        w.u64(sn.total_freq);
        w.u64(sn.max_polysemy as u64);
    });
    w.section("STRS", TAG_STRS, |w| {
        w.u32(pool.strings.len() as u32);
        let mut offset = 0u32;
        w.u32(offset);
        for s in &pool.strings {
            offset += s.len() as u32;
            w.u32(offset);
        }
        for s in &pool.strings {
            w.out.extend_from_slice(s.as_bytes());
        }
    });
    w.section("CONC", TAG_CONC, |w| {
        for &sid in &key_sids {
            w.u32(sid);
        }
        for &sid in &gloss_sids {
            w.u32(sid);
        }
        for id in sn.all_concepts() {
            w.u32(sn.concept(id).frequency);
        }
        for id in sn.all_concepts() {
            w.u8(sn.concept(id).pos.code() as u8);
        }
        w.list_of_lists(&lemma_sids);
    });
    w.section("ADJC", TAG_ADJC, |w| {
        let mut offset = 0u32;
        w.u32(offset);
        for id in sn.all_concepts() {
            offset += sn.edges(id).len() as u32;
            w.u32(offset);
        }
        for id in sn.all_concepts() {
            for &(kind, _) in sn.edges(id) {
                w.u8(kind_code(kind));
            }
        }
        for id in sn.all_concepts() {
            for &(_, to) in sn.edges(id) {
                w.u32(to.0);
            }
        }
    });
    w.section("DPTH", TAG_DPTH, |w| {
        for &d in &sn.depths {
            w.u32(d);
        }
    });
    w.section("CUMF", TAG_CUMF, |w| {
        for &c in &sn.cumulative_freq {
            w.u64(c);
        }
    });
    w.section("WIDX", TAG_WIDX, |w| {
        w.u32(words.len() as u32);
        for &sid in &word_sids {
            w.u32(sid);
        }
        let sense_lists: Vec<Vec<u32>> = words
            .iter()
            .map(|(_, senses)| senses.iter().map(|c| c.0).collect())
            .collect();
        w.list_of_lists(&sense_lists);
    });
    w.section("VOCB", TAG_VOCB, |w| {
        w.u32(vocab_sids.len() as u32);
        for &sid in &vocab_sids {
            w.u32(sid);
        }
    });
    w.section("ARTS", TAG_ARTS, |w| {
        let collect = |f: &dyn Fn(ConceptId) -> Vec<u32>| -> Vec<Vec<u32>> {
            sn.all_concepts().map(f).collect()
        };
        w.list_of_lists(&collect(&|c| art.lemma_tokens(c).to_vec()));
        w.list_of_lists(&collect(&|c| art.gloss_tokens(c).to_vec()));
        w.list_of_lists(&collect(&|c| art.extended_gloss(c).to_vec()));
        w.list_of_lists(&collect(&|c| art.token_set(c).to_vec()));
        w.list_of_lists(&collect(&|c| {
            art.neighbors(c).iter().map(|n| n.0).collect()
        }));
    });
    w.layout.push(("END", w.out.len()));

    let payload_len = (w.out.len() - HEADER_LEN) as u64;
    let checksum = fnv1a64(&w.out[HEADER_LEN..]);
    w.out[12..20].copy_from_slice(&payload_len.to_le_bytes());
    w.out[20..28].copy_from_slice(&checksum.to_le_bytes());
    (w.out, w.layout)
}

/// Relation kinds are stored as their index in [`RelationKind::ALL`].
fn kind_code(kind: RelationKind) -> u8 {
    RelationKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("RelationKind::ALL is exhaustive") as u8
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked sequential reader over the payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

type Res<T> = Result<T, SnapshotError>;

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, len: usize, context: &'static str) -> Res<&'a [u8]> {
        if len > self.remaining() {
            return Err(SnapshotError::Truncated {
                context,
                offset: self.pos,
            });
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    fn u32(&mut self, context: &'static str) -> Res<u32> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Res<u64> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads `count` u32s. The element count was validated against the
    /// remaining bytes by `take`, so a corrupted count cannot trigger an
    /// oversized allocation: allocation happens only after the slice
    /// exists.
    fn u32_vec(&mut self, count: usize, context: &'static str) -> Res<Vec<u32>> {
        let bytes = self.take(
            count.checked_mul(4).ok_or(SnapshotError::Bounds {
                context,
                value: count as u64,
                limit: u32::MAX as u64,
            })?,
            context,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect())
    }

    fn u64_vec(&mut self, count: usize, context: &'static str) -> Res<Vec<u64>> {
        let bytes = self.take(
            count.checked_mul(8).ok_or(SnapshotError::Bounds {
                context,
                value: count as u64,
                limit: u32::MAX as u64,
            })?,
            context,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
            .collect())
    }

    /// Enters the next section, checking its tag and that its declared
    /// body length fits the remaining input; returns the expected end
    /// position so the caller can verify it consumed exactly the body.
    fn section(&mut self, tag: u32, context: &'static str) -> Res<usize> {
        let found = self.u32(context)?;
        if found != tag {
            return Err(SnapshotError::Corrupt { context });
        }
        let len = self.u64(context)?;
        if len > self.remaining() as u64 {
            return Err(SnapshotError::Truncated {
                context,
                offset: self.pos,
            });
        }
        Ok(self.pos + len as usize)
    }

    fn finish_section(&self, end: usize, context: &'static str) -> Res<()> {
        if self.pos != end {
            return Err(SnapshotError::Corrupt { context });
        }
        Ok(())
    }

    /// Reads one list-of-lists written by [`Writer::list_of_lists`]:
    /// `n+1` offsets (validated monotonic) and the flattened items,
    /// mapped through `f`. The flattened array is decoded straight from
    /// the payload slice into the per-list vectors — no intermediate
    /// `Vec<u32>` — because this path carries the artifact tables, by
    /// far the largest part of a snapshot, and cold-start load time is
    /// the whole point of the format.
    fn list_of_lists<T>(
        &mut self,
        n: usize,
        context: &'static str,
        f: impl Fn(u32) -> Res<T>,
    ) -> Res<Vec<Vec<T>>> {
        let offsets = self.u32_vec(n + 1, context)?;
        if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(SnapshotError::Corrupt { context });
        }
        let total = offsets[n] as usize;
        let bytes = self.take(
            total.checked_mul(4).ok_or(SnapshotError::Bounds {
                context,
                value: total as u64,
                limit: u32::MAX as u64,
            })?,
            context,
        )?;
        let mut out = Vec::with_capacity(n);
        for w in offsets.windows(2) {
            let span = &bytes[w[0] as usize * 4..w[1] as usize * 4];
            let list = span
                .chunks_exact(4)
                .map(|b| f(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
                .collect::<Res<Vec<T>>>()?;
            out.push(list);
        }
        Ok(out)
    }
}

fn check_index(value: u32, limit: usize, context: &'static str) -> Res<u32> {
    if (value as usize) < limit {
        Ok(value)
    } else {
        Err(SnapshotError::Bounds {
            context,
            value: value as u64,
            limit: limit as u64,
        })
    }
}

/// Decodes snapshot bytes into a [`SemanticNetwork`] with its
/// [`GlossArtifacts`] pre-installed. Corrupt input of any shape yields a
/// typed [`SnapshotError`]; this function never panics.
pub fn decode(bytes: &[u8]) -> Result<SemanticNetwork, SnapshotError> {
    if !sniff(bytes) {
        return Err(SnapshotError::Magic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated {
            context: "header",
            offset: bytes.len(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(SnapshotError::Version {
            found: version,
            expected: VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let stored = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    if payload_len != payload.len() as u64 {
        return Err(SnapshotError::Truncated {
            context: "payload",
            offset: payload.len(),
        });
    }
    let computed = fnv1a64(payload);
    if computed != stored {
        return Err(SnapshotError::Checksum { stored, computed });
    }

    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };

    // META
    let end = c.section(TAG_META, "META section")?;
    let n = c.u32("concept count")? as usize;
    let total_freq = c.u64("total frequency")?;
    let max_polysemy = c.u64("max polysemy")? as usize;
    c.finish_section(end, "META section")?;

    // STRS
    let end = c.section(TAG_STRS, "STRS section")?;
    let str_count = c.u32("string count")? as usize;
    let str_offsets = c.u32_vec(str_count + 1, "string offsets")?;
    if str_offsets.first() != Some(&0) || str_offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Corrupt {
            context: "string offsets",
        });
    }
    let blob = c.take(str_offsets[str_count] as usize, "string blob")?;
    let mut strings = Vec::with_capacity(str_count);
    for w in str_offsets.windows(2) {
        let s = std::str::from_utf8(&blob[w[0] as usize..w[1] as usize]).map_err(|_| {
            SnapshotError::Corrupt {
                context: "non-UTF-8 string",
            }
        })?;
        strings.push(s.to_string());
    }
    c.finish_section(end, "STRS section")?;
    let string_at = |sid: u32, context: &'static str| -> Res<&String> {
        check_index(sid, strings.len(), context).map(|sid| &strings[sid as usize])
    };

    // CONC
    let end = c.section(TAG_CONC, "CONC section")?;
    let key_sids = c.u32_vec(n, "concept keys")?;
    let gloss_sids = c.u32_vec(n, "concept glosses")?;
    let freqs = c.u32_vec(n, "concept frequencies")?;
    let pos_codes = c.take(n, "concept pos codes")?.to_vec();
    let lemma_lists = c.list_of_lists(n, "concept lemmas", |sid| {
        string_at(sid, "lemma string id").cloned()
    })?;
    c.finish_section(end, "CONC section")?;
    let mut concepts = Vec::with_capacity(n);
    for i in 0..n {
        let pos = PartOfSpeech::from_code(pos_codes[i] as char).ok_or(SnapshotError::Corrupt {
            context: "part-of-speech code",
        })?;
        concepts.push(Concept {
            key: string_at(key_sids[i], "concept key string id")?.clone(),
            lemmas: lemma_lists[i].clone(),
            gloss: string_at(gloss_sids[i], "concept gloss string id")?.clone(),
            frequency: freqs[i],
            pos,
        });
    }

    // ADJC
    let end = c.section(TAG_ADJC, "ADJC section")?;
    let edge_offsets = c.u32_vec(n + 1, "edge offsets")?;
    if edge_offsets.first() != Some(&0) || edge_offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Corrupt {
            context: "edge offsets",
        });
    }
    let edge_count = edge_offsets[n] as usize;
    let kinds = c.take(edge_count, "edge kinds")?.to_vec();
    let targets = c.u32_vec(edge_count, "edge targets")?;
    c.finish_section(end, "ADJC section")?;
    let mut adjacency = Vec::with_capacity(n);
    for w in edge_offsets.windows(2) {
        let mut out = Vec::with_capacity((w[1] - w[0]) as usize);
        for e in w[0] as usize..w[1] as usize {
            let kind = *RelationKind::ALL
                .get(kinds[e] as usize)
                .ok_or(SnapshotError::Corrupt {
                    context: "relation kind code",
                })?;
            let to = check_index(targets[e], n, "edge target id")?;
            out.push((kind, ConceptId(to)));
        }
        adjacency.push(out);
    }

    // DPTH
    let end = c.section(TAG_DPTH, "DPTH section")?;
    let depths = c.u32_vec(n, "depths")?;
    c.finish_section(end, "DPTH section")?;

    // CUMF
    let end = c.section(TAG_CUMF, "CUMF section")?;
    let cumulative_freq = c.u64_vec(n, "cumulative frequencies")?;
    c.finish_section(end, "CUMF section")?;

    // WIDX
    let end = c.section(TAG_WIDX, "WIDX section")?;
    let word_count = c.u32("word count")? as usize;
    let word_sids = c.u32_vec(word_count, "word strings")?;
    let sense_lists = c.list_of_lists(word_count, "word senses", |id| {
        check_index(id, n, "sense concept id").map(ConceptId)
    })?;
    c.finish_section(end, "WIDX section")?;
    let mut word_index = HashMap::with_capacity(word_count);
    for (sid, senses) in word_sids.into_iter().zip(sense_lists) {
        word_index.insert(string_at(sid, "word string id")?.clone(), senses);
    }

    // VOCB
    let end = c.section(TAG_VOCB, "VOCB section")?;
    let vocab_count = c.u32("vocab count")? as usize;
    let vocab_sids = c.u32_vec(vocab_count, "vocab strings")?;
    c.finish_section(end, "VOCB section")?;
    let mut vocab = Vec::with_capacity(vocab_count);
    for sid in vocab_sids {
        vocab.push(string_at(sid, "vocab string id")?.clone());
    }

    // ARTS
    let end = c.section(TAG_ARTS, "ARTS section")?;
    let token = |t: u32| check_index(t, vocab.len(), "artifact token id");
    let lemma_tokens = c.list_of_lists(n, "artifact lemma tokens", token)?;
    let gloss_tokens = c.list_of_lists(n, "artifact gloss tokens", token)?;
    let extended = c.list_of_lists(n, "artifact extended glosses", token)?;
    let token_sets = c.list_of_lists(n, "artifact token sets", token)?;
    let neighbors = c.list_of_lists(n, "artifact neighbors", |id| {
        check_index(id, n, "artifact neighbor id").map(ConceptId)
    })?;
    c.finish_section(end, "ARTS section")?;

    if c.remaining() != 0 {
        return Err(SnapshotError::Corrupt {
            context: "trailing bytes after final section",
        });
    }

    let key_index = concepts
        .iter()
        .enumerate()
        .map(|(i, c)| (c.key.clone(), ConceptId(i as u32)))
        .collect();
    let artifacts = OnceLock::new();
    let _ = artifacts.set(GlossArtifacts::from_parts(
        vocab,
        lemma_tokens,
        gloss_tokens,
        extended,
        token_sets,
        neighbors,
    ));
    Ok(SemanticNetwork {
        concepts,
        adjacency,
        word_index,
        key_index,
        depths,
        cumulative_freq,
        total_freq,
        max_polysemy,
        artifacts,
    })
}

/// Writes a snapshot of the network to a file.
pub fn write_file(sn: &SemanticNetwork, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    Ok(std::fs::write(path, encode(sn))?)
}

/// Loads a snapshot in one buffered sequential read.
pub fn load_file(path: impl AsRef<Path>) -> Result<SemanticNetwork, SnapshotError> {
    decode(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::mini_wordnet;

    #[test]
    fn roundtrip_preserves_scoring_state() {
        let sn = mini_wordnet();
        let bytes = encode(sn);
        let loaded = decode(&bytes).expect("valid snapshot decodes");
        assert_eq!(sn.len(), loaded.len());
        assert_eq!(sn.total_frequency(), loaded.total_frequency());
        assert_eq!(sn.max_polysemy(), loaded.max_polysemy());
        for id in sn.all_concepts() {
            assert_eq!(sn.concept(id), loaded.concept(id));
            assert_eq!(sn.edges(id), loaded.edges(id));
            assert_eq!(sn.depth(id), loaded.depth(id));
            assert_eq!(sn.cumulative_frequency(id), loaded.cumulative_frequency(id));
        }
        for word in ["star", "cast", "head", "state", "kelly"] {
            assert_eq!(sn.senses(word), loaded.senses(word), "senses of {word}");
        }
        // The loaded artifacts must be the rebuild's, byte for byte —
        // installed eagerly, not rebuilt lazily.
        assert_eq!(sn.gloss_artifacts(), loaded.gloss_artifacts());
    }

    #[test]
    fn sniff_distinguishes_formats() {
        let bytes = encode(mini_wordnet());
        assert!(sniff(&bytes));
        assert!(!sniff(b"# a text network\n"));
        assert!(!sniff(b""));
        assert!(!sniff(b"XSDFSNA")); // one byte short of the magic
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = encode(mini_wordnet());
        bytes[8] = VERSION as u8 + 1;
        match decode(&bytes) {
            Err(SnapshotError::Version { found, expected }) => {
                assert_eq!(found, VERSION + 1);
                assert_eq!(expected, VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn layout_is_ordered_and_complete() {
        let (bytes, layout) = encode_with_layout(mini_wordnet());
        let names: Vec<&str> = layout.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["META", "STRS", "CONC", "ADJC", "DPTH", "CUMF", "WIDX", "VOCB", "ARTS", "END"]
        );
        assert!(layout.windows(2).all(|w| w[0].1 < w[1].1));
        assert_eq!(layout.last().unwrap().1, bytes.len());
    }
}
