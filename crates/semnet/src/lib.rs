//! # xsdf-semnet
//!
//! The semantic-network substrate of the XSDF framework: the machine-
//! readable knowledge base of Definition 2 in *Resolving XML Semantic
//! Ambiguity* (EDBT 2015).
//!
//! A [`SemanticNetwork`] `SN = (C, L, G, E, R, f, g)` consists of concepts
//! (synsets) carrying labels, synonym sets and glosses, connected by typed
//! semantic relations (Is-A, Has-A, Part-Of, …). The *weighted* network
//! `S̄N` additionally carries corpus frequencies per concept (Figure 2 of
//! the paper), which feed information-content similarity measures.
//!
//! The paper uses WordNet 2.1. Princeton's database cannot be redistributed
//! here, so this crate ships **MiniWordNet** ([`builtin::mini_wordnet`]): a
//! hand-built semantic network of ~1k synsets that faithfully covers the
//! vocabulary of the paper's ten evaluation datasets — including the
//! polysemy anchors the paper leans on (*head* with 33 senses = WordNet
//! 2.1's maximum, *state* with 8, *star*, *cast*, *picture*, *play*,
//! *Kelly*, *Stewart*, …) — plus a WordNet-style upper ontology. A
//! line-oriented text `format` module and loader let users substitute a real
//! WordNet export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod builder;
pub mod builtin;
pub mod format;
pub mod graph;
pub mod model;
pub mod network;
pub mod snapshot;
pub mod wndb;

pub use artifacts::GlossArtifacts;
pub use builder::NetworkBuilder;
pub use builtin::mini_wordnet;
pub use model::{Concept, ConceptId, PartOfSpeech, RelationKind};
pub use network::SemanticNetwork;
pub use snapshot::SnapshotError;
