//! Lazily-built per-network precomputation artifacts for the scoring hot
//! path.
//!
//! Knowledge-based disambiguation cost is dominated by per-concept
//! neighborhood and gloss construction: every gloss-overlap call
//! re-tokenizes and re-stems both extended glosses, and every sphere walk
//! re-reads the same adjacency lists. Those computations are pure functions
//! of the (immutable) network, so [`GlossArtifacts`] computes them exactly
//! once per network — an interned token vocabulary (`u32` ids),
//! per-concept pre-tokenized/pre-stemmed gloss and lemma token sequences,
//! the fully assembled extended-gloss sequence, a sorted token *set* for
//! cheap disjointness pre-checks, and sorted neighbor-id sets for
//! shared-neighbor intersection.
//!
//! The table hangs off [`SemanticNetwork::gloss_artifacts`] behind a
//! [`OnceLock`], so serial callers pay the build cost on first use and
//! concurrent batch workers share one build. Interning is order-stable
//! (first occurrence wins), and every sequence preserves the exact token
//! order the string-based pipeline produced, so id-space kernels reproduce
//! string-space scores bit for bit.

use std::collections::HashMap;

use lingproc::{is_stop_word, porter_stem, tokenize_text};

use crate::model::ConceptId;
use crate::network::SemanticNetwork;

/// Precomputed, interned gloss/lemma/neighbor tables for one network.
///
/// All per-concept accessors index by [`ConceptId`]; ids come from the same
/// network the artifacts were built for.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlossArtifacts {
    /// Token id → token string (diagnostics; kernels never need the text).
    vocab: Vec<String>,
    /// Per concept: tokenized, stop-filtered, stemmed tokens of all lemmas,
    /// concatenated in lemma order.
    lemma_tokens: Vec<Vec<u32>>,
    /// Per concept: tokenized, stop-filtered, stemmed tokens of the
    /// concept's own gloss.
    gloss_tokens: Vec<Vec<u32>>,
    /// Per concept: the full extended-gloss sequence — lemma tokens, own
    /// gloss tokens, then each neighbor's gloss tokens in edge order
    /// (multi-edges repeat, mirroring the assembly the string kernel used).
    extended: Vec<Vec<u32>>,
    /// Per concept: sorted, deduplicated token ids of `extended` — the
    /// cheap disjointness pre-check set.
    token_sets: Vec<Vec<u32>>,
    /// Per concept: sorted, deduplicated neighbor concept ids (any relation
    /// kind).
    neighbors: Vec<Vec<ConceptId>>,
}

impl GlossArtifacts {
    /// Builds the full artifact table for a network. Called once per
    /// network via [`SemanticNetwork::gloss_artifacts`].
    pub(crate) fn build(sn: &SemanticNetwork) -> Self {
        let n = sn.len();
        let mut interner: HashMap<String, u32> = HashMap::new();
        let mut vocab: Vec<String> = Vec::new();
        let mut intern_text = |text: &str, out: &mut Vec<u32>| {
            for token in tokenize_text(text) {
                if is_stop_word(&token) {
                    continue;
                }
                let stemmed = porter_stem(&token);
                let next = vocab.len() as u32;
                let id = *interner.entry(stemmed.clone()).or_insert_with(|| {
                    vocab.push(stemmed);
                    next
                });
                out.push(id);
            }
        };

        let mut lemma_tokens = Vec::with_capacity(n);
        let mut gloss_tokens = Vec::with_capacity(n);
        for c in sn.all_concepts() {
            let concept = sn.concept(c);
            let mut lemmas = Vec::new();
            for lemma in &concept.lemmas {
                intern_text(lemma, &mut lemmas);
            }
            let mut gloss = Vec::new();
            intern_text(&concept.gloss, &mut gloss);
            lemma_tokens.push(lemmas);
            gloss_tokens.push(gloss);
        }

        let mut extended = Vec::with_capacity(n);
        let mut token_sets = Vec::with_capacity(n);
        let mut neighbors = Vec::with_capacity(n);
        for c in sn.all_concepts() {
            let i = c.index();
            let mut seq = Vec::with_capacity(lemma_tokens[i].len() + gloss_tokens[i].len());
            seq.extend_from_slice(&lemma_tokens[i]);
            seq.extend_from_slice(&gloss_tokens[i]);
            let mut around: Vec<ConceptId> = sn.edges(c).iter().map(|&(_, next)| next).collect();
            for &neighbor in &around {
                seq.extend_from_slice(&gloss_tokens[neighbor.index()]);
            }
            let mut set = seq.clone();
            set.sort_unstable();
            set.dedup();
            around.sort_unstable();
            around.dedup();
            extended.push(seq);
            token_sets.push(set);
            neighbors.push(around);
        }

        Self {
            vocab,
            lemma_tokens,
            gloss_tokens,
            extended,
            token_sets,
            neighbors,
        }
    }

    /// Reassembles a table from its stored parts (the snapshot loader).
    /// The caller guarantees the parts came from [`GlossArtifacts::build`]
    /// on the same network, so loaded tables are bit-identical to rebuilt
    /// ones by construction.
    pub(crate) fn from_parts(
        vocab: Vec<String>,
        lemma_tokens: Vec<Vec<u32>>,
        gloss_tokens: Vec<Vec<u32>>,
        extended: Vec<Vec<u32>>,
        token_sets: Vec<Vec<u32>>,
        neighbors: Vec<Vec<ConceptId>>,
    ) -> Self {
        Self {
            vocab,
            lemma_tokens,
            gloss_tokens,
            extended,
            token_sets,
            neighbors,
        }
    }

    /// Number of distinct interned tokens.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// The text of an interned token (diagnostics).
    pub fn token(&self, id: u32) -> &str {
        &self.vocab[id as usize]
    }

    /// Stop-filtered, stemmed lemma tokens of a concept, in lemma order.
    pub fn lemma_tokens(&self, c: ConceptId) -> &[u32] {
        &self.lemma_tokens[c.index()]
    }

    /// Stop-filtered, stemmed tokens of a concept's own gloss.
    pub fn gloss_tokens(&self, c: ConceptId) -> &[u32] {
        &self.gloss_tokens[c.index()]
    }

    /// The precomputed extended-gloss token sequence of a concept (no
    /// neighbor exclusions): lemmas, own gloss, neighbor glosses in edge
    /// order.
    pub fn extended_gloss(&self, c: ConceptId) -> &[u32] {
        &self.extended[c.index()]
    }

    /// Assembles the extended-gloss sequence of `c` with the glosses of the
    /// `exclude`d neighbors (a **sorted** id slice) left out, appending into
    /// `out`. With an empty exclusion this reproduces
    /// [`GlossArtifacts::extended_gloss`] exactly.
    pub fn extended_gloss_excluding(
        &self,
        sn: &SemanticNetwork,
        c: ConceptId,
        exclude: &[ConceptId],
        out: &mut Vec<u32>,
    ) {
        out.extend_from_slice(&self.lemma_tokens[c.index()]);
        out.extend_from_slice(&self.gloss_tokens[c.index()]);
        for &(_, neighbor) in sn.edges(c) {
            if exclude.binary_search(&neighbor).is_err() {
                out.extend_from_slice(&self.gloss_tokens[neighbor.index()]);
            }
        }
    }

    /// Sorted, deduplicated token-id set of a concept's extended gloss.
    pub fn token_set(&self, c: ConceptId) -> &[u32] {
        &self.token_sets[c.index()]
    }

    /// `true` when the two concepts' extended glosses share at least one
    /// token (ignoring neighbor exclusions — a conservative superset
    /// check: `false` here guarantees a zero overlap score).
    pub fn token_sets_intersect(&self, a: ConceptId, b: ConceptId) -> bool {
        sorted_intersect(&self.token_sets[a.index()], &self.token_sets[b.index()])
    }

    /// Sorted, deduplicated neighbor ids of a concept (any relation kind).
    pub fn neighbors(&self, c: ConceptId) -> &[ConceptId] {
        &self.neighbors[c.index()]
    }

    /// The neighbors shared by both concepts, excluding the concepts
    /// themselves, as a sorted id list (the gloss measure's exclusion set).
    pub fn shared_neighbors(&self, a: ConceptId, b: ConceptId) -> Vec<ConceptId> {
        let (na, nb) = (&self.neighbors[a.index()], &self.neighbors[b.index()]);
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < na.len() && j < nb.len() {
            match na[i].cmp(&nb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if na[i] != a && na[i] != b {
                        out.push(na[i]);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

/// Whether two sorted slices share any element (merge walk, no allocation).
fn sorted_intersect(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::mini_wordnet;

    fn reference_extended_tokens(
        sn: &SemanticNetwork,
        c: ConceptId,
        exclude: &[ConceptId],
    ) -> Vec<String> {
        // The historical string-based assembly: lemmas + gloss + neighbor
        // glosses in edge order, then stop-filter, then stem.
        let mut tokens = Vec::new();
        let concept = sn.concept(c);
        for lemma in &concept.lemmas {
            tokens.extend(tokenize_text(lemma));
        }
        tokens.extend(tokenize_text(&concept.gloss));
        for &(_, neighbor) in sn.edges(c) {
            if !exclude.contains(&neighbor) {
                tokens.extend(tokenize_text(&sn.concept(neighbor).gloss));
            }
        }
        tokens.retain(|t| !is_stop_word(t));
        tokens.iter_mut().for_each(|t| *t = porter_stem(t));
        tokens
    }

    #[test]
    fn extended_sequences_match_string_assembly() {
        let sn = mini_wordnet();
        let art = sn.gloss_artifacts();
        for c in sn.all_concepts().take(200) {
            let reference = reference_extended_tokens(sn, c, &[]);
            let ids: Vec<&str> = art
                .extended_gloss(c)
                .iter()
                .map(|&id| art.token(id))
                .collect();
            assert_eq!(ids, reference, "concept {c:?}");
        }
    }

    #[test]
    fn exclusion_assembly_matches_string_assembly() {
        let sn = mini_wordnet();
        let art = sn.gloss_artifacts();
        let star = sn.by_key("star.performer").unwrap();
        let mut exclude = art.neighbors(star).to_vec();
        exclude.truncate(2);
        let mut out = Vec::new();
        art.extended_gloss_excluding(sn, star, &exclude, &mut out);
        let reference = reference_extended_tokens(sn, star, &exclude);
        let ids: Vec<&str> = out.iter().map(|&id| art.token(id)).collect();
        assert_eq!(ids, reference);
    }

    #[test]
    fn token_sets_cover_sequences() {
        let sn = mini_wordnet();
        let art = sn.gloss_artifacts();
        for c in sn.all_concepts().take(100) {
            let set = art.token_set(c);
            assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            for id in art.extended_gloss(c) {
                assert!(set.binary_search(id).is_ok());
            }
        }
    }

    #[test]
    fn shared_neighbors_match_edge_scan() {
        let sn = mini_wordnet();
        let art = sn.gloss_artifacts();
        let a = sn.by_key("star.performer").unwrap();
        let b = sn.by_key("cast.actors").unwrap();
        let via_edges: std::collections::BTreeSet<ConceptId> = {
            let na: std::collections::HashSet<ConceptId> =
                sn.edges(a).iter().map(|&(_, c)| c).collect();
            sn.edges(b)
                .iter()
                .map(|&(_, c)| c)
                .filter(|c| na.contains(c) && *c != a && *c != b)
                .collect()
        };
        let shared = art.shared_neighbors(a, b);
        assert!(shared.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            shared
                .iter()
                .copied()
                .collect::<std::collections::BTreeSet<_>>(),
            via_edges
        );
    }

    #[test]
    fn interning_is_injective() {
        let sn = mini_wordnet();
        let art = sn.gloss_artifacts();
        let mut seen = std::collections::HashSet::new();
        for id in 0..art.vocab_len() as u32 {
            assert!(seen.insert(art.token(id).to_string()), "duplicate token");
        }
        assert!(art.vocab_len() > 0);
    }

    #[test]
    fn artifacts_are_built_once_and_shared() {
        let sn = mini_wordnet();
        let first = sn.gloss_artifacts() as *const GlossArtifacts;
        let second = sn.gloss_artifacts() as *const GlossArtifacts;
        assert_eq!(first, second);
    }
}
