//! The upper ontology: the WordNet-style scaffold every domain concept
//! hangs from. Keys follow a `word.discriminator` convention; frequencies
//! approximate Brown-corpus counts (common everyday concepts high, abstract
//! scaffold concepts moderate).

use crate::builder::NetworkBuilder;
use crate::model::PartOfSpeech;

pub(super) fn register(b: &mut NetworkBuilder) {
    // ---- The root -------------------------------------------------------
    b.concept(
        "entity.n",
        &["entity"],
        "that which is perceived or known or inferred to have its own distinct existence",
        120,
        PartOfSpeech::Noun,
    );

    // ---- Physical side --------------------------------------------------
    b.noun(
        "physical_entity.n",
        &["physical entity"],
        "an entity that has physical existence",
        80,
        "entity.n",
    );
    b.noun(
        "object.n",
        &["object", "physical object"],
        "a tangible and visible entity that can cast a shadow",
        160,
        "physical_entity.n",
    );
    b.noun(
        "whole.n",
        &["whole", "unit"],
        "an assemblage of parts that is regarded as a single entity",
        90,
        "object.n",
    );
    b.noun(
        "natural_object.n",
        &["natural object"],
        "an object occurring naturally, not made by man",
        30,
        "whole.n",
    );
    b.noun(
        "celestial_body.n",
        &["celestial body", "heavenly body"],
        "a natural object visible in the sky outside the earth's atmosphere",
        18,
        "natural_object.n",
    );
    b.noun(
        "body_part.n",
        &["body part"],
        "any part of an organism such as an organ or extremity",
        60,
        "natural_object.n",
    );
    b.noun(
        "organ.body",
        &["organ"],
        "a fully differentiated structural and functional part of an organism's body",
        40,
        "body_part.n",
    );

    // Living things.
    b.noun(
        "living_thing.n",
        &["living thing", "animate thing"],
        "a living or once-living organism",
        70,
        "whole.n",
    );
    b.noun(
        "organism.n",
        &["organism", "being"],
        "a living thing that has the ability to act or function independently",
        110,
        "living_thing.n",
    );
    b.noun(
        "person.n",
        &["person", "individual", "human", "somebody"],
        "a human being regarded as an individual",
        520,
        "organism.n",
    );
    b.noun(
        "animal.n",
        &["animal", "creature", "beast"],
        "a living organism that feeds on organic matter and can move about",
        140,
        "organism.n",
    );
    b.noun(
        "plant.organism",
        &["plant", "flora"],
        "a living organism lacking the power of locomotion, such as a tree or flower",
        90,
        "organism.n",
    );
    b.noun(
        "microorganism.n",
        &["microorganism"],
        "any organism of microscopic size",
        8,
        "organism.n",
    );

    // Artifacts.
    b.noun(
        "artifact.n",
        &["artifact", "artefact"],
        "a man-made object taken as a whole",
        130,
        "whole.n",
    );
    b.noun(
        "instrumentality.n",
        &["instrumentality", "instrumentation"],
        "an artifact that is instrumental in accomplishing some end",
        70,
        "artifact.n",
    );
    b.noun(
        "device.n",
        &["device"],
        "an instrumentality invented for a particular purpose",
        85,
        "instrumentality.n",
    );
    b.noun(
        "container.n",
        &["container"],
        "an instrumentality that contains or can contain something",
        45,
        "instrumentality.n",
    );
    b.noun(
        "vehicle.n",
        &["vehicle"],
        "a conveyance that transports people or objects",
        55,
        "instrumentality.n",
    );
    b.noun(
        "equipment.n",
        &["equipment"],
        "an instrumentality needed for an undertaking or to perform a service",
        40,
        "instrumentality.n",
    );
    b.noun(
        "implement.n",
        &["implement", "tool"],
        "instrumentation used as a tool in doing work",
        42,
        "instrumentality.n",
    );
    b.noun(
        "furniture.n",
        &["furniture", "furnishing"],
        "furnishings that make a room ready for occupancy",
        35,
        "instrumentality.n",
    );
    b.noun(
        "structure.construction",
        &["structure", "construction"],
        "a thing constructed; a complex artifact built from parts",
        65,
        "artifact.n",
    );
    b.noun(
        "building.n",
        &["building", "edifice"],
        "a structure that has a roof and walls and stands permanently in one place",
        95,
        "structure.construction",
    );
    b.noun(
        "creation.artifact",
        &["creation"],
        "an artifact that has been brought into existence by someone",
        25,
        "artifact.n",
    );
    b.noun(
        "product.creation",
        &["product", "production"],
        "an artifact that has been created by someone or some process",
        75,
        "creation.artifact",
    );
    b.noun(
        "work_of_art.n",
        &["work of art"],
        "art created by an artist, such as a painting or sculpture",
        18,
        "creation.artifact",
    );
    b.noun(
        "covering.artifact",
        &["covering"],
        "an artifact that covers something else",
        22,
        "artifact.n",
    );
    b.noun(
        "clothing.n",
        &["clothing", "apparel", "garment"],
        "a covering designed to be worn on a person's body",
        60,
        "covering.artifact",
    );
    b.noun(
        "commodity.n",
        &["commodity", "goods"],
        "articles of commerce; things produced for sale",
        30,
        "artifact.n",
    );
    b.noun(
        "weapon.n",
        &["weapon", "arm"],
        "any instrument used in fighting or hunting to inflict harm",
        38,
        "instrumentality.n",
    );

    // Locations.
    b.noun(
        "location.n",
        &["location"],
        "a point or extent in space where something is situated",
        150,
        "physical_entity.n",
    );
    b.noun(
        "region.n",
        &["region"],
        "a large indefinite location on the surface of the Earth",
        85,
        "location.n",
    );
    b.noun(
        "area.n",
        &["area"],
        "a particular geographical region of indefinite boundary",
        95,
        "region.n",
    );
    b.noun(
        "district.n",
        &["district", "territory"],
        "a region marked off for administrative or other purposes",
        48,
        "region.n",
    );
    b.noun(
        "point.location",
        &["point", "spot"],
        "the precise location of something in space",
        55,
        "location.n",
    );

    // Substances.
    b.noun(
        "substance.n",
        &["substance", "matter"],
        "the real physical matter of which a thing consists",
        70,
        "physical_entity.n",
    );
    b.noun(
        "material.n",
        &["material", "stuff"],
        "the tangible substance that goes into the makeup of a thing",
        60,
        "substance.n",
    );
    b.noun(
        "food.substance",
        &["food", "nutrient"],
        "any substance that can be metabolized by an organism to give energy and build tissue",
        160,
        "substance.n",
    );
    b.noun(
        "fluid.n",
        &["fluid", "liquid"],
        "a substance that flows and has no fixed shape",
        35,
        "substance.n",
    );
    b.noun(
        "chemical.n",
        &["chemical", "chemical substance"],
        "material produced by or used in a reaction involving changes in atoms or molecules",
        20,
        "material.n",
    );

    // ---- Abstract side --------------------------------------------------
    b.noun(
        "abstraction.n",
        &["abstraction", "abstract entity"],
        "a general concept formed by extracting common features from specific examples",
        60,
        "entity.n",
    );

    // Attributes.
    b.noun(
        "attribute.n",
        &["attribute", "property"],
        "an abstraction belonging to or characteristic of an entity",
        70,
        "abstraction.n",
    );
    b.noun(
        "quality.n",
        &["quality", "character"],
        "an essential and distinguishing attribute of something or someone",
        65,
        "attribute.n",
    );
    b.noun(
        "trait.n",
        &["trait"],
        "a distinguishing quality of your personal nature",
        28,
        "attribute.n",
    );
    b.noun(
        "shape.n",
        &["shape", "form"],
        "the spatial arrangement of something as distinct from its substance",
        75,
        "attribute.n",
    );
    b.noun(
        "color.n",
        &["color", "colour", "coloring"],
        "a visual attribute of things that results from the light they emit, transmit or reflect",
        90,
        "attribute.n",
    );

    // Measures.
    b.noun(
        "measure.n",
        &["measure", "quantity", "amount"],
        "how much there is or how many there are of something that you can quantify",
        80,
        "abstraction.n",
    );
    b.noun(
        "unit_of_measurement.n",
        &["unit of measurement", "unit"],
        "any division of quantity accepted as a standard of measurement or exchange",
        40,
        "measure.n",
    );
    b.noun(
        "monetary_value.n",
        &["monetary value", "cost"],
        "the amount of money needed to purchase something, expressed in a currency",
        55,
        "measure.n",
    );
    b.noun(
        "time_period.n",
        &["time period", "period", "period of time"],
        "an amount of time during which something happens",
        100,
        "measure.n",
    );
    b.noun(
        "time_unit.n",
        &["time unit", "unit of time"],
        "a unit for measuring time periods",
        45,
        "time_period.n",
    );
    b.noun(
        "fundamental_quantity.n",
        &["fundamental quantity"],
        "one of the four quantities that are the basis of systems of measurement",
        12,
        "measure.n",
    );
    b.noun(
        "definite_quantity.n",
        &["definite quantity"],
        "a specific measure of amount",
        25,
        "measure.n",
    );
    b.noun(
        "number.n",
        &["number", "figure"],
        "a definite quantity counted or measured",
        120,
        "definite_quantity.n",
    );

    // Relations.
    b.noun(
        "relation.n",
        &["relation"],
        "an abstraction belonging to or characteristic of two entities or parts together",
        40,
        "abstraction.n",
    );
    b.noun(
        "social_relation.n",
        &["social relation"],
        "a relation between living organisms, especially between people",
        30,
        "relation.n",
    );
    b.noun(
        "part.relation",
        &["part", "portion", "component"],
        "something determined in relation to something that includes it",
        85,
        "relation.n",
    );
    b.noun(
        "possession.n",
        &["possession", "ownership"],
        "anything owned or possessed; the relation of an owner to the thing owned",
        45,
        "relation.n",
    );
    b.noun(
        "asset.n",
        &["asset"],
        "a useful or valuable possession or quality",
        22,
        "possession.n",
    );

    // Communication.
    b.noun(
        "communication.n",
        &["communication"],
        "something that is communicated by or to or between people or groups",
        75,
        "social_relation.n",
    );
    b.noun(
        "message.n",
        &["message", "content", "subject matter"],
        "what a communication that is about something is chiefly about",
        60,
        "communication.n",
    );
    b.noun(
        "statement.n",
        &["statement"],
        "a message that is stated or declared in spoken or written words",
        55,
        "message.n",
    );
    b.noun(
        "request.n",
        &["request", "petition"],
        "a formal message asking for something",
        25,
        "message.n",
    );
    b.noun(
        "written_communication.n",
        &["written communication", "written language"],
        "communication by means of written symbols",
        35,
        "communication.n",
    );
    b.noun(
        "writing.written",
        &["writing", "written material", "piece of writing"],
        "the work of a writer; anything expressed in letters of the alphabet",
        50,
        "written_communication.n",
    );
    b.noun(
        "document.n",
        &["document", "written document", "papers"],
        "writing that provides information, especially of an official nature",
        70,
        "writing.written",
    );
    b.noun(
        "text.n",
        &["text", "textual matter"],
        "the words of something written",
        45,
        "writing.written",
    );
    b.noun(
        "signal.n",
        &["signal", "sign"],
        "any nonverbal action or gesture that encodes a message",
        40,
        "communication.n",
    );
    b.noun(
        "indication.n",
        &["indication"],
        "something that serves to indicate or suggest",
        20,
        "communication.n",
    );
    b.noun(
        "language_unit.n",
        &["language unit", "linguistic unit"],
        "one of the natural units into which language can be analyzed",
        30,
        "part.relation",
    );
    b.noun(
        "word.n",
        &["word"],
        "a unit of language that native speakers can identify",
        130,
        "language_unit.n",
    );
    b.noun(
        "auditory_communication.n",
        &["auditory communication"],
        "communication that relies on hearing",
        20,
        "communication.n",
    );
    b.noun(
        "speech.communication",
        &["speech", "spoken communication", "spoken language"],
        "communication by word of mouth",
        65,
        "auditory_communication.n",
    );
    b.noun(
        "music.n",
        &["music"],
        "an artistic form of auditory communication incorporating instrumental or vocal tones",
        85,
        "auditory_communication.n",
    );
    b.noun(
        "publication.n",
        &["publication"],
        "a copy of a printed work offered for distribution to the public",
        40,
        "work.product",
    );
    b.noun(
        "print_media.n",
        &["print media"],
        "a medium that disseminates printed matter",
        15,
        "instrumentality.n",
    );

    // Groups.
    b.noun(
        "group.n",
        &["group", "grouping"],
        "any number of entities, members, considered as a unit",
        110,
        "abstraction.n",
    );
    b.noun(
        "social_group.n",
        &["social group"],
        "people sharing some social relation",
        60,
        "group.n",
    );
    b.noun(
        "organization.n",
        &["organization", "organisation"],
        "a group of people who work together in an organized and purposeful way",
        95,
        "social_group.n",
    );
    b.noun(
        "institution.n",
        &["institution", "establishment"],
        "an organization founded and united for a specific purpose",
        50,
        "organization.n",
    );
    b.noun(
        "unit.organization",
        &["unit", "social unit"],
        "an organization regarded as part of a larger social group",
        35,
        "organization.n",
    );
    b.noun(
        "gathering.n",
        &["gathering", "assemblage"],
        "a group of persons gathered together for a common purpose",
        30,
        "social_group.n",
    );
    b.noun(
        "collection.n",
        &["collection", "aggregation"],
        "several things grouped together or considered as a whole",
        55,
        "group.n",
    );
    b.noun(
        "kin.n",
        &["kin", "kin group", "kindred"],
        "a group of people related by blood or marriage",
        25,
        "social_group.n",
    );

    // Psychological features, events, acts.
    b.noun(
        "psychological_feature.n",
        &["psychological feature"],
        "a feature of the mental life of a living organism",
        35,
        "abstraction.n",
    );
    b.noun(
        "cognition.n",
        &["cognition", "knowledge"],
        "the psychological result of perception and learning and reasoning",
        70,
        "psychological_feature.n",
    );
    b.noun(
        "content.cognition",
        &["content", "mental object", "idea"],
        "the sum or range of what has been perceived, discovered, or learned",
        55,
        "cognition.n",
    );
    b.noun(
        "information.n",
        &["information", "info", "data"],
        "knowledge acquired through study or experience or instruction",
        95,
        "cognition.n",
    );
    b.noun(
        "ability.n",
        &["ability", "power"],
        "the quality of being able to perform; possession of the qualities required",
        45,
        "cognition.n",
    );
    b.noun(
        "event.n",
        &["event"],
        "something that happens at a given place and time",
        90,
        "psychological_feature.n",
    );
    b.noun(
        "act.deed",
        &["act", "deed", "human action"],
        "something that people do or cause to happen",
        140,
        "event.n",
    );
    b.noun(
        "action.n",
        &["action"],
        "an act by a person, done by design or purpose",
        100,
        "act.deed",
    );
    b.noun(
        "activity.n",
        &["activity"],
        "any specific behavior or pursuit in which a person engages",
        85,
        "act.deed",
    );
    b.noun(
        "work.activity",
        &["work"],
        "activity directed toward making or doing something",
        150,
        "activity.n",
    );
    b.noun(
        "occupation.n",
        &["occupation", "business", "job", "line of work"],
        "the principal activity in your life that you do to earn money",
        90,
        "activity.n",
    );
    b.noun(
        "profession.n",
        &["profession"],
        "an occupation requiring special education",
        30,
        "occupation.n",
    );
    b.noun(
        "game.activity",
        &["game"],
        "a contest with rules to determine a winner",
        80,
        "activity.n",
    );
    b.noun(
        "sport.n",
        &["sport", "athletics"],
        "an active diversion requiring physical exertion and competition",
        55,
        "game.activity",
    );
    b.noun(
        "happening.n",
        &["happening", "occurrence", "natural event"],
        "an event that happens without being caused by people",
        35,
        "event.n",
    );
    b.noun(
        "motivation.n",
        &["motivation", "motive"],
        "the psychological feature that arouses an organism to action",
        18,
        "psychological_feature.n",
    );
    b.noun(
        "feeling.n",
        &["feeling"],
        "the experiencing of affective and emotional states",
        60,
        "psychological_feature.n",
    );
    b.noun(
        "emotion.n",
        &["emotion"],
        "any strong feeling such as love, joy, or anger",
        45,
        "feeling.n",
    );

    // States and conditions.
    b.noun(
        "state.condition",
        &["state", "condition", "status"],
        "the way something is with respect to its main attributes; a mode of being",
        95,
        "attribute.n",
    );
    b.noun(
        "situation.n",
        &["situation", "state of affairs"],
        "the general state of things; the combination of circumstances at a given time",
        50,
        "state.condition",
    );
    b.noun(
        "process.n",
        &["process", "procedure"],
        "a sustained phenomenon marked by gradual changes through a series of states",
        65,
        "physical_entity.n",
    );

    // Work as a product (creation) distinct from work as activity.
    b.noun(
        "work.product",
        &["work", "piece of work"],
        "a product produced or accomplished through the effort of a creator",
        60,
        "product.creation",
    );

    // People roles used broadly across domains.
    b.noun(
        "worker.n",
        &["worker"],
        "a person who works at a specific occupation or job",
        75,
        "person.n",
    );
    b.noun(
        "professional.n",
        &["professional"],
        "a person engaged in one of the learned professions",
        35,
        "person.n",
    );
    b.noun(
        "leader.n",
        &["leader"],
        "a person who rules, guides, or directs others",
        70,
        "person.n",
    );
    b.noun(
        "expert.n",
        &["expert", "specialist"],
        "a person with special knowledge who performs skillfully",
        30,
        "person.n",
    );
    b.noun(
        "performer.n",
        &["performer", "performing artist"],
        "an entertainer who performs a dramatic, musical, or athletic work for an audience",
        40,
        "person.n",
    );
    b.noun(
        "entertainer.n",
        &["entertainer"],
        "a person who tries to please or amuse an audience",
        25,
        "person.n",
    );
    b.relate(
        "performer.n",
        crate::model::RelationKind::Hypernym,
        "entertainer.n",
    );
    b.noun(
        "creator.n",
        &["creator", "maker"],
        "a person who grows or makes or invents things",
        35,
        "person.n",
    );
    b.noun(
        "artist.n",
        &["artist", "creative person"],
        "a creator whose work shows sensitivity and imagination in art",
        45,
        "creator.n",
    );
    b.noun(
        "communicator.n",
        &["communicator"],
        "a person who communicates with others",
        20,
        "person.n",
    );
    b.noun(
        "writer.n",
        &["writer", "author"],
        "a communicator who writes books, stories, or articles as an occupation",
        55,
        "communicator.n",
    );
    b.noun(
        "traveler.n",
        &["traveler", "traveller"],
        "a person who changes location on a journey",
        25,
        "person.n",
    );
    b.noun(
        "adult.n",
        &["adult", "grownup"],
        "a fully developed person from maturity onward",
        50,
        "person.n",
    );
    b.noun(
        "male.person",
        &["male", "male person"],
        "a person who belongs to the sex that cannot have babies",
        60,
        "person.n",
    );
    b.noun(
        "female.person",
        &["female", "female person"],
        "a person who belongs to the sex that can have babies",
        60,
        "person.n",
    );
    b.noun(
        "man.male",
        &["man", "adult male"],
        "an adult male person",
        320,
        "male.person",
    );
    b.relate("man.male", crate::model::RelationKind::Hypernym, "adult.n");
    b.noun(
        "woman.female",
        &["woman", "adult female"],
        "an adult female person",
        280,
        "female.person",
    );
    b.relate(
        "woman.female",
        crate::model::RelationKind::Hypernym,
        "adult.n",
    );
    b.noun(
        "child.n",
        &["child", "kid", "youngster"],
        "a young person of either sex, not yet an adult",
        160,
        "person.n",
    );

    // Names — heavily used by personnel/club/bib datasets.
    b.noun(
        "name.label",
        &["name"],
        "a language unit by which a person or thing is known and called",
        180,
        "language_unit.n",
    );
    b.noun("time.n", &["time"], "the continuum of experience in which events pass from the future through the present to the past", 170, "abstraction.n");
    b.noun(
        "date.day",
        &["date", "day of the month"],
        "the specified day of the month on which an event occurs",
        60,
        "time.n",
    );
}
