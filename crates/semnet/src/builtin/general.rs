//! General English vocabulary: common polysemous words beyond the ten
//! datasets' tag vocabularies (animals, body parts, weather, everyday
//! objects) plus the named Shakespeare plays and characters the Group 1
//! corpus may mention. None of these words carries corpus gold, so they
//! enrich realism (sense inventories, gloss texture, taxonomy coverage)
//! without shifting the calibrated experiments.

use crate::builder::NetworkBuilder;
use crate::model::RelationKind;

pub(super) fn register(b: &mut NetworkBuilder) {
    // ---- Animals ------------------------------------------------------------
    b.noun(
        "dog.animal",
        &["dog", "domestic dog", "canine"],
        "a domesticated animal kept by people as a companion or to work",
        45,
        "animal.n",
    );
    b.noun(
        "dog.fellow",
        &["dog"],
        "an informal word for a fellow, as in a lucky dog",
        3,
        "person.n",
    );
    b.verb(
        "dog.v",
        &["dog", "hound"],
        "pursue or follow someone persistently",
        3,
        "act.deed",
    );
    b.noun(
        "cat.animal",
        &["cat", "domestic cat", "feline"],
        "a small domesticated animal with soft fur kept as a pet",
        30,
        "animal.n",
    );
    b.noun(
        "cat.whip",
        &["cat", "cat-o-nine-tails"],
        "a whip with nine knotted cords formerly used for flogging",
        1,
        "implement.n",
    );
    b.noun(
        "horse.animal",
        &["horse", "equus"],
        "a large hoofed animal domesticated for riding and pulling loads",
        35,
        "animal.n",
    );
    b.noun(
        "horse.gym",
        &["horse", "vaulting horse"],
        "the padded gymnastic apparatus that athletes vault over",
        2,
        "equipment.n",
    );
    b.noun(
        "horse.chess",
        &["horse", "knight piece"],
        "an informal name for the knight piece in chess",
        1,
        "game_piece.n",
    );
    b.noun(
        "lion.animal",
        &["lion"],
        "a large tawny wild animal of the cat family that hunts in prides",
        12,
        "animal.n",
    );
    b.noun(
        "lion.celebrity",
        &["lion", "social lion"],
        "a celebrity who is lionized and much sought after socially",
        1,
        "person.n",
    );
    b.noun(
        "bear.animal",
        &["bear"],
        "a massive wild animal with shaggy fur and short tail",
        15,
        "animal.n",
    );
    b.noun(
        "bear.investor",
        &["bear"],
        "an investor who expects prices in the market to fall",
        2,
        "person.n",
    );
    b.verb(
        "bear.v",
        &["bear", "carry"],
        "support a weight or carry something; endure",
        20,
        "act.deed",
    );
    b.noun(
        "bird.animal",
        &["bird"],
        "a warm-blooded egg-laying animal with feathers and wings",
        28,
        "animal.n",
    );
    b.noun(
        "bird.person",
        &["bird", "chick"],
        "an informal word for a young woman",
        2,
        "person.n",
    );
    b.noun(
        "fish.animal",
        &["fish"],
        "a cold-blooded animal that lives and breathes in water",
        25,
        "animal.n",
    );
    b.noun(
        "fish.food",
        &["fish"],
        "the flesh of fish served as a dish of food",
        10,
        "food.substance",
    );
    b.verb(
        "fish.v",
        &["fish", "angle"],
        "catch or try to catch fish with a line or net",
        8,
        "act.deed",
    );
    b.noun(
        "mouse.animal",
        &["mouse"],
        "a small gray animal with a long tail that lives in houses and fields",
        10,
        "animal.n",
    );
    b.noun(
        "mouse.computer",
        &["mouse", "computer mouse"],
        "a hand-held device that controls a pointer on a computer screen",
        5,
        "device.n",
    );
    b.noun(
        "wolf.animal",
        &["wolf"],
        "a wild animal resembling a large dog that hunts in packs",
        10,
        "animal.n",
    );
    b.noun(
        "wolf.person",
        &["wolf", "philanderer"],
        "a man who pursues women aggressively",
        1,
        "person.n",
    );
    b.noun(
        "serpent.n",
        &["serpent", "snake"],
        "a limbless scaled animal with a long body, often a symbol of treachery",
        8,
        "animal.n",
    );
    b.noun(
        "raven.n",
        &["raven"],
        "a large black bird of ill omen with a croaking cry",
        4,
        "animal.n",
    );
    b.noun(
        "owl.n",
        &["owl"],
        "a nocturnal bird of prey with a large head and hooting cry",
        4,
        "animal.n",
    );

    // ---- Body parts -----------------------------------------------------------
    b.noun(
        "hand.body",
        &["hand", "manus"],
        "the extremity of the arm used for grasping",
        60,
        "body_part.n",
    );
    b.noun(
        "hand.worker",
        &["hand", "hired hand"],
        "a hired worker, as a farm hand",
        5,
        "worker.n",
    );
    b.noun(
        "hand.cards",
        &["hand", "deal"],
        "the cards held by one player in a card game",
        4,
        "collection.n",
    );
    b.noun(
        "hand.clock",
        &["hand"],
        "the rotating pointer on the face of a clock",
        3,
        "part.relation",
    );
    b.noun(
        "hand.help",
        &["hand", "helping hand"],
        "physical assistance, as to give someone a hand",
        4,
        "action.n",
    );
    b.noun(
        "eye.body",
        &["eye", "oculus"],
        "the organ of sight in the head",
        50,
        "organ.body",
    );
    b.noun(
        "eye.needle",
        &["eye"],
        "the small hole in a needle that the thread passes through",
        2,
        "part.relation",
    );
    b.noun(
        "eye.storm",
        &["eye", "center of the storm"],
        "the calm area at the center of a storm",
        2,
        "point.location",
    );
    b.noun(
        "face.body",
        &["face", "visage", "countenance"],
        "the front of the human head from forehead to chin",
        55,
        "body_part.n",
    );
    b.noun(
        "face.surface",
        &["face"],
        "the side or surface of an object that is presented to view, as the face of a cliff",
        8,
        "part.relation",
    );
    b.noun(
        "face.dignity",
        &["face"],
        "the status and respect a person maintains; to lose face",
        4,
        "state.condition",
    );
    b.verb(
        "face.v",
        &["face", "confront"],
        "turn toward or deal with something directly",
        15,
        "act.deed",
    );
    b.noun(
        "arm.body",
        &["arm"],
        "the limb of the human body from shoulder to hand",
        40,
        "body_part.n",
    );
    b.noun(
        "arm.chair",
        &["arm", "armrest"],
        "the side support of a chair on which a sitter rests an arm",
        2,
        "part.relation",
    );
    b.noun(
        "foot.body",
        &["foot", "pes"],
        "the lower extremity of the leg on which a person stands",
        40,
        "body_part.n",
    );
    b.noun(
        "foot.measure",
        &["foot", "ft"],
        "a unit of length equal to twelve inches",
        12,
        "unit_of_measurement.n",
    );
    b.noun(
        "foot.verse",
        &["foot", "metrical foot"],
        "a group of syllables forming a metrical unit of verse",
        2,
        "part.relation",
    );
    b.noun(
        "tongue.body",
        &["tongue", "lingua"],
        "the movable organ in the mouth used for tasting and speech",
        12,
        "organ.body",
    );
    b.noun(
        "tongue.language",
        &["tongue", "natural language"],
        "a human language, as one's mother tongue",
        5,
        "communication.n",
    );

    // ---- Weather and nature -----------------------------------------------------
    b.noun(
        "rain.weather",
        &["rain", "rainfall"],
        "water falling in drops from clouds in the sky",
        20,
        "happening.n",
    );
    b.verb(
        "rain.v",
        &["rain", "rain down"],
        "fall from clouds as drops of water",
        8,
        "act.deed",
    );
    b.noun(
        "snow.weather",
        &["snow", "snowfall"],
        "frozen white flakes of water falling from winter clouds",
        12,
        "happening.n",
    );
    b.noun(
        "wind.weather",
        &["wind", "air current"],
        "air moving across the surface of the earth, as in a storm",
        22,
        "happening.n",
    );
    b.verb(
        "wind.v",
        &["wind", "twist", "coil"],
        "wrap or coil something around a center",
        6,
        "act.deed",
    );
    b.noun(
        "cloud.weather",
        &["cloud"],
        "a visible mass of water droplets suspended in the sky",
        15,
        "natural_object.n",
    );
    b.noun(
        "cloud.swarm",
        &["cloud"],
        "a moving mass of things in the air, as a cloud of insects",
        2,
        "group.n",
    );
    b.noun(
        "moon.n",
        &["moon"],
        "the natural satellite that shines in the night sky",
        18,
        "celestial_body.n",
    );
    b.noun(
        "earth.planet",
        &["earth", "the earth", "globe"],
        "the planet on which we live",
        25,
        "celestial_body.n",
    );
    b.noun(
        "earth.soil",
        &["earth", "ground"],
        "the loose soft material on the ground in which plants grow",
        10,
        "material.n",
    );
    b.noun(
        "fire.combustion",
        &["fire", "flame burning"],
        "the burning process producing light and heat",
        30,
        "process.n",
    );
    b.noun(
        "fire.event",
        &["fire", "conflagration"],
        "a destructive event of burning, as a house fire",
        8,
        "happening.n",
    );
    b.noun(
        "fire.gunfire",
        &["fire", "firing"],
        "the discharge of weapons in battle",
        5,
        "action.n",
    );
    b.noun(
        "air.gas",
        &["air", "atmosphere"],
        "the mixture of gases surrounding the earth that organisms breathe",
        30,
        "substance.n",
    );
    b.noun(
        "air.manner",
        &["air", "aura", "atmosphere of feeling"],
        "a distinctive but intangible quality about a person or place",
        5,
        "attribute.n",
    );
    b.noun(
        "air.tune",
        &["air", "melody", "tune"],
        "a succession of notes forming a distinctive musical phrase",
        3,
        "music.n",
    );
    b.noun(
        "sea_storm.wave",
        &["wave", "moving ridge"],
        "a ridge of water moving across the surface of the sea",
        12,
        "happening.n",
    );
    b.noun(
        "wave.gesture",
        &["wave", "waving"],
        "the gesture of moving the hand to and fro in greeting",
        4,
        "action.n",
    );
    b.noun(
        "wave.physics",
        &["wave", "undulation"],
        "a periodic disturbance that transfers energy through a medium",
        6,
        "process.n",
    );

    // ---- Everyday objects ----------------------------------------------------------
    b.noun(
        "table.furniture",
        &["table"],
        "a piece of furniture with a flat top supported by legs",
        35,
        "furniture.n",
    );
    b.noun(
        "table.data",
        &["table", "tabular array"],
        "a set of data arranged in rows and columns in a document",
        10,
        "document.n",
    );
    b.verb(
        "table.v",
        &["table", "postpone"],
        "hold a proposal back for later consideration",
        2,
        "act.deed",
    );
    b.noun(
        "chair.furniture",
        &["chair"],
        "a seat for one person, with a back and four legs",
        25,
        "furniture.n",
    );
    b.noun(
        "chair.person",
        &["chair", "chairperson"],
        "the officer who presides over a meeting",
        6,
        "leader.n",
    );
    b.noun(
        "door.n",
        &["door"],
        "a swinging barrier by which an entry to a building or room is closed",
        30,
        "structure.construction",
    );
    b.noun(
        "key.lock",
        &["key"],
        "a shaped metal device that opens a lock",
        18,
        "device.n",
    );
    b.noun(
        "key.answer",
        &["key"],
        "the list of answers or the crucial means to a solution, as the key to the problem",
        6,
        "cognition.n",
    );
    b.noun(
        "key.music",
        &["key", "tonality"],
        "the system of notes around a tonic on which a piece of music is based",
        4,
        "music.n",
    );
    b.noun(
        "key.keyboard",
        &["key"],
        "a button on a keyboard or piano pressed by a finger",
        5,
        "part.relation",
    );
    b.noun(
        "glass.material",
        &["glass"],
        "the hard brittle transparent material made from sand, used in windows",
        18,
        "material.n",
    );
    b.noun(
        "glass.container",
        &["glass", "drinking glass"],
        "a container made of glass for drinking a beverage",
        10,
        "container.n",
    );
    b.noun(
        "glass.mirror",
        &["glass", "looking glass"],
        "an old word for a mirror",
        2,
        "device.n",
    );
    b.noun(
        "iron.metal",
        &["iron", "fe"],
        "a heavy silvery metal used to make steel for swords and tools",
        12,
        "material.n",
    );
    b.noun(
        "iron.appliance",
        &["iron", "smoothing iron"],
        "the heated appliance pressed over clothing to smooth it",
        4,
        "device.n",
    );
    b.noun(
        "iron.golf",
        &["iron"],
        "a golf club with a metal head",
        2,
        "implement.n",
    );
    b.noun(
        "ship.n",
        &["ship", "vessel"],
        "a large vehicle that carries people and goods over the sea",
        25,
        "vehicle.n",
    );
    b.noun(
        "boat.n",
        &["boat"],
        "a small vehicle for traveling on water",
        15,
        "vehicle.n",
    );
    b.noun(
        "crown_jewel.gem",
        &["jewel", "gem", "precious stone"],
        "a precious stone cut and polished for a crown or ring",
        8,
        "natural_object.n",
    );
    b.noun(
        "ring.jewelry",
        &["ring"],
        "a circular band of precious metal worn on the finger",
        12,
        "clothing.n",
    );
    b.noun(
        "ring.sound",
        &["ring", "ringing"],
        "the clear resonant sound of a bell or a telephone",
        6,
        "happening.n",
    );
    b.noun(
        "ring.boxing",
        &["ring", "boxing ring"],
        "the square platform on which boxers fight",
        3,
        "structure.construction",
    );
    b.noun(
        "ring.gang",
        &["ring", "gang"],
        "an association of criminals operating together",
        2,
        "organization.n",
    );
    b.noun(
        "bell.n",
        &["bell"],
        "a hollow metal device that makes a ringing sound when struck",
        10,
        "device.n",
    );
    b.noun(
        "candle.n",
        &["candle", "taper"],
        "a stick of wax with a wick burned to give light at night",
        6,
        "device.n",
    );
    b.noun(
        "mirror.n",
        &["mirror"],
        "a polished surface of glass that reflects an image",
        8,
        "device.n",
    );
    b.noun(
        "letter_box.gate",
        &["gate"],
        "a movable barrier in a wall or fence of a castle or garden",
        10,
        "structure.construction",
    );
    b.noun(
        "tower.n",
        &["tower"],
        "a tall narrow structure rising above a castle or church",
        10,
        "structure.construction",
    );
    b.noun(
        "bridge.structure",
        &["bridge", "span"],
        "a structure carrying a road across a river or valley",
        15,
        "structure.construction",
    );
    b.noun(
        "bridge.card-game",
        &["bridge"],
        "a card game for four players in two partnerships",
        3,
        "game.activity",
    );
    b.noun(
        "bridge.nose",
        &["bridge"],
        "the upper bony part of the nose",
        2,
        "body_part.n",
    );
    b.noun(
        "bridge.ship",
        &["bridge"],
        "the platform from which a captain controls a ship",
        2,
        "structure.construction",
    );

    // ---- Time units ---------------------------------------------------------------
    b.noun(
        "hour.n",
        &["hour", "hr"],
        "a period of time equal to sixty minutes",
        40,
        "time_unit.n",
    );
    b.noun(
        "minute.time",
        &["minute", "min"],
        "a unit of time equal to sixty seconds",
        30,
        "time_unit.n",
    );
    b.noun(
        "minute.moment",
        &["minute", "moment", "instant"],
        "a very brief period of time; wait a minute",
        10,
        "time_period.n",
    );
    b.noun(
        "second.time",
        &["second", "sec"],
        "the basic unit of time, a sixtieth of a minute",
        25,
        "time_unit.n",
    );
    b.noun(
        "second.supporter",
        &["second"],
        "the assistant who supports a fighter in a duel or boxing match",
        1,
        "person.n",
    );
    b.noun(
        "week.n",
        &["week", "hebdomad"],
        "a period of seven days",
        35,
        "time_period.n",
    );
    b.noun(
        "month.n",
        &["month", "calendar month"],
        "one of the twelve divisions of a calendar year",
        35,
        "time_period.n",
    );
    b.noun(
        "morning.n",
        &["morning", "morn", "forenoon"],
        "the early part of the day from sunrise to noon",
        25,
        "time_period.n",
    );
    b.noun(
        "evening.n",
        &["evening", "eve", "eventide"],
        "the latter part of the day between afternoon and night",
        20,
        "time_period.n",
    );

    // ---- Named Shakespeare plays and roles (Group 1 color) ---------------------------
    b.instance("hamlet.play", &["hamlet"], "Hamlet, Shakespeare's tragedy of the prince of Denmark who avenges his father's murder by a poisoned ghost-haunted court", 4, "tragedy.drama");
    b.noun(
        "hamlet.village",
        &["hamlet"],
        "a small village without its own church",
        2,
        "village.n",
    );
    b.instance("macbeth.play", &["macbeth"], "Macbeth, Shakespeare's tragedy of a Scottish captain whose ambition and a witches' prophecy drive him to murder his king", 3, "tragedy.drama");
    b.instance(
        "othello.play",
        &["othello"],
        "Othello, Shakespeare's tragedy of a general destroyed by jealousy and a false friend",
        3,
        "tragedy.drama",
    );
    b.instance("lear.play", &["lear", "king lear"], "King Lear, Shakespeare's tragedy of an old king who divides his kingdom between his daughters", 3, "tragedy.drama");
    b.instance(
        "tempest.play",
        &["tempest", "the tempest"],
        "The Tempest, Shakespeare's play of a magician duke shipwrecked on an island by a storm",
        2,
        "play.drama",
    );
    b.noun(
        "tempest.storm",
        &["tempest"],
        "a violent windstorm, often at sea",
        3,
        "storm.weather",
    );
    b.instance(
        "romeo.character",
        &["romeo"],
        "Romeo, the young lover of Juliet in Shakespeare's tragedy of Verona",
        3,
        "character.role",
    );
    b.instance(
        "juliet.character",
        &["juliet"],
        "Juliet, the young daughter of the house of Capulet who loves Romeo",
        3,
        "character.role",
    );
    b.instance(
        "falstaff.character",
        &["falstaff"],
        "Falstaff, Shakespeare's fat comic knight who drinks and jests with princes",
        2,
        "character.role",
    );
    b.instance(
        "ophelia.character",
        &["ophelia"],
        "Ophelia, the noble daughter driven to madness in Hamlet",
        2,
        "character.role",
    );
    b.relate("hamlet.play", RelationKind::HasPart, "act.play-division");
    b.relate("macbeth.play", RelationKind::HasPart, "act.play-division");
}
