//! The high-polysemy anchor words.
//!
//! *head* carries exactly 33 senses — the maximum polysemy of WordNet 2.1
//! that normalizes the paper's Proposition 1 — and *state* exactly 8 (the
//! Section 4.2 `personnel` example). The remaining entries are the shared
//! polysemous words (line, light, order, title, …) that give the evaluation
//! corpus its lexical ambiguity.

use crate::builder::NetworkBuilder;

pub(super) fn register(b: &mut NetworkBuilder) {
    register_head(b);
    register_state(b);
    register_line(b);
    register_misc(b);
}

/// 30 noun senses + 3 verb senses = 33, matching `Max(senses(SN))` of
/// WordNet 2.1.
fn register_head(b: &mut NetworkBuilder) {
    b.noun(
        "head.body",
        &["head", "caput"],
        "the upper part of the human body that contains the face, brain, eyes, ears, and mouth",
        95,
        "body_part.n",
    );
    b.noun(
        "head.leader",
        &["head", "chief", "top dog"],
        "a person who is in charge of or leads an organization",
        40,
        "leader.n",
    );
    b.noun(
        "head.mind",
        &["head", "mind", "brain"],
        "that which is responsible for your thoughts and feelings; the seat of intellect",
        30,
        "cognition.n",
    );
    b.noun(
        "head.front",
        &["head"],
        "the front position or most forward part of something, as of a line or procession",
        18,
        "point.location",
    );
    b.noun(
        "head.top",
        &["head"],
        "the upper or highest part of anything, as of a page or the stairs",
        15,
        "part.relation",
    );
    b.noun(
        "head.principal",
        &["head", "school principal", "head teacher"],
        "the educator who has executive authority for a school",
        8,
        "leader.n",
    );
    b.noun(
        "head.foam",
        &["head"],
        "the froth that forms on top of beer when it is poured",
        3,
        "substance.n",
    );
    b.noun(
        "head.source",
        &["head", "fountainhead", "headspring"],
        "the source of a river; the place where a stream begins",
        4,
        "natural_object.n",
    );
    b.noun(
        "head.tool",
        &["head"],
        "the striking part of a tool, as the metal part of a hammer",
        5,
        "part.relation",
    );
    b.noun(
        "head.toilet",
        &["head"],
        "a toilet on board a boat or ship",
        2,
        "structure.construction",
    );
    b.noun(
        "head.user",
        &["head", "drug user"],
        "a person who is addicted to drugs",
        2,
        "person.n",
    );
    b.noun(
        "head.pressure",
        &["head"],
        "the pressure exerted by a fluid as measured by its height above a reference level",
        3,
        "measure.n",
    );
    b.noun(
        "head.coin",
        &["head"],
        "the obverse side of a coin that bears the image of a face",
        4,
        "signal.n",
    );
    b.noun(
        "head.drum",
        &["head", "drumhead"],
        "the membrane stretched across the open end of a drum that is struck to make sound",
        2,
        "part.relation",
    );
    b.noun(
        "head.tape",
        &["head", "read-write head"],
        "the electromagnetic device that reads or writes data on a magnetic tape or disk",
        3,
        "device.n",
    );
    b.noun("head.plant", &["head", "capitulum"], "the compact rounded mass of leaves or flowers at the top of a plant stem, as a head of lettuce", 4, "part.relation");
    b.noun(
        "head.bone",
        &["head"],
        "the rounded end of a bone that fits into a joint",
        2,
        "body_part.n",
    );
    b.noun(
        "head.grammar",
        &["head", "head word"],
        "the word in a phrase that determines its grammatical category",
        2,
        "word.n",
    );
    b.noun(
        "head.heading",
        &["head", "heading", "header"],
        "a line of text at the top of a passage indicating what it is about",
        6,
        "text.n",
    );
    b.noun(
        "head.count",
        &["head"],
        "an individual person or animal counted as a unit, as in counting heads of cattle",
        5,
        "unit_of_measurement.n",
    );
    b.noun(
        "head.crisis",
        &["head"],
        "the critical or decisive point at which a situation comes to a climax",
        4,
        "situation.n",
    );
    b.noun(
        "head.boil",
        &["head"],
        "the white tip of a boil or pimple where pus collects",
        1,
        "body_part.n",
    );
    b.noun(
        "head.table",
        &["head"],
        "the seat of honor at the end of a table where the host presides",
        2,
        "point.location",
    );
    b.noun(
        "head.course",
        &["head", "heading", "bearing"],
        "the direction or course in which a ship or aircraft is pointing",
        3,
        "cognition.n",
    );
    b.noun(
        "head.office",
        &["head", "headship"],
        "the position or office of being the leader of a group",
        4,
        "occupation.n",
    );
    b.noun(
        "head.club",
        &["head", "clubhead"],
        "the striking surface of a golf club at the end of the shaft",
        1,
        "part.relation",
    );
    b.noun(
        "head.nail",
        &["head"],
        "the flattened end of a nail, pin or screw that is struck",
        2,
        "part.relation",
    );
    b.noun(
        "head.land",
        &["head", "headland", "promontory"],
        "a natural elevation of land projecting into a body of water",
        2,
        "natural_object.n",
    );
    b.noun(
        "head.steam",
        &["head", "head of steam"],
        "a momentum of progress built up as pressure in an engine builds",
        2,
        "process.n",
    );
    b.noun(
        "head.margin",
        &["head"],
        "the length of a horse's head used as a margin of victory in racing",
        1,
        "measure.n",
    );
    b.verb(
        "head.v-lead",
        &["head", "lead"],
        "be in charge of or travel in front of a group",
        20,
        "act.deed",
    );
    b.verb(
        "head.v-direct",
        &["head", "direct"],
        "travel or proceed toward a certain place",
        15,
        "act.deed",
    );
    b.verb(
        "head.v-top",
        &["head"],
        "be at the top or the first position of a list or ranking",
        5,
        "act.deed",
    );
}

/// The remaining 6 senses of *state* beyond `state.condition` (upper.rs)
/// and `country.nation` (geography.rs): exactly 8 in total, matching the
/// WordNet count the paper quotes for the `personnel` example.
fn register_state(b: &mut NetworkBuilder) {
    b.noun("state.province", &["state", "province"], "the territory occupied by one of the constituent administrative districts of a nation, as a state of the United States", 60, "district.n");
    b.noun(
        "state.government",
        &["state", "the state"],
        "the group of people comprising the government of a sovereign nation",
        25,
        "organization.n",
    );
    b.noun(
        "state.matter",
        &["state", "state of matter", "phase"],
        "the three traditional states of matter are solid, liquid and gas",
        8,
        "attribute.n",
    );
    b.noun(
        "state.agitation",
        &["state", "tizzy"],
        "a state of depression or agitation; he was in such a state you could not reason with him",
        4,
        "feeling.n",
    );
    b.noun(
        "state.department",
        &["state", "department of state", "state department"],
        "the federal department that sets and maintains foreign policy",
        5,
        "institution.n",
    );
    b.noun(
        "state.territory",
        &["state", "nation land"],
        "the territory occupied by a nation; the land of one's birth",
        15,
        "district.n",
    );
}

/// Twelve senses of *line*.
fn register_line(b: &mut NetworkBuilder) {
    b.noun(
        "line.text",
        &["line"],
        "a single row of written words or text, as a line of a poem or of dialogue in a play",
        35,
        "text.n",
    );
    b.noun(
        "line.queue",
        &["line", "waiting line", "queue"],
        "a formation of people or things standing or waiting one behind another",
        25,
        "gathering.n",
    );
    b.noun(
        "line.cord",
        &["line"],
        "a length of cord, rope or cable used for a particular purpose",
        12,
        "artifact.n",
    );
    b.noun(
        "line.phone",
        &["line", "telephone line", "phone line"],
        "a telephone connection carrying a voice circuit between points",
        10,
        "instrumentality.n",
    );
    b.noun(
        "line.product",
        &["line", "product line", "line of products"],
        "a particular kind of product or merchandise offered by a company",
        8,
        "commodity.n",
    );
    b.noun(
        "line.boundary",
        &["line", "dividing line", "demarcation"],
        "a conceptual boundary or separation between two things",
        14,
        "relation.n",
    );
    b.noun(
        "line.geometry",
        &["line"],
        "a length without breadth or thickness in geometry; the track of a moving point",
        10,
        "shape.n",
    );
    b.noun(
        "line.lineage",
        &["line", "lineage", "descent", "bloodline"],
        "the descendants of one individual; a family line of descent",
        7,
        "kin.n",
    );
    b.noun(
        "line.railway",
        &["line", "railway line", "rail line"],
        "the road consisting of railway track over which trains travel",
        6,
        "road.n",
    );
    b.noun(
        "line.conduit",
        &["line", "pipeline"],
        "a pipe used to transport liquids or gases over a distance",
        4,
        "instrumentality.n",
    );
    b.noun(
        "line.mark",
        &["line"],
        "a mark that is long relative to its width, drawn on a surface",
        16,
        "signal.n",
    );
    b.verb(
        "line.v",
        &["line"],
        "be in or form a line along something; cover the inside of",
        8,
        "act.deed",
    );
}

fn register_misc(b: &mut NetworkBuilder) {
    // light — 8 senses.
    b.noun("light.radiation", &["light", "visible light", "visible radiation"], "electromagnetic radiation that can produce a visual sensation; the brightness that lets plants grow and eyes see", 60, "process.n");
    b.noun(
        "light.lamp",
        &["light", "light source", "lamp"],
        "any device serving as a source of illumination",
        25,
        "device.n",
    );
    b.noun(
        "light.daylight",
        &["light", "daylight"],
        "the period of the day when the sun gives light",
        15,
        "time_period.n",
    );
    b.noun(
        "light.aspect",
        &["light"],
        "a particular perspective or aspect of a situation; seen in a good light",
        8,
        "attribute.n",
    );
    b.noun(
        "light.flame",
        &["light", "flame"],
        "a flame or something used to start a fire, as a light for a cigarette",
        4,
        "process.n",
    );
    b.adjective(
        "light.not-heavy",
        &["light", "lightweight"],
        "of comparatively little physical weight or density",
        30,
    );
    b.adjective(
        "light.pale",
        &["light", "pale"],
        "of a color: having a relatively small amount of coloring agent; not dark",
        18,
    );
    b.verb(
        "light.v",
        &["light", "ignite"],
        "cause to start burning or begin to give off light",
        12,
        "act.deed",
    );

    // order — 6 senses.
    b.noun(
        "order.command",
        &["order", "command", "directive"],
        "an authoritative instruction or command to do something",
        30,
        "statement.n",
    );
    b.noun(
        "order.purchase",
        &["order", "purchase order"],
        "a commercial request to purchase, ship or deliver goods",
        20,
        "request.n",
    );
    b.noun(
        "order.sequence",
        &["order", "ordering", "arrangement"],
        "the arrangement of things following one after another in sequence",
        25,
        "relation.n",
    );
    b.noun(
        "order.taxonomy",
        &["order"],
        "the biological taxonomic group ranking between class and family",
        6,
        "group.n",
    );
    b.noun(
        "order.society",
        &["order", "monastic order"],
        "a group of persons living under a religious rule or united by a common purpose",
        8,
        "organization.n",
    );
    b.verb(
        "order.v",
        &["order", "tell"],
        "give instructions to someone or request that something be made or delivered",
        28,
        "communicate.v",
    );

    // letter (message sense; character.letter lives in geography.rs).
    b.noun(
        "letter.message",
        &["letter", "missive"],
        "a written message addressed to a person or organization and usually sent by mail",
        40,
        "document.n",
    );

    // note — 4 senses.
    b.noun(
        "note.music",
        &["note", "musical note", "tone"],
        "a notation representing the pitch and duration of a musical sound",
        15,
        "music.n",
    );
    b.noun(
        "note.written",
        &["note", "short letter", "annotation"],
        "a brief written record or a short informal written message",
        18,
        "writing.written",
    );
    b.noun(
        "note.money",
        &["note", "banknote", "bill"],
        "a piece of paper money issued by a bank",
        10,
        "possession.n",
    );
    b.verb(
        "note.v",
        &["note", "observe", "remark"],
        "make mention of or notice something",
        14,
        "communicate.v",
    );

    // year — 3 senses.
    b.noun("year.calendar", &["year", "calendar year", "twelvemonth"], "the period of time of 365 days during which the earth completes one revolution around the sun", 160, "time_period.n");
    b.noun(
        "year.academic",
        &["year", "school year", "academic year"],
        "the period of time each year when a school or university holds classes",
        12,
        "time_period.n",
    );
    b.noun(
        "year.age",
        &["year", "years"],
        "the time of life measured in years; a person's age expressed in years lived",
        20,
        "time_period.n",
    );

    // day — 3 senses.
    b.noun(
        "day.period",
        &["day", "twenty-four hours"],
        "the period of 24 hours during which the earth makes a complete rotation",
        120,
        "time_unit.n",
    );
    b.noun(
        "day.daytime",
        &["day", "daytime"],
        "the time between sunrise and sunset when there is daylight",
        35,
        "time_period.n",
    );
    b.noun(
        "day.era",
        &["day"],
        "an era of existence or influence; in the day of the dinosaurs",
        10,
        "time_period.n",
    );

    // title — 5 senses.
    b.noun(
        "title.work",
        &["title"],
        "the name given to a creative work such as a book, play, film or piece of music",
        25,
        "name.label",
    );
    b.noun(
        "title.right",
        &["title", "legal title", "deed"],
        "the legal document establishing a right of ownership of property",
        8,
        "document.n",
    );
    b.noun(
        "title.championship",
        &["title", "championship"],
        "the status of being a champion in a sport competition",
        6,
        "state.condition",
    );
    b.noun(
        "title.honorific",
        &["title", "form of address"],
        "an identifying appellation signifying rank, office or profession, as Doctor or Lord",
        10,
        "name.label",
    );
    b.noun(
        "title.caption",
        &["title", "caption", "subtitle"],
        "brief text appearing on a screen to explain or translate what is shown",
        4,
        "text.n",
    );

    // name — two more senses beyond name.label (upper.rs).
    b.noun(
        "name.reputation",
        &["name", "reputation"],
        "the state of being held in high esteem; a good name",
        12,
        "state.condition",
    );
    b.verb(
        "name.v",
        &["name", "call", "nominate"],
        "assign a specified designation to; mention and identify by name",
        30,
        "communicate.v",
    );

    // point — beyond point.location (upper.rs).
    b.noun(
        "point.idea",
        &["point"],
        "a brief version of the essential meaning of something; the point of an argument",
        20,
        "content.cognition",
    );
    b.noun(
        "point.score",
        &["point"],
        "the unit of counting in games and sports scoring",
        15,
        "unit_of_measurement.n",
    );
    b.noun(
        "point.punctuation",
        &["point", "period", "full stop"],
        "a punctuation mark placed at the end of a declarative sentence",
        5,
        "character.letter",
    );

    // member — 3 senses.
    b.noun(
        "member.person",
        &["member", "fellow member"],
        "a person who belongs to a group or organization such as a club",
        35,
        "person.n",
    );
    b.noun(
        "member.limb",
        &["member", "limb", "extremity"],
        "an external body part such as an arm or leg that projects from the body",
        8,
        "body_part.n",
    );
    b.noun(
        "member.part",
        &["member"],
        "anything that belongs to a set or class or is a part of a whole",
        10,
        "part.relation",
    );

    // age — 3 senses.
    b.noun(
        "age.duration",
        &["age"],
        "how long something has existed; the length of time a person has lived",
        45,
        "attribute.n",
    );
    b.noun(
        "age.era",
        &["age", "historic period", "era"],
        "an era of history having some distinctive feature, as the age of steam",
        18,
        "time_period.n",
    );
    b.verb(
        "age.v",
        &["age", "mature"],
        "grow old or cause to grow old or more mature",
        10,
        "act.deed",
    );

    // office — 3 senses.
    b.noun(
        "office.room",
        &["office", "business office"],
        "a room or building where professional or clerical work is done",
        30,
        "building.n",
    );
    b.noun(
        "office.position",
        &["office", "post", "berth"],
        "a position of responsibility or authority to which one is appointed",
        15,
        "occupation.n",
    );
    b.noun(
        "office.agency",
        &["office", "agency", "bureau"],
        "an administrative unit of government that provides a service",
        10,
        "unit.organization",
    );

    // link — 4 senses.
    b.noun(
        "link.connection",
        &["link", "connection", "connexion"],
        "the means of connection between things; a connecting shape or relation",
        15,
        "relation.n",
    );
    b.noun(
        "link.chain",
        &["link", "chain link"],
        "one of the rings or loops forming a chain",
        4,
        "part.relation",
    );
    b.noun("link.hyperlink", &["link", "hyperlink", "url"], "a reference in an electronic document that lets a user jump to another document or address on a network", 8, "written_communication.n");
    b.verb(
        "link.v",
        &["link", "connect", "tie"],
        "connect or fasten or put together two or more things",
        12,
        "act.deed",
    );

    // family — 5 senses.
    b.noun(
        "family.unit",
        &["family", "household", "family unit"],
        "the primary social group of parents and their children living together",
        85,
        "kin.n",
    );
    b.noun(
        "family.lineage",
        &["family", "family line", "folk"],
        "people descended from a common ancestor; the family name is passed down the line",
        20,
        "kin.n",
    );
    b.noun(
        "family.taxonomy",
        &["family"],
        "the biological taxonomic group ranking between genus and order",
        8,
        "group.n",
    );
    b.noun(
        "family.crime",
        &["family", "crime syndicate", "mob"],
        "a loose affiliation of criminals in charge of organized illegal activities",
        3,
        "organization.n",
    );
    b.noun(
        "family.children",
        &["family"],
        "a person's children regarded collectively; they decided to start a family",
        12,
        "kin.n",
    );

    // common — 3 senses.
    b.adjective(
        "common.ordinary",
        &["common", "ordinary"],
        "occurring or encountered often; of the most familiar kind, as a common name for a plant",
        35,
    );
    b.adjective(
        "common.shared",
        &["common", "mutual"],
        "belonging to or shared by two or more parties in common",
        20,
    );
    b.noun(
        "common.land",
        &["common", "commons", "green"],
        "a piece of open public land in a town or village",
        5,
        "area.n",
    );

    // class — 3 senses.
    b.noun(
        "class.category",
        &["class", "category", "type"],
        "a collection of things sharing a common attribute",
        40,
        "collection.n",
    );
    b.noun(
        "class.students",
        &["class", "course", "form"],
        "a body of students who are taught together or graduate together",
        25,
        "gathering.n",
    );
    b.noun(
        "class.social",
        &["class", "social class", "stratum"],
        "people having the same social or economic status",
        18,
        "social_group.n",
    );

    // part — performance role (beyond part.relation).
    b.noun(
        "part.role",
        &["part", "role", "character"],
        "an actor's portrayal of someone in a play or film; she played the part well",
        20,
        "act.deed",
    );

    // bill — 3 senses (commerce/food overlap).
    b.noun(
        "bill.invoice",
        &["bill", "invoice", "account"],
        "an itemized statement of money owed for goods or services",
        15,
        "statement.n",
    );
    b.noun(
        "bill.law",
        &["bill", "measure"],
        "a statute in draft form before it becomes law",
        10,
        "document.n",
    );
    b.noun(
        "bill.beak",
        &["bill", "beak"],
        "the horny projecting mouth of a bird",
        4,
        "body_part.n",
    );

    // interest — 3 senses (club/bib overlap).
    b.noun(
        "interest.curiosity",
        &["interest", "involvement"],
        "a sense of concern with and curiosity about someone or something",
        25,
        "feeling.n",
    );
    b.noun(
        "interest.money",
        &["interest"],
        "a fixed charge for borrowing money, usually a percentage of the amount borrowed",
        15,
        "monetary_value.n",
    );
    b.noun("interest.hobby", &["interest", "pastime", "pursuit"], "a diversion that occupies one's time and thoughts pleasantly, as the hobbies of club members", 10, "activity.n");
}
