//! The recorded-music domain: vocabulary of the W3Schools CD-catalog
//! dataset (cd, title, artist, country, company, price, year, track, …).
//! Glosses share "music", "album" and "recording" so gloss overlap binds
//! the domain.

use crate::builder::NetworkBuilder;

pub(super) fn register(b: &mut NetworkBuilder) {
    b.noun(
        "cd.disc",
        &["cd", "compact disc", "compact disk"],
        "a digital disc on which music recordings are stored and sold as an album",
        8,
        "recording.medium",
    );
    b.noun(
        "recording.medium",
        &["recording"],
        "a storage medium such as a disc or tape on which sound or music has been recorded",
        6,
        "device.n",
    );
    b.noun(
        "recording.sound",
        &["recording", "sound recording", "audio recording"],
        "a signal that is the sound of a music performance stored on a medium",
        5,
        "signal.n",
    );
    b.noun(
        "album.record",
        &["album", "record album"],
        "one or more recordings of music issued together as a single collection",
        8,
        "recording.medium",
    );
    b.noun(
        "album.book",
        &["album"],
        "a book of blank pages to hold a collection of photographs or stamps",
        4,
        "book.publication",
    );
    b.noun(
        "record.phonograph",
        &["record", "phonograph record", "disk", "platter"],
        "the vinyl disc on which music recordings were formerly sold; an album of music",
        6,
        "recording.medium",
    );
    b.noun(
        "song.n",
        &["song", "vocal"],
        "a short piece of music with words that is sung; a track on an album",
        18,
        "music.n",
    );
    b.noun(
        "track.song",
        &["track", "cut"],
        "one of the individual songs or pieces of music recorded on an album or cd",
        6,
        "music.n",
    );
    b.relate(
        "track.song",
        crate::model::RelationKind::PartOf,
        "album.record",
    );
    b.relate("track.song", crate::model::RelationKind::PartOf, "cd.disc");
    b.noun(
        "track.path",
        &["track", "trail", "path"],
        "a path or rough road beaten by the feet of people or animals",
        10,
        "road.n",
    );
    b.noun(
        "track.race",
        &["track", "racetrack", "running track"],
        "the course laid out for running or racing",
        5,
        "road.n",
    );
    b.noun(
        "track.rail",
        &["track", "rail", "railroad track"],
        "the parallel steel rails on which a train runs",
        6,
        "road.n",
    );
    b.noun(
        "track.mark",
        &["track", "trail", "spoor"],
        "the marks or footprints left by an animal or person passing",
        4,
        "signal.n",
    );
    b.noun(
        "track.course",
        &["track", "course of study"],
        "a course of study chosen by a student",
        3,
        "activity.n",
    );
    b.verb(
        "track.v",
        &["track", "trail", "tail"],
        "follow the traces or footprints of; observe the path of",
        5,
        "act.deed",
    );
    b.noun(
        "band.musicians",
        &["band", "musical group", "musical ensemble"],
        "a group of musicians who play music together, especially popular music",
        12,
        "organization.n",
    );
    b.noun(
        "band.strip",
        &["band", "stripe", "strip"],
        "a thin flat strip of material used for binding or as decoration",
        6,
        "artifact.n",
    );
    b.noun(
        "band.frequency",
        &["band", "frequency band", "waveband"],
        "a range of radio frequencies between two limits",
        3,
        "measure.n",
    );
    b.noun(
        "band.ring",
        &["band", "ring"],
        "a strip of metal worn around the finger, as a wedding band",
        4,
        "clothing.n",
    );
    b.noun(
        "rock.stone",
        &["rock", "stone"],
        "a hard lump of mineral matter; material consisting of the earth's crust",
        25,
        "natural_object.n",
    );
    b.noun(
        "rock.music",
        &["rock", "rock music", "rock and roll"],
        "a genre of popular music with a strong beat played by a band with electric guitars",
        8,
        "music_genre.n",
    );
    b.noun(
        "music_genre.n",
        &["music genre", "musical genre", "musical style"],
        "an expressive style or genre of music",
        5,
        "genre.kind",
    );
    b.verb(
        "rock.v",
        &["rock", "sway"],
        "move back and forth gently, as to rock a baby",
        6,
        "act.deed",
    );
    b.noun(
        "pop.music",
        &["pop", "pop music", "popular music"],
        "a genre of music of general appeal sold in large numbers of recordings",
        6,
        "music_genre.n",
    );
    b.noun(
        "pop.father",
        &["pop", "dad", "papa"],
        "an informal word for one's father",
        5,
        "father.n",
    );
    b.noun(
        "pop.sound",
        &["pop", "popping"],
        "a sharp explosive sound, as of a cork being drawn",
        3,
        "happening.n",
    );
    b.noun(
        "pop.soda",
        &["pop", "soda", "soda pop"],
        "a sweet carbonated drink",
        4,
        "beverage.n",
    );
    b.noun(
        "jazz.music",
        &["jazz"],
        "a genre of American music with improvisation and syncopated rhythms played by bands",
        6,
        "music_genre.n",
    );
    b.noun(
        "jazz.talk",
        &["jazz", "malarkey"],
        "empty or insincere talk",
        1,
        "speech.communication",
    );
    b.noun(
        "country.music",
        &["country", "country music", "country and western"],
        "a genre of popular music from the rural American south played with guitars and fiddles",
        5,
        "music_genre.n",
    );
    b.noun(
        "folk.music",
        &["folk", "folk music", "ethnic music"],
        "the traditional music handed down among the common people of a region",
        4,
        "music_genre.n",
    );
    b.noun(
        "folk.people",
        &["folk", "folks", "common people"],
        "people in general or of a particular region",
        8,
        "group.n",
    );
    b.noun(
        "blues.music",
        &["blues", "blue"],
        "a genre of melancholy music that grew from African American work songs",
        4,
        "music_genre.n",
    );
    b.noun(
        "blues.feeling",
        &["blues", "megrims"],
        "a state of depressed and gloomy feeling",
        2,
        "feeling.n",
    );
    b.noun(
        "soul.music",
        &["soul", "soul music"],
        "a genre of African American music with gospel feeling and rhythm and blues style",
        3,
        "music_genre.n",
    );
    b.noun(
        "soul.spirit",
        &["soul", "psyche", "spirit"],
        "the immaterial part of a person; the seat of feeling and will",
        12,
        "psychological_feature.n",
    );
    b.noun(
        "single.record",
        &["single"],
        "a recording of music released with one main song rather than an album",
        3,
        "recording.medium",
    );
    b.noun(
        "single.baseball",
        &["single", "base hit"],
        "a hit in baseball that allows the batter to reach first base",
        2,
        "action.n",
    );
    b.adjective(
        "single.one",
        &["single", "individual", "sole"],
        "being a single entity; existing alone, one only",
        15,
    );
    b.noun(
        "label.record-company",
        &["label", "recording label", "record company"],
        "the company under whose brand a music recording is issued and sold",
        4,
        "company.firm",
    );
    b.noun(
        "label.tag",
        &["label"],
        "an identifying slip of paper or cloth attached to an object giving its name",
        8,
        "signal.n",
    );
    b.noun(
        "label.term",
        &["label"],
        "a brief descriptive term applied to a person or group, often unfairly",
        4,
        "name.label",
    );
    b.verb(
        "label.v",
        &["label", "tag", "mark"],
        "attach a label to something or assign a term to it",
        6,
        "act.deed",
    );
    b.noun(
        "concert.n",
        &["concert"],
        "a performance of music by musicians or a band before an audience",
        10,
        "performance.n",
    );
    b.noun(
        "hit.song",
        &["hit", "smash", "smash hit"],
        "a recording of music or a show that sells many copies and is very successful",
        4,
        "happening.n",
    );
    b.noun(
        "hit.blow",
        &["hit", "hitting", "striking"],
        "the act of hitting one thing with another",
        8,
        "action.n",
    );
    b.noun(
        "guitar.n",
        &["guitar"],
        "a stringed musical instrument played by plucking, used in rock and country bands",
        8,
        "musical_instrument.n",
    );
    b.noun(
        "musical_instrument.n",
        &["musical instrument", "instrument"],
        "a device for producing musical sounds",
        8,
        "device.n",
    );
    b.noun(
        "piano.instrument",
        &["piano", "pianoforte"],
        "a large keyboard musical instrument with hammered strings",
        8,
        "musical_instrument.n",
    );
    b.noun(
        "piano.softly",
        &["piano"],
        "a musical direction meaning to play softly",
        1,
        "order.command",
    );
    b.noun(
        "voice.singing",
        &["voice"],
        "the sound made with vocal organs when singing music; a singer's musical instrument",
        10,
        "ability.n",
    );
    b.noun(
        "voice.opinion",
        &["voice"],
        "the right to express an opinion; a voice in the decision",
        5,
        "communication.n",
    );
    b.noun(
        "studio_album.n",
        &["studio album"],
        "an album of music recorded in a recording studio rather than at a concert",
        1,
        "album.record",
    );
    b.noun(
        "chart.music",
        &["chart", "the charts"],
        "the weekly listing of the best selling music recordings",
        3,
        "document.n",
    );
    b.noun(
        "chart.map",
        &["chart"],
        "a map or visual display of information, as a mariner's chart",
        5,
        "picture.image",
    );
    b.noun(
        "lyrics.n",
        &["lyrics", "lyric", "words"],
        "the words that are sung with a piece of music; the text of a song",
        4,
        "text.n",
    );
    b.noun(
        "beat.rhythm",
        &["beat", "rhythm", "musical rhythm"],
        "the basic recurrent rhythmical unit in a piece of music",
        5,
        "attribute.n",
    );
    b.noun(
        "beat.route",
        &["beat", "round"],
        "a regular route patrolled by a police officer or followed by a reporter",
        3,
        "road.n",
    );
    b.verb(
        "beat.v",
        &["beat", "defeat"],
        "win a victory over an opponent or strike repeatedly",
        12,
        "act.deed",
    );
    b.noun(
        "beverage.n",
        &["beverage", "drink", "potable"],
        "any liquid suitable for drinking",
        12,
        "food.substance",
    );
}
