//! The motion-picture domain: the IMDB dataset's tag vocabulary (movie,
//! picture, cast, star, genre, plot, …) and the Figure 1 example document.
//! Glosses deliberately share the phrases "motion picture", "film" and
//! "actor" so gloss-overlap similarity binds the domain together.

use crate::builder::NetworkBuilder;
use crate::model::RelationKind;

pub(super) fn register(b: &mut NetworkBuilder) {
    // ---- The film itself --------------------------------------------------
    b.noun("film.movie", &["movie", "film", "picture", "motion picture", "moving picture", "flick", "pic"], "a form of entertainment that enacts a story performed by a cast of actors, a director and a camera; a motion picture shown in a theater", 45, "show.n");
    b.relate("film.movie", RelationKind::HasPart, "cast.actors");
    b.relate("film.movie", RelationKind::HasPart, "scene.film");
    b.relate("film.movie", RelationKind::HasPart, "plot.story");
    b.noun(
        "show.n",
        &["show"],
        "a social event involving a public performance or entertainment presented to an audience",
        30,
        "social_event.n",
    );
    b.noun(
        "social_event.n",
        &["social event"],
        "an event characteristic of persons forming groups",
        15,
        "event.n",
    );
    b.noun("film.photographic", &["film", "photographic film"], "a light-sensitive strip of cellulose coated with emulsion used in a camera to take photographs", 8, "artifact.n");
    b.noun(
        "film.coating",
        &["film", "thin film"],
        "a thin coating or layer covering a surface",
        5,
        "covering.artifact",
    );
    b.verb(
        "film.v",
        &["film", "shoot"],
        "record a scene or performance on photographic film with a movie camera",
        6,
        "create.v",
    );

    // ---- picture: the remaining senses -------------------------------------
    b.noun(
        "picture.image",
        &["picture", "image", "icon"],
        "a visual representation of a person, object or scene, as a painting or drawing",
        35,
        "work_of_art.n",
    );
    b.noun(
        "picture.photograph",
        &["picture", "photograph", "photo", "exposure"],
        "a picture of a person or scene recorded by a camera on light-sensitive film",
        25,
        "picture.image",
    );
    b.noun(
        "picture.mental",
        &["picture", "mental picture", "impression"],
        "a clear and telling mental image of something imagined",
        10,
        "content.cognition",
    );
    b.noun("picture.situation", &["picture"], "the state of affairs; a situation treated as an observable scene, as in the overall picture", 6, "situation.n");
    b.noun(
        "picture.tv",
        &["picture", "video"],
        "the visible part of a television transmission on a screen",
        5,
        "signal.n",
    );
    b.verb(
        "picture.v",
        &["picture", "visualize", "envision"],
        "imagine or form a mental image of something",
        8,
        "act.deed",
    );

    // ---- star: the remaining senses (celestial lives here too) --------------
    b.noun(
        "star.celestial",
        &["star"],
        "a celestial body of hot gases, the light of which is visible in the night sky",
        28,
        "celestial_body.n",
    );
    b.noun(
        "star.performer",
        &["star", "principal", "lead"],
        "an actor who plays a principal role in a motion picture or play",
        15,
        "actor.n",
    );
    b.noun(
        "star.celebrity",
        &["star", "celebrity"],
        "a famous and widely known person, as a star of screen or sport",
        12,
        "person.n",
    );
    b.noun(
        "star.shape",
        &["star"],
        "a plane figure with five or more points radiating from a center",
        8,
        "shape.n",
    );
    b.noun(
        "star.asterisk",
        &["star", "asterisk"],
        "a star-shaped character * used in printed text",
        3,
        "character.letter",
    );
    b.verb(
        "star.v-feature",
        &["star", "feature"],
        "be the star or principal performer in a motion picture or show",
        6,
        "perform.v",
    );
    b.verb(
        "star.v-mark",
        &["star", "asterisk"],
        "mark a text item with a star or asterisk",
        2,
        "act.deed",
    );

    // ---- cast --------------------------------------------------------------
    b.noun(
        "cast.actors",
        &[
            "cast",
            "cast of characters",
            "dramatis personae",
            "personae",
        ],
        "the group of actors selected to perform together in a motion picture or play",
        10,
        "gathering.n",
    );
    b.relate("cast.actors", RelationKind::HasMember, "actor.n");
    b.relate("cast.actors", RelationKind::HasMember, "star.performer");
    b.noun(
        "cast.throw",
        &["cast", "throw"],
        "the act of throwing something, as the cast of dice or of a fishing line",
        6,
        "action.n",
    );
    b.noun(
        "cast.mold",
        &["cast", "mold", "mould"],
        "a container into which liquid material is poured to make an object of a given shape",
        5,
        "container.n",
    );
    b.noun(
        "cast.plaster",
        &["cast", "plaster cast"],
        "a rigid bandage of plaster that immobilizes a broken bone while it heals",
        4,
        "device.n",
    );
    b.noun(
        "cast.appearance",
        &["cast", "shade", "tinge"],
        "a slight shade of a color or quality in the appearance of something",
        3,
        "attribute.n",
    );
    b.verb(
        "cast.v-throw",
        &["cast", "hurl"],
        "throw something forcefully, as to cast a stone or a fishing line",
        8,
        "act.deed",
    );
    b.verb(
        "cast.v-assign",
        &["cast"],
        "select an actor to play a role in a motion picture or play",
        5,
        "act.deed",
    );
    b.verb(
        "cast.v-shed",
        &["cast", "shed", "molt"],
        "cast off hair, skin or feathers periodically",
        3,
        "act.deed",
    );

    // ---- plot --------------------------------------------------------------
    b.noun("plot.story", &["plot", "story line", "storyline"], "the plan or main story of a narrative work such as a motion picture, play or novel, enacted by the characters the actors play", 14, "content.cognition");
    b.noun(
        "plot.scheme",
        &["plot", "conspiracy", "intrigue"],
        "a secret scheme or plan to do something, especially something unlawful",
        8,
        "content.cognition",
    );
    b.noun(
        "plot.land",
        &["plot", "plot of ground", "patch"],
        "a small area of ground set aside for a purpose such as a garden",
        6,
        "area.n",
    );
    b.noun(
        "plot.chart",
        &["plot", "graph"],
        "a drawing showing the relation between variable quantities measured along axes",
        4,
        "picture.image",
    );
    b.verb(
        "plot.v",
        &["plot", "scheme"],
        "plan something secretly or mark a chart or graph",
        5,
        "act.deed",
    );

    // ---- genres -------------------------------------------------------------
    b.noun(
        "genre.kind",
        &["genre"],
        "a kind or style of art, literature or motion picture sharing conventions",
        8,
        "class.category",
    );
    b.noun(
        "mystery.story",
        &["mystery", "mystery story", "whodunit"],
        "a genre of story or motion picture about a crime solved by detection",
        6,
        "genre.kind",
    );
    b.noun(
        "mystery.puzzle",
        &["mystery", "enigma", "secret"],
        "something that baffles understanding and cannot be explained",
        8,
        "cognition.n",
    );
    b.noun(
        "western.genre",
        &["western"],
        "a genre of motion picture about frontier life and cowboys in the American West",
        4,
        "genre.kind",
    );
    b.adjective(
        "western.adj",
        &["western"],
        "of or located in the west or characteristic of the west",
        10,
    );
    b.noun(
        "comedy.genre",
        &["comedy"],
        "a genre of light and humorous drama or motion picture with a happy ending",
        8,
        "genre.kind",
    );
    b.noun(
        "comedy.humor",
        &["comedy", "fun"],
        "a comic incident or series of incidents; humorous entertainment",
        5,
        "activity.n",
    );
    b.noun(
        "drama.play",
        &["drama", "dramatic play"],
        "a work intended for performance by actors on a stage; serious plays as a genre",
        12,
        "genre.kind",
    );
    b.noun(
        "drama.excitement",
        &["drama"],
        "an episode of turmoil or heightened emotion in real life",
        4,
        "situation.n",
    );
    b.noun(
        "thriller.n",
        &["thriller"],
        "a genre of suspenseful story or motion picture designed to excite",
        4,
        "genre.kind",
    );
    b.noun(
        "romance.story",
        &["romance", "love story"],
        "a genre of story or motion picture dealing with love",
        5,
        "genre.kind",
    );
    b.noun(
        "romance.affair",
        &["romance", "love affair"],
        "a relationship between two lovers",
        6,
        "social_relation.n",
    );
    b.noun(
        "horror.genre",
        &["horror", "horror movie"],
        "a genre of story or motion picture intended to frighten",
        4,
        "genre.kind",
    );
    b.noun(
        "horror.fear",
        &["horror", "fright"],
        "intense and profound fear or repugnance",
        6,
        "emotion.n",
    );

    // ---- supporting vocabulary ----------------------------------------------
    b.noun(
        "scene.film",
        &["scene", "shot"],
        "a consecutive series of pictures in a motion picture constituting a unit of action",
        8,
        "part.relation",
    );
    b.noun(
        "screen.display",
        &["screen", "silver screen"],
        "the white surface onto which a motion picture is projected; a display surface",
        10,
        "device.n",
    );
    b.noun(
        "screen.industry",
        &["screen", "the screen"],
        "the motion picture industry considered collectively",
        4,
        "occupation.n",
    );
    b.noun(
        "screen.partition",
        &["screen", "partition"],
        "a vertical structure that divides or conceals an area",
        5,
        "structure.construction",
    );
    b.verb(
        "screen.v",
        &["screen", "test"],
        "examine methodically or project a film for viewing",
        4,
        "act.deed",
    );
    b.noun(
        "theater.building",
        &["theater", "theatre", "house", "playhouse"],
        "a building where plays and motion pictures are performed or shown to an audience",
        15,
        "building.n",
    );
    b.noun(
        "theater.art",
        &["theater", "theatre", "dramaturgy", "dramatic art"],
        "the art of writing and producing plays for the stage",
        8,
        "communication.n",
    );
    b.noun(
        "cinema.n",
        &["cinema", "movie theater", "picture palace"],
        "a theater where motion pictures are shown",
        6,
        "theater.building",
    );
    b.noun(
        "audience.spectators",
        &["audience"],
        "the group of people gathered to watch a performance such as a play or motion picture",
        12,
        "gathering.n",
    );
    b.noun(
        "audience.hearing",
        &["audience", "hearing"],
        "a formal meeting or conference for hearing views, as an audience with the queen",
        4,
        "social_event.n",
    );
    b.noun(
        "studio.workplace",
        &["studio"],
        "a workplace where motion pictures or broadcasts are made or an artist works",
        7,
        "building.n",
    );
    b.noun(
        "studio.company",
        &["studio", "film studio"],
        "the organization that produces motion pictures",
        4,
        "organization.n",
    );
    b.noun(
        "camera.n",
        &["camera"],
        "equipment for taking photographs or recording motion pictures",
        14,
        "equipment.n",
    );
    b.noun(
        "award.n",
        &["award", "prize", "trophy"],
        "something given in recognition of achievement, as an award for the best motion picture",
        10,
        "possession.n",
    );
    b.instance(
        "oscar.n",
        &["oscar", "academy award"],
        "the Academy Award statuette given annually for achievements in motion pictures",
        3,
        "award.n",
    );
    b.noun(
        "running_time.n",
        &["running time", "runtime", "duration"],
        "the length of time a motion picture or performance lasts",
        4,
        "time_period.n",
    );
    b.noun(
        "sequel.n",
        &["sequel", "continuation"],
        "a motion picture or novel that continues the story of an earlier one",
        3,
        "work.product",
    );
    b.noun(
        "character.role",
        &["character", "fictional character", "persona"],
        "an imaginary person represented in a work of fiction such as a play or motion picture",
        12,
        "content.cognition",
    );
    b.noun(
        "hero.n",
        &["hero"],
        "the principal character in a play, novel or motion picture",
        10,
        "character.role",
    );
    b.noun(
        "villain.n",
        &["villain", "baddie"],
        "the wicked character in a story who opposes the hero",
        5,
        "character.role",
    );
    b.noun(
        "wheelchair.n",
        &["wheelchair"],
        "a movable chair mounted on large wheels for a disabled person",
        3,
        "vehicle.n",
    );
    b.noun(
        "window.n",
        &["window"],
        "an opening in a wall framed to admit light or air, usually fitted with glass",
        25,
        "structure.construction",
    );
    b.noun(
        "rear.back",
        &["rear", "back", "rear end"],
        "the side or part of something located at the back, away from the front",
        10,
        "part.relation",
    );
    b.verb(
        "rear.v",
        &["rear", "raise", "bring up"],
        "bring up and care for a child until fully grown",
        8,
        "act.deed",
    );

    // Named films referenced by the corpus.
    b.instance("rear_window.film", &["rear window"], "Rear Window, the 1954 Hitchcock motion picture in which a wheelchair-bound photographer spies on his neighbors, starring James Stewart and Grace Kelly", 2, "film.movie");
    b.instance(
        "psycho.film",
        &["psycho"],
        "Psycho, the Hitchcock suspense motion picture about a motel murder",
        2,
        "film.movie",
    );
    b.instance(
        "vertigo.film",
        &["vertigo"],
        "Vertigo, the Hitchcock motion picture starring James Stewart about obsession",
        2,
        "film.movie",
    );
    b.relate("film.movie", RelationKind::HasPart, "title.work");
    b.relate("album.record", RelationKind::HasPart, "title.work");
    b.relate("cd.disc", RelationKind::HasPart, "title.work");
    b.relate("play.drama", RelationKind::HasPart, "title.work");
    b.relate("rear_window.film", RelationKind::HasMember, "stewart.james");
    b.relate("rear_window.film", RelationKind::HasMember, "kelly.grace");
}
