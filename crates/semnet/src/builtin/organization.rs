//! The personnel / club domain: vocabulary of the Niagara `personnel` and
//! `club` datasets (person, name, family, given, email, url, office, phone,
//! salary, club, member, president, treasurer, meeting, …). Glosses share
//! "club", "member", "employee" and "organization" so gloss overlap binds
//! the domain. The compound concepts `first name` / `last name` exercise
//! the pre-processor's single-concept compound matching (Section 3.2).

use crate::builder::NetworkBuilder;

pub(super) fn register(b: &mut NetworkBuilder) {
    // ---- names ------------------------------------------------------------------
    b.noun(
        "given_name.n",
        &["given name", "first name", "forename", "given"],
        "the name bestowed on a person at birth that precedes the family name",
        10,
        "name.label",
    );
    b.noun(
        "surname.n",
        &["surname", "family name", "last name", "cognomen"],
        "the name shared by the members of a family, inherited down the family line",
        10,
        "name.label",
    );
    b.noun(
        "middle_name.n",
        &["middle name"],
        "a name placed between a person's first name and family name",
        2,
        "name.label",
    );
    b.noun(
        "nickname.n",
        &["nickname", "moniker", "sobriquet"],
        "an informal familiar name for a person, used instead of the given name",
        3,
        "name.label",
    );

    // ---- employment ----------------------------------------------------------------
    b.noun(
        "personnel.staff",
        &["personnel", "staff", "employees"],
        "the group of people employed by an organization or company",
        8,
        "social_group.n",
    );
    b.noun(
        "personnel.department",
        &["personnel", "personnel department", "personnel office"],
        "the department of an organization that manages its employees",
        3,
        "office.agency",
    );
    b.noun(
        "employee.n",
        &["employee"],
        "a worker who is hired by an organization or company to perform a job for a salary",
        15,
        "worker.n",
    );
    b.noun(
        "employer.n",
        &["employer"],
        "an organization or person that hires employees and pays their salary",
        6,
        "person.n",
    );
    b.noun(
        "manager.sports",
        &["manager", "coach"],
        "a person in charge of training and directing a sports team",
        5,
        "leader.n",
    );
    b.noun(
        "supervisor.n",
        &["supervisor", "boss"],
        "an employee who oversees and directs the work of other employees",
        8,
        "leader.n",
    );
    b.noun(
        "secretary.assistant",
        &["secretary", "assistant"],
        "an employee who handles correspondence and clerical work for an organization",
        8,
        "worker.n",
    );
    b.noun(
        "secretary.official",
        &["secretary", "secretary of state"],
        "a government official who heads a department of state",
        4,
        "leader.n",
    );
    b.noun(
        "secretary.desk",
        &["secretary", "writing desk"],
        "a desk with a hinged writing surface and drawers",
        1,
        "furniture.n",
    );
    b.noun(
        "salary.n",
        &["salary", "wage", "pay", "earnings"],
        "the fixed amount of money paid regularly to an employee for work",
        15,
        "monetary_value.n",
    );
    b.noun(
        "bonus.n",
        &["bonus", "incentive"],
        "an additional payment to an employee beyond the salary as a reward",
        4,
        "monetary_value.n",
    );
    b.noun(
        "position.job",
        &["position", "post", "situation"],
        "a job in an organization for which a person is employed",
        12,
        "occupation.n",
    );
    b.noun(
        "position.place",
        &["position", "placement"],
        "the spatial arrangement or location of something",
        10,
        "point.location",
    );
    b.noun(
        "position.opinion",
        &["position", "stance", "posture"],
        "a rationalized mental attitude or opinion on an issue",
        6,
        "cognition.n",
    );
    b.noun(
        "department.division",
        &["department", "section"],
        "a specialized division of an organization, company or university",
        15,
        "unit.organization",
    );
    b.noun(
        "resume.document",
        &["resume", "curriculum vitae", "cv"],
        "a short document describing an employee's qualifications and work record",
        3,
        "document.n",
    );
    b.noun(
        "contract.agreement",
        &["contract", "agreement"],
        "a binding written agreement between an employee and an employer or between companies",
        10,
        "document.n",
    );
    b.noun(
        "contract.bridge",
        &["contract", "declaration"],
        "the highest bid that wins the auction in the card game of bridge",
        1,
        "statement.n",
    );

    // ---- contact details -------------------------------------------------------------
    b.noun(
        "email.message",
        &["email", "e-mail", "electronic mail"],
        "a message sent electronically between computers over a network",
        10,
        "message.n",
    );
    b.noun(
        "email.system",
        &["email", "email system"],
        "the system of sending messages electronically between computer addresses",
        4,
        "instrumentality.n",
    );
    b.noun(
        "phone.telephone",
        &["phone", "telephone", "telephone set"],
        "the electronic device used to talk to a person at another address over a line",
        15,
        "device.n",
    );
    b.noun(
        "phone.sound",
        &["phone", "speech sound"],
        "an individual sound unit of spoken speech",
        1,
        "language_unit.n",
    );
    b.verb(
        "phone.v",
        &["phone", "call", "telephone"],
        "get or try to get into communication with someone by telephone",
        10,
        "communicate.v",
    );
    b.noun(
        "website.n",
        &["website", "web site", "site"],
        "a computer connected to the internet that maintains a series of web pages",
        6,
        "instrumentality.n",
    );
    b.noun(
        "fax.n",
        &["fax", "facsimile"],
        "a copy of a document transmitted electronically over a telephone line",
        3,
        "document.n",
    );
    b.noun(
        "mail.letters",
        &["mail", "post"],
        "the letters and packages that are transported and delivered by the postal service",
        10,
        "collection.n",
    );
    b.noun(
        "mail.armor",
        &["mail", "chain mail"],
        "flexible armor made of interlinked metal rings",
        1,
        "clothing.n",
    );

    // ---- club -----------------------------------------------------------------------
    b.noun(
        "club.association",
        &["club", "social club", "society", "guild"],
        "an organization of members who meet periodically because of a shared interest or activity",
        12,
        "organization.n",
    );
    b.noun(
        "club.nightclub",
        &["club", "nightclub", "night club"],
        "a spot for social entertainment open at night where members drink and dance",
        5,
        "building.n",
    );
    b.noun(
        "club.golf",
        &["club", "golf club"],
        "the implement with a long shaft used to hit the ball in golf",
        4,
        "implement.n",
    );
    b.noun(
        "club.weapon",
        &["club", "cudgel"],
        "a stout heavy stick used as a weapon",
        3,
        "weapon.n",
    );
    b.noun(
        "club.card",
        &["club"],
        "a playing card in the suit marked with black clover leaves",
        2,
        "game_piece.n",
    );
    b.verb(
        "club.v",
        &["club"],
        "strike with a heavy stick or gather together in a club",
        2,
        "act.deed",
    );
    b.noun(
        "president.organization",
        &["president", "chairman", "chairwoman"],
        "the officer who presides over the meetings of a club or organization",
        10,
        "leader.n",
    );
    b.noun(
        "president.nation",
        &["president", "head of state"],
        "the chief executive who leads the government of a republic",
        15,
        "leader.n",
    );
    b.noun(
        "treasurer.n",
        &["treasurer", "financial officer"],
        "the officer of a club or organization responsible for its money",
        3,
        "leader.n",
    );
    b.noun(
        "committee.n",
        &["committee", "commission"],
        "a group of members appointed by an organization to consider some matter",
        8,
        "organization.n",
    );
    b.noun(
        "meeting.gathering",
        &["meeting", "group meeting"],
        "a formally arranged gathering of the members of a club or organization",
        12,
        "social_event.n",
    );
    b.noun(
        "meeting.encounter",
        &["meeting", "encounter"],
        "an unplanned casual coming together of people",
        5,
        "social_event.n",
    );
    b.noun(
        "membership.state",
        &["membership"],
        "the state of being a member of a club or organization",
        4,
        "state.condition",
    );
    b.noun(
        "membership.body",
        &["membership", "rank and file"],
        "the body of members of an organization considered together",
        3,
        "social_group.n",
    );
    b.noun(
        "dues.n",
        &["dues", "membership fee"],
        "the periodic payment a member owes to a club or organization",
        2,
        "monetary_value.n",
    );
    b.noun(
        "founder.person",
        &["founder", "beginner", "founding father"],
        "the person who establishes and founds an organization or club",
        4,
        "person.n",
    );
    b.noun(
        "volunteer.n",
        &["volunteer", "unpaid worker"],
        "a member who performs work for an organization without salary",
        4,
        "worker.n",
    );
    b.noun(
        "event.club",
        &["event", "function", "occasion"],
        "a planned social occasion organized by a club for its members",
        8,
        "social_event.n",
    );
    b.noun(
        "agenda.n",
        &["agenda", "docket", "schedule"],
        "the list of matters to be taken up at a meeting of an organization",
        4,
        "document.n",
    );
    b.noun(
        "minutes.record",
        &["minutes", "proceedings record"],
        "the written record of what was said at a meeting of an organization",
        2,
        "record.document",
    );
    b.noun(
        "chapter_club.n",
        &["local chapter"],
        "the local branch of a larger club or society",
        1,
        "organization.n",
    );
    b.noun(
        "hobby.n",
        &["hobby", "avocation", "sideline"],
        "an auxiliary activity pursued for pleasure by club members outside their occupation",
        5,
        "interest.hobby",
    );
    b.noun(
        "sport_team.n",
        &["team", "squad"],
        "a cooperative group of members organized to compete in a sport",
        10,
        "unit.organization",
    );
    b.noun(
        "league.sports",
        &["league"],
        "an association of sports teams or clubs that organizes matches",
        4,
        "organization.n",
    );
    b.noun(
        "league.distance",
        &["league"],
        "an obsolete unit of distance of about three miles",
        1,
        "unit_of_measurement.n",
    );
}
