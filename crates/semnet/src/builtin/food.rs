//! The food-service domain: vocabulary of the W3Schools breakfast-menu
//! dataset (menu, food, name, price, description, calories, …) and the
//! dishes it lists. Glosses share "food", "dish", "breakfast" and "served"
//! so gloss overlap binds the domain.

use crate::builder::NetworkBuilder;

pub(super) fn register(b: &mut NetworkBuilder) {
    b.noun(
        "menu.list",
        &["menu", "bill of fare", "card"],
        "a list of the dishes and food that may be ordered in a restaurant, with their prices",
        8,
        "document.n",
    );
    b.noun(
        "menu.computer",
        &["menu", "computer menu"],
        "a list of options displayed on a computer screen from which a user selects",
        4,
        "document.n",
    );
    b.noun(
        "menu.fare",
        &["menu"],
        "the dishes making up a meal considered together",
        3,
        "food.substance",
    );
    b.noun(
        "dish.container",
        &["dish"],
        "a shallow open container for holding or serving food",
        10,
        "container.n",
    );
    b.noun(
        "dish.food",
        &["dish"],
        "a particular item of prepared food served as part of a meal",
        12,
        "food.substance",
    );
    b.noun(
        "dish.antenna",
        &["dish", "dish antenna", "satellite dish"],
        "a directional antenna shaped like a shallow bowl",
        2,
        "device.n",
    );
    b.noun(
        "dish.person",
        &["dish", "smasher", "knockout"],
        "an informal word for a very attractive person",
        1,
        "person.n",
    );
    b.noun(
        "meal.occasion",
        &["meal", "repast"],
        "an occasion when food is prepared and eaten, as breakfast or dinner",
        20,
        "social_event.n",
    );
    b.noun(
        "meal.flour",
        &["meal"],
        "coarsely ground grain used in cooking",
        3,
        "food.substance",
    );
    b.noun(
        "breakfast.n",
        &["breakfast"],
        "the first meal of the day, usually served in the morning with coffee or juice",
        12,
        "meal.occasion",
    );
    b.noun(
        "lunch.n",
        &["lunch", "luncheon"],
        "a meal of food eaten at midday",
        10,
        "meal.occasion",
    );
    b.noun(
        "dinner.n",
        &["dinner"],
        "the main meal of the day, served in the evening or at midday",
        15,
        "meal.occasion",
    );
    b.noun(
        "restaurant.n",
        &["restaurant", "eatery", "eating place"],
        "a building where meals and dishes are prepared and served to customers",
        12,
        "building.n",
    );
    b.noun(
        "course.meal",
        &["course"],
        "one part of a meal served in sequence, as a main course from the menu",
        6,
        "food.substance",
    );
    b.noun(
        "course.direction",
        &["course", "trend"],
        "the general direction along which something moves",
        8,
        "cognition.n",
    );
    b.noun(
        "calorie.n",
        &["calorie", "kilocalorie"],
        "the unit of heat used to express the energy that food supplies to the body",
        5,
        "unit_of_measurement.n",
    );
    b.noun(
        "ingredient.food",
        &["ingredient", "fixings"],
        "a food substance that is combined with others in preparing a dish",
        6,
        "food.substance",
    );
    b.noun(
        "ingredient.component",
        &["ingredient", "element", "factor"],
        "an abstract part or aspect of something; a component of success",
        5,
        "part.relation",
    );
    b.noun(
        "serving.portion",
        &["serving", "portion", "helping"],
        "an individual quantity of food served on a dish to one person",
        4,
        "food.substance",
    );
    b.noun(
        "recipe.n",
        &["recipe", "formula"],
        "the written directions for preparing a dish from its ingredients",
        5,
        "order.command",
    );
    b.noun("waffle.food", &["waffle"], "a crisp pancake with a pattern of deep squares, baked in a waffle iron and served at breakfast", 3, "dish.food");
    b.verb(
        "waffle.v",
        &["waffle", "hedge"],
        "be vague and avoid committing oneself",
        2,
        "communicate.v",
    );
    b.noun(
        "pancake.n",
        &["pancake", "flapjack", "hotcake"],
        "a flat cake of thin batter fried on both sides and served hot at breakfast",
        4,
        "dish.food",
    );
    b.noun(
        "toast.bread",
        &["toast"],
        "slices of bread browned with dry heat, served warm at breakfast",
        5,
        "dish.food",
    );
    b.noun(
        "toast.tribute",
        &["toast", "pledge"],
        "the act of raising a glass and drinking in honor of a person",
        3,
        "act.deed",
    );
    b.noun(
        "toast.person",
        &["toast"],
        "a celebrated person who receives much admiration, as the toast of the town",
        1,
        "person.n",
    );
    b.verb(
        "toast.v",
        &["toast", "drink to"],
        "propose a toast to someone or brown bread with heat",
        3,
        "act.deed",
    );
    b.noun(
        "egg.food",
        &["egg", "eggs"],
        "the oval object laid by a hen, cooked and eaten as food at breakfast",
        10,
        "food.substance",
    );
    b.noun(
        "egg.biology",
        &["egg", "ovum"],
        "the reproductive cell produced by a female organism",
        5,
        "natural_object.n",
    );
    b.noun(
        "bread.food",
        &["bread", "breadstuff", "staff of life"],
        "a food made from flour dough that is baked, often served with meals",
        15,
        "food.substance",
    );
    b.noun(
        "bread.money",
        &["bread", "dough"],
        "a slang word for money",
        2,
        "possession.n",
    );
    b.noun(
        "butter.n",
        &["butter"],
        "an edible yellow fat churned from cream, spread on bread or toast",
        8,
        "food.substance",
    );
    b.noun(
        "cream.dairy",
        &["cream"],
        "the thick fatty part of milk, used in cooking and with coffee",
        8,
        "food.substance",
    );
    b.noun(
        "cream.cosmetic",
        &["cream", "ointment", "emollient"],
        "a thick cosmetic preparation applied to the skin",
        3,
        "substance.n",
    );
    b.noun(
        "cream.best",
        &["cream", "pick"],
        "the best and choicest part of a group, as the cream of the crop",
        2,
        "part.relation",
    );
    b.noun(
        "milk.drink",
        &["milk"],
        "the white nutritious liquid produced by cows and drunk as a beverage or poured on cereal",
        15,
        "beverage.n",
    );
    b.noun(
        "milk.plant",
        &["milk", "latex"],
        "the milky juice or sap of certain plants",
        2,
        "fluid.n",
    );
    b.verb(
        "milk.v",
        &["milk", "exploit"],
        "draw milk from an animal or exploit something to the fullest",
        3,
        "act.deed",
    );
    b.noun(
        "coffee.drink",
        &["coffee", "java"],
        "a dark beverage brewed from roasted ground beans, drunk hot at breakfast",
        12,
        "beverage.n",
    );
    b.noun(
        "coffee.bean",
        &["coffee", "coffee bean"],
        "the seeds of the coffee plant that are roasted and ground for brewing",
        3,
        "seed.n",
    );
    b.noun(
        "coffee.color",
        &["coffee", "chocolate"],
        "a medium brown color like that of the roasted bean drink",
        1,
        "color.n",
    );
    b.noun(
        "tea.drink",
        &["tea"],
        "a hot beverage made by steeping dried leaves in boiling water",
        10,
        "beverage.n",
    );
    b.noun(
        "tea.meal",
        &["tea", "afternoon tea", "teatime"],
        "a light afternoon meal of sandwiches and cake served with tea",
        3,
        "meal.occasion",
    );
    b.noun(
        "tea.plant",
        &["tea", "tea leaf"],
        "the dried leaves of the tea shrub used for brewing",
        2,
        "plant_part.n",
    );
    b.noun(
        "juice.drink",
        &["juice"],
        "the liquid squeezed from fruit, as orange juice served at breakfast",
        8,
        "beverage.n",
    );
    b.noun(
        "juice.electricity",
        &["juice"],
        "a slang word for electric current or energy",
        1,
        "process.n",
    );
    b.noun(
        "syrup.n",
        &["syrup", "sirup"],
        "a thick sweet liquid such as maple syrup poured over waffles and pancakes",
        4,
        "food.substance",
    );
    b.noun(
        "honey.food",
        &["honey"],
        "the sweet yellow fluid made by bees, spread on toast or stirred into tea",
        5,
        "food.substance",
    );
    b.noun(
        "honey.person",
        &["honey", "dear", "sweetheart"],
        "an affectionate name for a beloved person",
        4,
        "person.n",
    );
    b.noun(
        "sugar.food",
        &["sugar", "refined sugar"],
        "a sweet white crystalline substance added to food and beverages",
        8,
        "food.substance",
    );
    b.noun(
        "sugar.person",
        &["sugar", "sweetie"],
        "an affectionate term of address for a person",
        1,
        "person.n",
    );
    b.noun(
        "berry.fruit",
        &["berry"],
        "a small juicy fruit such as a strawberry or blueberry served with waffles",
        5,
        "fruit.food",
    );
    b.noun(
        "fruit.food",
        &["fruit"],
        "the sweet ripened plant part containing seeds, eaten as food",
        15,
        "plant_part.n",
    );
    b.noun(
        "fruit.result",
        &["fruit"],
        "the consequence or result of effort, as the fruit of hard labor",
        4,
        "happening.n",
    );
    b.noun(
        "strawberry.n",
        &["strawberry"],
        "a sweet red berry with seeds on its surface, served with cream or on waffles",
        4,
        "berry.fruit",
    );
    b.noun(
        "blueberry.n",
        &["blueberry"],
        "a small round blue berry eaten fresh or baked in pancakes",
        3,
        "berry.fruit",
    );
    b.noun(
        "cereal.breakfast",
        &["cereal", "breakfast cereal"],
        "a breakfast food made from processed grain, served with milk",
        5,
        "dish.food",
    );
    b.noun(
        "cereal.grass",
        &["cereal", "grain"],
        "a grass such as wheat whose seeds are used as food",
        4,
        "plant.organism",
    );
    b.noun(
        "bacon.n",
        &["bacon"],
        "cured meat from the back and sides of a pig, fried and served at breakfast",
        5,
        "food.substance",
    );
    b.noun(
        "sausage.n",
        &["sausage"],
        "minced seasoned meat stuffed into a casing, served fried at breakfast",
        4,
        "food.substance",
    );
    b.noun(
        "omelet.n",
        &["omelet", "omelette"],
        "a dish of beaten eggs cooked in a pan and folded over a filling",
        3,
        "dish.food",
    );
    b.noun(
        "cake.baked",
        &["cake"],
        "a sweet baked food made from flour, sugar, eggs and butter",
        8,
        "dish.food",
    );
    b.noun(
        "cake.block",
        &["cake", "bar"],
        "a small flat compressed block of something, as a cake of soap",
        2,
        "whole.n",
    );
    b.noun(
        "pie.n",
        &["pie"],
        "a dish of fruit or meat baked in a pastry crust",
        6,
        "dish.food",
    );
    b.noun(
        "sauce.n",
        &["sauce"],
        "a flavored liquid dressing poured over a dish of food",
        5,
        "food.substance",
    );
    b.noun(
        "soup.n",
        &["soup"],
        "a liquid dish made by simmering meat or vegetables in stock",
        6,
        "dish.food",
    );
    b.noun(
        "salad.n",
        &["salad"],
        "a dish of raw vegetables or fruit served with a dressing",
        6,
        "dish.food",
    );
    b.noun(
        "dessert.n",
        &["dessert", "sweet", "afters"],
        "the sweet course served at the end of a meal",
        5,
        "course.meal",
    );
    b.noun(
        "chef.n",
        &["chef", "cook"],
        "a professional who prepares and cooks dishes in a restaurant",
        6,
        "professional.n",
    );
    b.noun(
        "waiter.n",
        &["waiter", "server"],
        "a person who serves dishes from the menu to customers at tables",
        4,
        "worker.n",
    );
    b.noun(
        "flavor.n",
        &["flavor", "flavour", "savor"],
        "the distinctive taste of a food or dish",
        5,
        "attribute.n",
    );
    b.noun(
        "taste.sense",
        &["taste", "gustation"],
        "the sense that perceives the flavor of food in the mouth",
        5,
        "ability.n",
    );
    b.noun(
        "taste.preference",
        &["taste", "preference", "liking"],
        "a strong liking or personal preference; a taste for adventure",
        6,
        "feeling.n",
    );
}
