//! The retail / e-commerce domain: vocabulary of the Amazon-product
//! dataset (product, price, brand, rating, review, stock, shipping, …).
//! Glosses share "sale", "goods", "customer" and "merchandise" so gloss
//! overlap binds the domain.

use crate::builder::NetworkBuilder;
use crate::model::RelationKind;

pub(super) fn register(b: &mut NetworkBuilder) {
    // ---- product, price, and friends ----------------------------------------
    b.noun(
        "product.merchandise",
        &["product", "merchandise", "ware"],
        "commodities offered for sale to customers; goods of a particular brand",
        25,
        "commodity.n",
    );
    b.noun(
        "product.math",
        &["product", "mathematical product"],
        "the quantity obtained by multiplying two numbers together",
        5,
        "definite_quantity.n",
    );
    b.noun(
        "product.result",
        &["product", "result", "outcome"],
        "a consequence or result of some process; the product of hard work",
        8,
        "happening.n",
    );
    b.noun(
        "price.amount",
        &["price", "terms", "damage"],
        "the amount of money that a customer must pay to purchase goods or a service",
        35,
        "monetary_value.n",
    );
    b.noun(
        "price.cost-figurative",
        &["price", "cost", "toll"],
        "the loss or sacrifice that something costs; the price of fame",
        8,
        "state.condition",
    );
    b.verb(
        "price.v",
        &["price"],
        "determine or set the amount of money asked for goods offered for sale",
        5,
        "act.deed",
    );
    b.noun(
        "list_price.n",
        &["list price", "listprice"],
        "the price of merchandise as published in a catalog or list, before any discount",
        3,
        "price.amount",
    );
    b.noun(
        "discount.reduction",
        &["discount", "price reduction", "deduction"],
        "an amount subtracted from the usual price of merchandise offered for sale",
        8,
        "monetary_value.n",
    );
    b.verb(
        "discount.v",
        &["discount", "dismiss"],
        "give little importance to; bar from attention",
        4,
        "act.deed",
    );
    b.noun(
        "sale.event",
        &["sale", "sales event"],
        "an occasion when a store sells goods at reduced prices",
        10,
        "social_event.n",
    );
    b.noun(
        "sale.transaction",
        &["sale"],
        "the general activity of selling goods or merchandise to customers",
        15,
        "activity.n",
    );
    b.noun(
        "tax.n",
        &["tax", "taxation", "revenue enhancement"],
        "a charge of money imposed by a government on sales, income or property",
        18,
        "monetary_value.n",
    );

    // ---- brand ---------------------------------------------------------------
    b.noun(
        "brand.trademark",
        &["brand", "brand name", "make"],
        "the name given by a maker to identify its goods or merchandise for sale",
        12,
        "name.label",
    );
    b.noun(
        "brand.kind",
        &["brand"],
        "a particular kind or variety of something; a strange brand of humor",
        5,
        "class.category",
    );
    b.noun(
        "brand.mark",
        &["brand"],
        "an identifying mark burned on the hide of livestock",
        3,
        "signal.n",
    );
    b.noun(
        "brand.sword",
        &["brand"],
        "a literary word for a sword used in battle",
        1,
        "weapon.n",
    );

    // ---- evaluation ------------------------------------------------------------
    b.noun(
        "rating.score",
        &["rating", "evaluation", "valuation"],
        "an appraisal of the value or quality of goods, as a customer rating of a product",
        10,
        "cognition.n",
    );
    b.noun(
        "rating.rank",
        &["rating"],
        "the rank of an enlisted sailor in a navy",
        2,
        "state.condition",
    );
    b.noun(
        "rating.credit",
        &["rating", "credit rating"],
        "an estimate of the ability of a person or business to pay money owed",
        3,
        "cognition.n",
    );
    b.noun(
        "review.critique",
        &["review", "critique", "criticism"],
        "an essay evaluating a product, book, play or motion picture for customers or readers",
        12,
        "writing.written",
    );
    b.noun(
        "review.survey",
        &["review", "reappraisal"],
        "a new examination or general survey of a subject or situation",
        8,
        "cognition.n",
    );
    b.noun(
        "review.military",
        &["review", "parade"],
        "a formal ceremonial inspection of troops",
        2,
        "social_event.n",
    );
    b.verb(
        "review.v",
        &["review", "go over"],
        "appraise critically or look at again",
        10,
        "act.deed",
    );

    // ---- physical properties of goods ------------------------------------------
    b.noun(
        "weight.heaviness",
        &["weight", "heaviness"],
        "the vertical force exerted by a mass; how heavy goods are for shipping",
        18,
        "fundamental_quantity.n",
    );
    b.noun(
        "weight.importance",
        &["weight"],
        "the relative importance granted to something; his opinion carries weight",
        8,
        "attribute.n",
    );
    b.noun(
        "weight.barbell",
        &["weight", "free weight", "exercising weight"],
        "a heavy object lifted for exercise or athletic competition",
        4,
        "equipment.n",
    );
    b.noun("weight.statistics", &["weight", "weighting"], "a coefficient assigned to an element to represent its relative importance in a calculation", 3, "number.n");
    b.noun(
        "dimension.measure",
        &["dimension"],
        "the magnitude of something in a particular direction, as the dimensions of a package",
        8,
        "measure.n",
    );
    b.noun(
        "dimension.aspect",
        &["dimension", "facet"],
        "one of the elements or aspects contributing to a whole",
        5,
        "attribute.n",
    );
    b.noun(
        "size.n",
        &["size"],
        "the physical magnitude or extent of something; how big goods are",
        20,
        "attribute.n",
    );

    // ---- stock ------------------------------------------------------------------
    b.noun(
        "stock.inventory",
        &["stock", "inventory"],
        "the merchandise that a store or business keeps on hand for sale",
        10,
        "commodity.n",
    );
    b.noun(
        "stock.shares",
        &["stock"],
        "the capital of a company divided into shares held by investors",
        12,
        "asset.n",
    );
    b.noun(
        "stock.livestock",
        &["stock", "livestock", "farm animal"],
        "any animals kept for use or profit on a farm",
        6,
        "animal.n",
    );
    b.noun(
        "stock.broth",
        &["stock", "broth"],
        "a liquid in which meat and vegetables are simmered, used as a basis for soup or sauce",
        4,
        "food.substance",
    );
    b.noun(
        "stock.gun",
        &["stock", "gunstock"],
        "the wooden handle or support of a rifle",
        2,
        "part.relation",
    );
    b.noun(
        "stock.lineage",
        &["stock", "ancestry", "origin"],
        "the descendants of one individual; of sturdy farming stock",
        4,
        "kin.n",
    );

    // ---- catalog, order fulfilment ----------------------------------------------
    b.noun("catalog.list", &["catalog", "catalogue"], "a complete list of things, such as goods for sale or plants offered by a nursery, usually arranged systematically", 8, "document.n");
    b.verb(
        "catalog.v",
        &["catalog", "catalogue"],
        "make an itemized list of goods or holdings",
        3,
        "act.deed",
    );
    b.noun(
        "item.object",
        &["item"],
        "an individual article or unit of merchandise, especially one in a list or collection",
        12,
        "whole.n",
    );
    b.noun(
        "item.list-entry",
        &["item", "point"],
        "a distinct entry in a list or an account",
        6,
        "part.relation",
    );
    b.noun(
        "shipping.transport",
        &["shipping", "transport", "transportation"],
        "the commercial activity of transporting goods to customers",
        6,
        "activity.n",
    );
    b.noun(
        "shipping.ships",
        &["shipping"],
        "the ships of a nation considered collectively",
        2,
        "collection.n",
    );
    b.noun(
        "delivery.goods",
        &["delivery", "bringing"],
        "the act of delivering goods or mail to a customer's address",
        8,
        "action.n",
    );
    b.noun(
        "delivery.birth",
        &["delivery", "obstetrical delivery"],
        "the act of giving birth to a child",
        5,
        "action.n",
    );
    b.noun(
        "delivery.speech",
        &["delivery", "manner of speaking"],
        "a speaker's manner of delivering a speech",
        3,
        "attribute.n",
    );
    b.noun(
        "delivery.pitch",
        &["delivery", "pitch"],
        "the act of throwing a baseball by a pitcher to a batter",
        2,
        "action.n",
    );
    b.noun(
        "package.parcel",
        &["package", "parcel", "bundle"],
        "a wrapped container in which goods are shipped to customers",
        8,
        "container.n",
    );
    b.noun(
        "package.software",
        &["package", "software package"],
        "merchandise consisting of a computer program offered for sale",
        3,
        "product.merchandise",
    );
    b.noun(
        "package.deal",
        &["package", "package deal"],
        "a group of things offered for sale as a unit",
        3,
        "commodity.n",
    );
    b.noun(
        "warranty.n",
        &["warranty", "guarantee", "warrant"],
        "a written promise that the maker will repair or replace goods that prove defective",
        4,
        "statement.n",
    );
    b.noun(
        "return.goods",
        &["return"],
        "the act of giving purchased goods back to the store for a refund",
        4,
        "action.n",
    );
    b.noun(
        "return.profit",
        &["return", "yield", "takings"],
        "the income or profit arising from a transaction or investment",
        6,
        "monetary_value.n",
    );

    // ---- features and models ------------------------------------------------------
    b.noun(
        "feature.characteristic",
        &["feature", "characteristic"],
        "a prominent attribute or aspect of a product or thing",
        12,
        "attribute.n",
    );
    b.noun(
        "feature.film",
        &["feature", "feature film"],
        "the full-length motion picture that is the main attraction of a showing",
        4,
        "film.movie",
    );
    b.noun(
        "feature.face",
        &["feature", "lineament"],
        "a distinct part of a face such as the nose or eyes",
        5,
        "body_part.n",
    );
    b.noun(
        "model.version",
        &["model", "version"],
        "a particular type or design of a product made by a maker, as this year's model",
        10,
        "class.category",
    );
    b.noun(
        "model.fashion",
        &["model", "fashion model", "mannequin"],
        "a person employed to wear clothing or pose for photographs to display merchandise",
        5,
        "worker.n",
    );
    b.noun(
        "model.representation",
        &["model", "simulation"],
        "a simplified representation of something, used for analysis or display",
        8,
        "picture.image",
    );
    b.noun(
        "model.example",
        &["model", "exemplar", "good example"],
        "something to be imitated; a model of good behavior",
        6,
        "content.cognition",
    );
    b.verb(
        "model.v",
        &["model", "pose", "simulate"],
        "display clothing as a model does, or construct a representation of",
        4,
        "act.deed",
    );

    // ---- people & places of commerce ----------------------------------------------
    b.noun(
        "seller.n",
        &["seller", "vendor", "marketer"],
        "a person or business that offers goods or merchandise for sale to customers",
        8,
        "worker.n",
    );
    b.noun(
        "customer.n",
        &["customer", "client", "buyer"],
        "a person who purchases goods or services from a seller or store",
        15,
        "person.n",
    );
    b.noun(
        "store.shop",
        &["store", "shop"],
        "a building or room where goods and merchandise are offered for sale to customers",
        20,
        "building.n",
    );
    b.noun(
        "store.supply",
        &["store", "stash", "hoard"],
        "a supply of something kept available for future use",
        5,
        "collection.n",
    );
    b.noun(
        "market.place",
        &["market", "marketplace", "mart"],
        "the physical place where goods are bought and sold",
        12,
        "building.n",
    );
    b.noun(
        "market.demand",
        &["market"],
        "the body of customers and the demand for particular goods",
        10,
        "group.n",
    );
    b.noun(
        "market.activity",
        &["market", "securities market"],
        "the trading of stocks and securities as an activity",
        6,
        "activity.n",
    );
    b.noun(
        "company.firm",
        &["company", "firm", "business"],
        "an institution created to conduct business and sell goods or services",
        40,
        "institution.n",
    );
    b.noun(
        "company.companionship",
        &["company", "companionship", "fellowship"],
        "the pleasant state of being with someone; he enjoys her company",
        10,
        "social_relation.n",
    );
    b.noun(
        "company.troupe",
        &["company"],
        "a troupe of actors or dancers who perform together on stage",
        4,
        "troupe.n",
    );
    b.noun(
        "company.military",
        &["company"],
        "a military unit of soldiers, usually commanded by a captain",
        5,
        "unit.organization",
    );
    b.noun(
        "company.guests",
        &["company"],
        "guests visiting one's home collectively; we are expecting company",
        4,
        "gathering.n",
    );
    b.noun(
        "gift.present",
        &["gift", "present"],
        "something given to someone as a present without payment",
        10,
        "possession.n",
    );
    b.noun(
        "gift.talent",
        &["gift", "talent", "endowment"],
        "a natural ability or talent",
        6,
        "ability.n",
    );
    b.noun(
        "inventory.list",
        &["inventory", "stock list"],
        "a detailed list of all the goods and merchandise in stock",
        4,
        "document.n",
    );
    b.noun(
        "description.account",
        &["description", "verbal description"],
        "a statement that tells what a product, person or thing is like",
        12,
        "statement.n",
    );
    b.noun(
        "description.sort",
        &["description"],
        "sort or variety; condiments of every description",
        3,
        "class.category",
    );
    b.noun(
        "availability.n",
        &["availability", "handiness"],
        "the quality of being at hand and obtainable when needed, as goods in stock",
        4,
        "attribute.n",
    );
    b.adjective(
        "available.a",
        &["available", "in stock"],
        "obtainable and ready for use or purchase",
        12,
    );
    b.noun(
        "condition.stipulation",
        &["condition", "stipulation", "term"],
        "a statement of what is required as part of an agreement of sale",
        8,
        "statement.n",
    );
    b.noun(
        "quantity.ordered",
        &["quantity"],
        "how many units of an item a customer orders",
        6,
        "measure.n",
    );
    b.noun(
        "category.n",
        &["category"],
        "a general class or division into which goods or concepts are sorted",
        10,
        "class.category",
    );

    // Attribute links: the price, brand and weight of merchandise — the
    // WordNet-style attribute edges that bind the retail domain.
    b.relate("price.amount", RelationKind::Attribute, "commodity.n");
    b.relate(
        "price.amount",
        RelationKind::Attribute,
        "product.merchandise",
    );
    b.relate("price.amount", RelationKind::Attribute, "catalog.list");
    b.relate("price.amount", RelationKind::Attribute, "menu.list");
    b.relate(
        "brand.trademark",
        RelationKind::Attribute,
        "product.merchandise",
    );
    b.relate(
        "weight.heaviness",
        RelationKind::Attribute,
        "product.merchandise",
    );
    b.relate("stock.inventory", RelationKind::Attribute, "store.shop");
    b.relate(
        "rating.score",
        RelationKind::Attribute,
        "product.merchandise",
    );
    b.relate(
        "review.critique",
        RelationKind::Attribute,
        "product.merchandise",
    );
    b.relate(
        "description.account",
        RelationKind::Attribute,
        "product.merchandise",
    );
    b.relate(
        "model.version",
        RelationKind::Attribute,
        "product.merchandise",
    );
    b.relate(
        "feature.characteristic",
        RelationKind::Attribute,
        "product.merchandise",
    );
    b.relate("item.object", RelationKind::PartOf, "catalog.list");
}
