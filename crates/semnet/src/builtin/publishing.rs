//! The bibliographic / publishing domain: vocabulary of the SIGMOD-Record
//! proceedings dataset and the Niagara `bib` dataset (proceedings, article,
//! author, volume, issue, page, journal, publisher, …). Glosses share
//! "journal", "published" and "article" so gloss overlap binds the domain.

use crate::builder::NetworkBuilder;
use crate::model::RelationKind;

pub(super) fn register(b: &mut NetworkBuilder) {
    // ---- containers of scholarly writing -------------------------------------
    b.noun(
        "proceedings.record",
        &["proceedings", "minutes", "transactions"],
        "the published record of the papers presented at a conference or learned society meeting",
        4,
        "publication.n",
    );
    b.noun(
        "proceedings.legal",
        &["proceedings", "legal proceeding"],
        "the conduct of a lawsuit or other legal process",
        3,
        "activity.n",
    );
    b.noun("conference.meeting", &["conference"], "a prearranged meeting where researchers present papers and confer, often publishing proceedings", 10, "social_event.n");
    b.noun(
        "conference.league",
        &["conference", "league"],
        "an association of sports teams that compete with each other",
        4,
        "organization.n",
    );
    b.noun(
        "journal.periodical",
        &["journal"],
        "a scholarly periodical in which researchers' articles are published",
        10,
        "publication.n",
    );
    b.noun(
        "journal.diary",
        &["journal", "diary"],
        "a daily written record of personal experiences and observations",
        6,
        "writing.written",
    );
    b.noun(
        "journal.bearing",
        &["journal"],
        "the part of a rotating shaft that turns in a bearing",
        1,
        "part.relation",
    );
    b.noun(
        "magazine.periodical",
        &["magazine", "mag"],
        "a periodical publication with articles and pictures for general readers",
        10,
        "publication.n",
    );
    b.noun(
        "magazine.gun",
        &["magazine", "cartridge holder"],
        "the metal compartment that feeds cartridges into a gun",
        2,
        "container.n",
    );
    b.noun(
        "book.publication",
        &["book", "volume"],
        "a written work of some length published as bound pages; a book by an author",
        55,
        "publication.n",
    );
    b.noun(
        "book.ledger",
        &["book", "ledger", "account book"],
        "a record in which commercial accounts are entered; cooking the books",
        4,
        "document.n",
    );
    b.verb(
        "book.v",
        &["book", "reserve"],
        "arrange for and reserve something in advance",
        8,
        "act.deed",
    );
    b.noun(
        "newspaper.n",
        &["newspaper", "paper", "gazette"],
        "a daily or weekly publication printed on cheap paper and containing news articles",
        20,
        "publication.n",
    );

    // ---- the units inside -----------------------------------------------------
    b.noun(
        "article.text",
        &["article", "piece"],
        "a nonfictional piece of writing published as part of a journal, magazine or newspaper",
        15,
        "writing.written",
    );
    b.noun(
        "article.grammar",
        &["article"],
        "a determiner such as the or a that may indicate definiteness",
        3,
        "word.n",
    );
    b.noun(
        "article.item",
        &["article"],
        "one of a class of objects; an article of clothing",
        8,
        "whole.n",
    );
    b.noun(
        "article.clause",
        &["article", "clause"],
        "a distinct section of a legal document or treaty",
        4,
        "document.n",
    );
    b.noun(
        "paper.material",
        &["paper"],
        "a thin material made of cellulose pulp used for writing and printing",
        25,
        "material.n",
    );
    b.noun("paper.essay", &["paper", "research paper", "scientific paper"], "a scholarly article reporting research results, presented at a conference or published in a journal", 12, "article.text");
    b.noun(
        "paper.exam",
        &["paper", "examination paper"],
        "the written questions of a school examination",
        3,
        "document.n",
    );
    b.noun(
        "abstract.summary",
        &["abstract", "precis", "synopsis"],
        "a short summary at the head of a published article stating its main results",
        5,
        "statement.n",
    );
    b.adjective(
        "abstract.a",
        &["abstract", "theoretical"],
        "existing only in the mind; not concrete",
        10,
    );
    b.noun(
        "volume.book",
        &["volume"],
        "one of a sequence of bound books; a physical book as an object",
        10,
        "book.publication",
    );
    b.noun(
        "volume.series",
        &["volume"],
        "the consecutively numbered set of issues of a journal published during a year",
        6,
        "collection.n",
    );
    b.noun(
        "volume.loudness",
        &["volume", "loudness"],
        "the intensity or magnitude of sound",
        8,
        "attribute.n",
    );
    b.noun(
        "volume.space",
        &["volume"],
        "the amount of three-dimensional space occupied by an object",
        10,
        "measure.n",
    );
    b.noun(
        "issue.periodical",
        &["issue", "number"],
        "one of a series of periodical publications of a journal or magazine",
        8,
        "publication.n",
    );
    b.noun(
        "issue.problem",
        &["issue", "matter", "topic"],
        "an important question or problem that is under discussion",
        15,
        "content.cognition",
    );
    b.noun(
        "issue.offspring",
        &["issue", "progeny", "offspring"],
        "the immediate descendants of a person in legal usage",
        3,
        "relative.n",
    );
    b.verb(
        "issue.v",
        &["issue", "publish", "release"],
        "prepare and distribute a publication or statement officially",
        8,
        "act.deed",
    );
    b.noun(
        "page.sheet",
        &["page"],
        "one side of a sheet of paper in a book, journal or other publication",
        20,
        "part.relation",
    );
    b.noun(
        "page.boy",
        &["page", "pageboy"],
        "a youth who was formerly the personal attendant of a knight or noble",
        3,
        "child.n",
    );
    b.noun(
        "page.web",
        &["page", "web page", "webpage"],
        "a document of text and images accessible on the world wide web at an address",
        8,
        "document.n",
    );
    b.verb(
        "page.v",
        &["page", "summon"],
        "call out somebody's name over a public address system",
        2,
        "communicate.v",
    );
    b.noun(
        "chapter.division",
        &["chapter"],
        "a major division of a published book, usually numbered",
        10,
        "part.relation",
    );
    b.noun(
        "chapter.branch",
        &["chapter"],
        "a local branch of a society or club",
        3,
        "organization.n",
    );

    // ---- people of publishing ---------------------------------------------------
    b.noun("editor.person", &["editor", "editor in chief"], "the person who supervises and corrects the articles published in a journal, newspaper or book", 8, "professional.n");
    b.noun(
        "editor.software",
        &["editor", "editor program", "text editor"],
        "a computer program for creating and modifying text files",
        3,
        "device.n",
    );
    b.noun(
        "publisher.company",
        &["publisher", "publishing house", "publishing firm"],
        "a firm in the business of publishing books, journals or newspapers",
        6,
        "company.firm",
    );
    b.noun(
        "publisher.person",
        &["publisher"],
        "the proprietor of a newspaper or the person who heads a publishing business",
        4,
        "professional.n",
    );
    b.noun(
        "reader.person",
        &["reader"],
        "a person who reads published writing such as books and articles",
        10,
        "person.n",
    );
    b.noun(
        "critic.n",
        &["critic", "reviewer"],
        "a professional whose reviews of books, plays and motion pictures are published",
        5,
        "professional.n",
    );

    // ---- records and references ----------------------------------------------------
    b.noun(
        "record.document",
        &["record", "written record", "written account"],
        "a document preserving an account of facts or events",
        15,
        "document.n",
    );
    b.noun(
        "record.best",
        &["record"],
        "the best performance ever attested, as a world record in sport",
        8,
        "attribute.n",
    );
    b.noun(
        "record.criminal",
        &["record", "criminal record"],
        "the list of a person's past crimes known to the law",
        4,
        "document.n",
    );
    b.noun(
        "record.history",
        &["record", "track record"],
        "the sum of a person's known achievements; an impressive record",
        5,
        "cognition.n",
    );
    b.verb(
        "record.v",
        &["record", "register", "enter"],
        "set down in a permanent written or recorded form",
        12,
        "act.deed",
    );
    b.noun("reference.citation", &["reference", "citation", "quotation"], "a short note in a published article directing the reader to another publication as a source", 6, "writing.written");
    b.noun(
        "reference.mention",
        &["reference", "mention"],
        "a brief remark that calls attention to something",
        5,
        "statement.n",
    );
    b.noun(
        "reference.book",
        &["reference", "reference book", "reference work"],
        "a book such as a dictionary consulted for authoritative information",
        4,
        "book.publication",
    );
    b.noun(
        "index.list",
        &["index"],
        "an alphabetical listing of names and subjects with page numbers at the back of a book",
        5,
        "document.n",
    );
    b.noun(
        "index.number",
        &["index", "index number"],
        "a number indicating a measured level relative to a standard",
        4,
        "number.n",
    );
    b.noun(
        "index.finger",
        &["index", "index finger", "forefinger"],
        "the finger next to the thumb",
        3,
        "body_part.n",
    );
    b.noun(
        "bibliography.n",
        &["bibliography", "bib"],
        "a list of the published books and articles referred to in a scholarly work",
        3,
        "document.n",
    );
    b.noun(
        "number.issue-of",
        &["number"],
        "the individual issue of a periodical publication identified by a numeral",
        3,
        "publication.n",
    );
    b.noun(
        "edition.n",
        &["edition"],
        "the form in which a published text is issued, as a revised edition of a book",
        5,
        "work.product",
    );
    b.noun(
        "copyright.n",
        &["copyright", "right of first publication"],
        "the exclusive legal right to publish and sell a written work",
        3,
        "possession.n",
    );
    b.noun(
        "manuscript.n",
        &["manuscript", "ms"],
        "the author's written or typed text of an article or book before it is published",
        3,
        "document.n",
    );
    b.noun(
        "section.division",
        &["section", "subdivision"],
        "one of the distinct parts into which a document, article or proceedings is divided",
        10,
        "part.relation",
    );
    b.noun(
        "section.district",
        &["section"],
        "a distinct region or part of a town or territory",
        5,
        "district.n",
    );
    b.noun(
        "database.n",
        &["database"],
        "an organized collection of data records stored in a computer system",
        6,
        "collection.n",
    );
    b.noun(
        "query.n",
        &["query", "inquiry"],
        "a question posed to a database or person to retrieve information",
        4,
        "request.n",
    );
    b.noun(
        "price_list.n",
        &["price list"],
        "the published list of the prices of goods offered for sale",
        1,
        "document.n",
    );

    // Natural part-whole links: a published work has a title, an author,
    // pages, and (for periodicals) volumes and issues. These are the
    // WordNet-style meronymy edges that bind the bibliographic domain.
    for whole in [
        "book.publication",
        "article.text",
        "journal.periodical",
        "proceedings.record",
        "magazine.periodical",
    ] {
        b.relate(whole, RelationKind::HasPart, "title.work");
    }
    b.relate("book.publication", RelationKind::HasPart, "page.sheet");
    b.relate(
        "book.publication",
        RelationKind::HasPart,
        "chapter.division",
    );
    b.relate("article.text", RelationKind::HasPart, "page.sheet");
    b.relate("article.text", RelationKind::HasPart, "abstract.summary");
    b.relate("article.text", RelationKind::PartOf, "journal.periodical");
    b.relate("article.text", RelationKind::PartOf, "proceedings.record");
    b.relate("issue.periodical", RelationKind::PartOf, "volume.series");
    b.relate("volume.series", RelationKind::PartOf, "journal.periodical");
    b.relate(
        "section.division",
        RelationKind::PartOf,
        "proceedings.record",
    );
    b.relate(
        "proceedings.record",
        RelationKind::PartOf,
        "conference.meeting",
    );
}
