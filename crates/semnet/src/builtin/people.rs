//! Person roles and the ambiguous named individuals of the paper's
//! Figure 1: *Kelly* (Grace, the actress and Princess of Monaco; Gene, the
//! dancer; Emmett, the circus clown) and *Stewart* (James, the actor;
//! Jackie, the racing driver; Martha, the homemaker celebrity), plus the
//! directors and performers the movie corpus mentions.

use crate::builder::NetworkBuilder;
use crate::model::RelationKind;

pub(super) fn register(b: &mut NetworkBuilder) {
    // ---- Performer roles --------------------------------------------------
    b.noun(
        "actor.n",
        &["actor", "histrion", "thespian", "role player"],
        "a theatrical performer who acts a role in the cast of a play or motion picture",
        48,
        "performer.n",
    );
    b.noun(
        "actress.n",
        &["actress"],
        "a female actor who performs a role in the cast of a play or motion picture",
        22,
        "actor.n",
    );
    b.noun(
        "dancer.n",
        &["dancer", "professional dancer"],
        "a performer who dances professionally on the stage",
        15,
        "performer.n",
    );
    b.noun(
        "singer.n",
        &["singer", "vocalist"],
        "a person who sings music, especially professionally",
        28,
        "musician.n",
    );
    b.noun(
        "musician.n",
        &["musician"],
        "an artist who plays or composes music as a profession",
        32,
        "artist.n",
    );
    b.noun(
        "clown.n",
        &["clown", "buffoon"],
        "a performer in a circus who does silly things to make people laugh",
        8,
        "performer.n",
    );
    b.noun(
        "comedian.n",
        &["comedian", "comic"],
        "a professional performer who tells jokes and performs comical acts",
        10,
        "performer.n",
    );
    b.noun(
        "athlete.n",
        &["athlete", "jock"],
        "a person trained to compete in sports",
        25,
        "person.n",
    );
    b.noun(
        "racing_driver.n",
        &["racing driver", "race driver"],
        "an athlete who drives racing cars in motor sport competition",
        4,
        "athlete.n",
    );

    // ---- Film-making roles -----------------------------------------------
    b.noun(
        "director.film",
        &["director", "film director", "filmmaker"],
        "the person who directs the making of a film or motion picture",
        30,
        "creator.n",
    );
    b.noun(
        "director.manager",
        &["director", "manager"],
        "a person who directs and controls the affairs of a business or institution",
        35,
        "leader.n",
    );
    b.noun(
        "director.conductor",
        &["director", "conductor", "music director"],
        "the person who leads a musical group or orchestra",
        6,
        "musician.n",
    );
    b.noun(
        "producer.film",
        &["producer"],
        "someone who finds the money and organizes the making of a film or show",
        12,
        "person.n",
    );
    b.noun(
        "photographer.n",
        &["photographer", "lensman"],
        "a person who takes photographs with a camera professionally",
        14,
        "artist.n",
    );
    b.noun(
        "royalty.n",
        &["royalty", "royal family"],
        "royal persons collectively; members of a royal family",
        10,
        "person.n",
    );
    b.noun(
        "princess.n",
        &["princess"],
        "a female member of a royal family other than the queen",
        12,
        "royalty.n",
    );

    // ---- The ambiguous surnames of Figure 1 --------------------------------
    b.instance("kelly.grace", &["kelly", "grace kelly", "grace"], "Grace Kelly, the American actress who starred in Rear Window and became Princess of Monaco", 6, "actress.n");
    b.relate("kelly.grace", RelationKind::InstanceHypernym, "princess.n");
    b.instance(
        "kelly.gene",
        &["kelly", "gene kelly", "gene"],
        "Gene Kelly, the American dancer and actor famous for musical films",
        4,
        "dancer.n",
    );
    b.instance(
        "kelly.emmett",
        &["kelly", "emmett kelly"],
        "Emmett Kelly, the American circus clown famous as the sad hobo Weary Willie",
        2,
        "clown.n",
    );

    b.instance(
        "stewart.james",
        &["stewart", "james stewart", "jimmy stewart", "james"],
        "James Stewart, the American actor who starred in the Hitchcock motion picture Rear Window",
        6,
        "actor.n",
    );
    b.instance(
        "stewart.jackie",
        &["stewart", "jackie stewart"],
        "Jackie Stewart, the Scottish racing driver and three-time world champion",
        3,
        "racing_driver.n",
    );
    b.instance(
        "stewart.martha",
        &["stewart", "martha stewart", "martha"],
        "Martha Stewart, the American businesswoman and television homemaker celebrity",
        3,
        "entertainer.n",
    );

    // ---- Directors and stars the movie corpus mentions ----------------------
    b.instance("hitchcock.alfred", &["hitchcock", "alfred hitchcock", "alfred"], "Alfred Hitchcock, the English film director famous for suspense motion pictures such as Rear Window and Psycho", 7, "director.film");
    b.instance(
        "welles.orson",
        &["welles", "orson welles", "orson"],
        "Orson Welles, the American film director and actor who made Citizen Kane",
        4,
        "director.film",
    );
    b.instance(
        "kubrick.stanley",
        &["kubrick", "stanley kubrick", "stanley"],
        "Stanley Kubrick, the American film director of 2001 A Space Odyssey",
        3,
        "director.film",
    );
    b.instance(
        "ford.john",
        &["ford", "john ford"],
        "John Ford, the American film director famous for western motion pictures",
        3,
        "director.film",
    );
    b.instance(
        "wilder.billy",
        &["wilder", "billy wilder", "billy"],
        "Billy Wilder, the Austrian-born American film director of comedies and dramas",
        3,
        "director.film",
    );
    b.instance(
        "grant.cary",
        &["grant", "cary grant", "cary"],
        "Cary Grant, the English-born American actor and leading man of classic motion pictures",
        5,
        "actor.n",
    );
    b.noun(
        "grant.money",
        &["grant", "subsidy"],
        "a sum of money given by a government or organization for a particular purpose",
        18,
        "monetary_value.n",
    );
    b.verb(
        "grant.v",
        &["grant", "allow"],
        "let have; give permission or a right formally",
        25,
        "give.v",
    );
    b.instance(
        "bergman.ingrid",
        &["bergman", "ingrid bergman", "ingrid"],
        "Ingrid Bergman, the Swedish actress who starred in Casablanca and Notorious",
        4,
        "actress.n",
    );
    b.instance(
        "bogart.humphrey",
        &["bogart", "humphrey bogart", "humphrey"],
        "Humphrey Bogart, the American actor who starred in Casablanca and The Maltese Falcon",
        4,
        "actor.n",
    );
    b.instance(
        "hepburn.audrey",
        &["hepburn", "audrey hepburn", "audrey"],
        "Audrey Hepburn, the Belgian-born actress who starred in Roman Holiday",
        4,
        "actress.n",
    );
    b.instance(
        "monroe.marilyn",
        &["monroe", "marilyn monroe", "marilyn"],
        "Marilyn Monroe, the American actress and film star of the 1950s",
        4,
        "actress.n",
    );
    b.instance("shakespeare.william", &["shakespeare", "william shakespeare", "william"], "William Shakespeare, the English poet and dramatist who wrote tragedies, comedies and histories for the stage", 9, "dramatist.n");
    b.noun(
        "dramatist.n",
        &["dramatist", "playwright"],
        "a writer who composes plays and other works for the theater",
        8,
        "writer.n",
    );
    b.noun(
        "poet.n",
        &["poet"],
        "a writer who composes verse and poems",
        14,
        "writer.n",
    );
    b.relate(
        "shakespeare.william",
        RelationKind::InstanceHypernym,
        "poet.n",
    );

    // ---- Verbs used by roles above ------------------------------------------
    b.verb(
        "give.v",
        &["give"],
        "transfer possession of something to someone",
        120,
        "act.deed",
    );
    b.verb(
        "perform.v",
        &["perform", "execute", "do"],
        "carry out an action or piece of work; give a performance on stage",
        60,
        "act.deed",
    );
    b.verb(
        "create.v",
        &["create", "make"],
        "bring into existence; produce through artistic effort",
        75,
        "act.deed",
    );
    b.verb(
        "communicate.v",
        &["communicate", "convey"],
        "transmit information, thoughts, or feelings to someone",
        40,
        "act.deed",
    );

    // ---- Family and relationship nouns (personnel, club, Shakespeare) ------
    b.noun(
        "relative.n",
        &["relative", "relation"],
        "a person related by blood or marriage to another",
        30,
        "person.n",
    );
    b.noun(
        "parent.n",
        &["parent"],
        "a father or mother; one who begets or raises a child",
        55,
        "relative.n",
    );
    b.noun(
        "father.n",
        &["father", "male parent", "dad"],
        "a male parent of a child",
        90,
        "parent.n",
    );
    b.noun(
        "mother.n",
        &["mother", "female parent", "mom"],
        "a female parent of a child",
        95,
        "parent.n",
    );
    b.noun(
        "son.n",
        &["son", "boy"],
        "a male human offspring; a person's male child",
        70,
        "relative.n",
    );
    b.noun(
        "daughter.n",
        &["daughter", "girl"],
        "a female human offspring; a person's female child",
        65,
        "relative.n",
    );
    b.noun(
        "brother.n",
        &["brother"],
        "a male with the same parents as someone else",
        60,
        "relative.n",
    );
    b.noun(
        "sister.n",
        &["sister"],
        "a female with the same parents as someone else",
        55,
        "relative.n",
    );
    b.noun(
        "husband.n",
        &["husband", "hubby"],
        "a married man; a woman's partner in marriage",
        45,
        "relative.n",
    );
    b.noun(
        "wife.n",
        &["wife"],
        "a married woman; a man's partner in marriage",
        55,
        "relative.n",
    );
    b.noun(
        "uncle.n",
        &["uncle"],
        "the brother of your father or mother",
        20,
        "relative.n",
    );
    b.noun(
        "cousin.n",
        &["cousin"],
        "the child of your aunt or uncle",
        18,
        "relative.n",
    );
    b.noun(
        "friend.n",
        &["friend"],
        "a person you know well and regard with affection and trust",
        85,
        "person.n",
    );
    b.noun(
        "neighbor.n",
        &["neighbor", "neighbour"],
        "a person who lives or is located near another",
        30,
        "person.n",
    );
    b.noun(
        "enemy.n",
        &["enemy", "foe"],
        "a personal opponent who feels hatred toward you",
        25,
        "person.n",
    );
    b.noun(
        "guest.n",
        &["guest", "visitor"],
        "a visitor to whom hospitality is extended",
        22,
        "person.n",
    );
    b.noun(
        "servant.n",
        &["servant", "retainer"],
        "a person working in the service of another, especially in a household",
        28,
        "worker.n",
    );
    b.noun(
        "messenger.n",
        &["messenger", "courier"],
        "a person who carries a message or is employed to deliver messages",
        12,
        "worker.n",
    );
    b.noun(
        "soldier.n",
        &["soldier"],
        "an enlisted person who serves in an army in battle",
        48,
        "person.n",
    );
    b.noun(
        "officer.military",
        &["officer", "military officer"],
        "a soldier who holds a position of authority in the armed forces",
        30,
        "soldier.n",
    );
    b.noun(
        "captain.n",
        &["captain"],
        "an officer who commands a military unit or a ship",
        25,
        "officer.military",
    );
    b.noun(
        "spy.person",
        &["spy", "undercover agent"],
        "a secret agent employed to watch others and obtain secret information",
        10,
        "person.n",
    );
    b.verb(
        "spy.v",
        &["spy", "sight"],
        "watch secretly, as a detective does; catch sight of",
        8,
        "act.deed",
    );
}
