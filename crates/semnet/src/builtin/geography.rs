//! Geographic and address vocabulary: the `personnel`/`club` datasets'
//! address blocks (street, city, state, zip, country) and the places the
//! movie and commerce corpora mention.

use crate::builder::NetworkBuilder;
use crate::model::RelationKind;

pub(super) fn register(b: &mut NetworkBuilder) {
    b.noun("country.nation", &["country", "nation", "state", "land"], "the territory occupied by a nation; a politically organized body of people under one government", 130, "district.n");
    b.noun(
        "country.rural",
        &["country", "countryside", "rural area"],
        "an area outside of cities and towns where people farm the land",
        30,
        "area.n",
    );
    b.noun(
        "city.n",
        &["city", "metropolis", "urban center"],
        "a large and densely populated urban area, incorporated as a municipality",
        110,
        "district.n",
    );
    b.noun(
        "town.n",
        &["town"],
        "an urban area with fixed boundaries, smaller than a city",
        60,
        "district.n",
    );
    b.noun(
        "village.n",
        &["village", "hamlet"],
        "a community of people smaller than a town, in a rural area",
        28,
        "district.n",
    );
    b.noun(
        "street.n",
        &["street"],
        "a thoroughfare with buildings on one or both sides, usually in a town or city",
        75,
        "thoroughfare.n",
    );
    b.noun(
        "thoroughfare.n",
        &["thoroughfare"],
        "a public road from one place to another",
        10,
        "road.n",
    );
    b.noun(
        "road.n",
        &["road", "route"],
        "an open way for travel or transportation between places",
        85,
        "artifact.n",
    );
    b.noun(
        "avenue.street",
        &["avenue", "boulevard"],
        "a wide street or thoroughfare, often lined with trees",
        15,
        "street.n",
    );
    b.noun(
        "avenue.means",
        &["avenue"],
        "a line of approach; a way of reaching or achieving something",
        8,
        "means.n",
    );
    b.noun(
        "means.n",
        &["means", "way"],
        "how a result is obtained or an end is achieved",
        40,
        "act.deed",
    );
    b.noun("address.location", &["address"], "the place where a person or organization can be found or communicated with; written directions for finding a location", 50, "point.location");
    b.noun(
        "address.speech",
        &["address", "speech"],
        "a formal spoken communication delivered to an audience",
        30,
        "speech.communication",
    );
    b.noun(
        "address.computer",
        &["address", "computer address", "url"],
        "a sign or code that identifies where information is stored in a computer network",
        12,
        "signal.n",
    );
    b.verb(
        "address.v",
        &["address", "speak to"],
        "speak to someone formally or direct a communication at",
        20,
        "communicate.v",
    );
    b.noun(
        "zip.code",
        &["zip", "zip code", "postcode", "postal code"],
        "a code of letters and digits added to a postal address to aid the sorting of mail",
        8,
        "signal.n",
    );
    b.verb(
        "zip.v",
        &["zip", "speed"],
        "move very fast with energy",
        5,
        "act.deed",
    );
    b.noun(
        "zip.energy",
        &["zip", "energy", "vigor"],
        "forceful liveliness and vigorous exertion",
        4,
        "trait.n",
    );
    b.noun(
        "continent.n",
        &["continent"],
        "one of the large landmasses of the earth",
        20,
        "region.n",
    );
    b.noun(
        "island.n",
        &["island"],
        "a land mass surrounded by water, smaller than a continent",
        25,
        "region.n",
    );
    b.noun(
        "mountain.n",
        &["mountain", "mount"],
        "a land mass that projects well above its surroundings, higher than a hill",
        35,
        "natural_object.n",
    );
    b.noun(
        "river.n",
        &["river"],
        "a large natural stream of water flowing toward the sea",
        40,
        "stream.n",
    );
    b.noun(
        "stream.n",
        &["stream", "watercourse"],
        "a natural body of running water flowing on the earth",
        22,
        "natural_object.n",
    );
    b.noun(
        "sea.n",
        &["sea"],
        "a division of an ocean; a large body of salt water",
        45,
        "natural_object.n",
    );
    b.noun(
        "capital.city",
        &["capital", "capital city"],
        "the city from which a country or region is governed",
        25,
        "city.n",
    );
    b.noun(
        "capital.money",
        &["capital", "working capital"],
        "wealth in the form of money or assets available for producing more wealth",
        30,
        "asset.n",
    );
    b.noun(
        "capital.letter",
        &["capital", "capital letter", "uppercase"],
        "one of the large alphabetic letters used at the beginning of sentences and names",
        6,
        "character.letter",
    );
    b.noun(
        "character.letter",
        &["character", "letter", "grapheme"],
        "a written symbol used to represent speech in an alphabet",
        18,
        "written_communication.n",
    );

    // Named places used by the corpora.
    b.instance(
        "monaco.n",
        &["monaco"],
        "Monaco, the tiny principality on the Mediterranean coast ruled by a prince",
        3,
        "country.nation",
    );
    b.instance(
        "america.n",
        &["america", "usa", "united states"],
        "the United States of America, a nation in North America",
        40,
        "country.nation",
    );
    b.instance(
        "england.n",
        &["england"],
        "England, a country that is part of the United Kingdom",
        25,
        "country.nation",
    );
    b.instance(
        "france.n",
        &["france"],
        "France, a republic in Western Europe",
        22,
        "country.nation",
    );
    b.instance(
        "scotland.n",
        &["scotland"],
        "Scotland, a country in the north of the island of Great Britain",
        12,
        "country.nation",
    );
    b.instance(
        "denmark.n",
        &["denmark"],
        "Denmark, a kingdom in Northern Europe on the Jutland peninsula",
        8,
        "country.nation",
    );
    b.instance(
        "italy.n",
        &["italy"],
        "Italy, a republic in southern Europe shaped like a boot",
        18,
        "country.nation",
    );
    b.instance(
        "norway.n",
        &["norway"],
        "Norway, a kingdom in Northern Europe on the Scandinavian peninsula",
        8,
        "country.nation",
    );
    b.instance("hollywood.n", &["hollywood"], "Hollywood, the district of Los Angeles where the American motion picture industry is centered", 8, "district.n");
    b.instance(
        "rome.n",
        &["rome"],
        "Rome, the capital of Italy and ancient seat of an empire",
        15,
        "capital.city",
    );
    b.instance(
        "london.n",
        &["london"],
        "London, the capital of England on the Thames river",
        20,
        "capital.city",
    );
    b.instance(
        "paris.city",
        &["paris"],
        "Paris, the capital of France on the Seine river",
        18,
        "capital.city",
    );
    b.instance(
        "paris.trojan",
        &["paris"],
        "Paris, the prince of Troy whose abduction of Helen began the Trojan war",
        2,
        "prince.n",
    );
    b.noun(
        "prince.n",
        &["prince"],
        "a male member of a royal family other than the king",
        14,
        "royalty.n",
    );
    b.relate("princess.n", RelationKind::Antonym, "prince.n");
    b.instance(
        "venice.n",
        &["venice"],
        "Venice, the Italian city built on islands and canals",
        6,
        "city.n",
    );
    b.instance(
        "verona.n",
        &["verona"],
        "Verona, the Italian city where Romeo and Juliet is set",
        3,
        "city.n",
    );
}
