//! The theater / drama domain: vocabulary of the Shakespeare dataset
//! (play, act, scene, speech, speaker, line, stage direction, …) plus the
//! Elizabethan content words the plays' text values use (king, queen,
//! crown, ghost, sword, love, death, …). Glosses share the words "play",
//! "stage" and "drama" so gloss overlap ties the domain together.

use crate::builder::NetworkBuilder;

pub(super) fn register(b: &mut NetworkBuilder) {
    // ---- play: the anchor word of the dataset -------------------------------
    b.noun("play.drama", &["play", "drama", "dramatic work", "stage play"], "a dramatic work written for performance by a cast of actors on a stage, as a play by Shakespeare", 20, "work.product");
    b.relate(
        "play.drama",
        crate::model::RelationKind::HasPart,
        "act.play-division",
    );
    b.relate(
        "play.drama",
        crate::model::RelationKind::HasPart,
        "cast.actors",
    );
    b.relate(
        "act.play-division",
        crate::model::RelationKind::HasPart,
        "scene.play-division",
    );
    b.relate(
        "scene.play-division",
        crate::model::RelationKind::HasPart,
        "speech.communication",
    );
    b.relate(
        "speech.communication",
        crate::model::RelationKind::HasPart,
        "line.text",
    );
    b.relate(
        "play.drama",
        crate::model::RelationKind::HasPart,
        "line.text",
    );
    b.relate("line.text", crate::model::RelationKind::PartOf, "poem.n");
    b.noun(
        "play.children",
        &["play", "child's play", "fun"],
        "the activity of children engaging in games for enjoyment",
        15,
        "activity.n",
    );
    b.noun(
        "play.maneuver",
        &["play"],
        "a planned maneuver or move in a game or sport",
        8,
        "action.n",
    );
    b.noun(
        "play.gambling",
        &["play", "gambling", "wagering"],
        "the act of playing for stakes in the hope of winning",
        4,
        "activity.n",
    );
    b.noun(
        "play.slack",
        &["play", "slack"],
        "the small movement or looseness available to a mechanical part",
        3,
        "attribute.n",
    );
    b.noun(
        "play.performance",
        &["play", "playing"],
        "the performance of a part or role in a drama or piece of music",
        6,
        "act.deed",
    );
    b.verb(
        "play.v-game",
        &["play"],
        "participate in games or a sport or engage in recreation",
        30,
        "act.deed",
    );
    b.verb(
        "play.v-music",
        &["play"],
        "perform music on an instrument",
        18,
        "perform.v",
    );
    b.verb(
        "play.v-act",
        &["play", "act"],
        "perform a role or part on the stage or in a motion picture",
        12,
        "perform.v",
    );
    b.verb(
        "play.v-pretend",
        &["play", "toy"],
        "behave in a playful or trifling way; engage in make-believe",
        8,
        "act.deed",
    );

    // ---- act ----------------------------------------------------------------
    b.noun("act.play-division", &["act"], "one of the principal divisions of a theatrical play or opera, made of scenes performed by actors on the stage", 10, "part.relation");
    b.noun(
        "act.law",
        &["act", "enactment", "statute"],
        "a legislative document that has been made law",
        12,
        "document.n",
    );
    b.noun(
        "act.routine",
        &["act", "routine", "number", "turn"],
        "a short theatrical performance that is part of a longer show",
        5,
        "performance.n",
    );
    b.verb(
        "act.v-behave",
        &["act", "behave", "do"],
        "behave in a certain manner or conduct oneself",
        25,
        "act.deed",
    );
    b.verb(
        "act.v-perform",
        &["act", "represent"],
        "play a theatrical role; pretend to have certain qualities",
        10,
        "perform.v",
    );
    // (act.deed in the upper ontology supplies the sixth sense of "act".)

    // ---- scene (film sense lives in movies.rs) --------------------------------
    b.noun("scene.play-division", &["scene"], "a subdivision of an act of a theatrical play in which actors speak their lines on a fixed setting of the stage", 9, "part.relation");
    b.noun(
        "scene.place",
        &["scene", "scene of action"],
        "the place where some action or event occurs, as the scene of the crime",
        10,
        "point.location",
    );
    b.noun(
        "scene.view",
        &["scene", "view", "vista"],
        "the visual percept of a region; a beautiful scene",
        8,
        "cognition.n",
    );
    b.noun(
        "scene.tantrum",
        &["scene", "fit of temper"],
        "a display of bad temper in public; she made a scene",
        3,
        "act.deed",
    );

    // ---- performance & stage vocabulary ---------------------------------------
    b.noun(
        "performance.n",
        &["performance", "public presentation"],
        "a dramatic or musical entertainment presented before an audience on a stage",
        14,
        "show.n",
    );
    b.noun(
        "stage.platform",
        &["stage"],
        "the raised platform in a theater on which actors perform a play",
        12,
        "structure.construction",
    );
    b.noun(
        "stage.phase",
        &["stage", "phase", "degree"],
        "a distinct period or step in a process of development",
        15,
        "state.condition",
    );
    b.noun(
        "stage.profession",
        &["stage", "the stage"],
        "the profession of acting in the theater",
        4,
        "occupation.n",
    );
    b.noun(
        "stage.coach",
        &["stage", "stagecoach"],
        "a horse-drawn carriage that carried passengers on a regular route",
        3,
        "vehicle.n",
    );
    b.verb(
        "stage.v",
        &["stage", "present", "produce"],
        "put a play on the stage; organize and carry out an event",
        6,
        "perform.v",
    );
    b.noun("stage_direction.n", &["stage direction", "stagedir"], "an instruction written into the script of a play directing the actors' movements on the stage", 3, "order.command");
    b.noun(
        "prologue.n",
        &["prologue", "prolog"],
        "the introductory lines spoken to the audience before a play begins",
        3,
        "speech.communication",
    );
    b.noun(
        "epilogue.n",
        &["epilogue", "epilog"],
        "the concluding lines addressed to the audience at the end of a play",
        2,
        "speech.communication",
    );
    b.noun(
        "speaker.person",
        &["speaker", "talker", "utterer"],
        "a person who speaks lines or delivers a speech, as the speaker of a line in a play",
        10,
        "person.n",
    );
    b.noun(
        "speaker.device",
        &["speaker", "loudspeaker"],
        "a device that converts electrical signals to audible sound",
        6,
        "device.n",
    );
    b.noun(
        "speaker.presiding",
        &["speaker", "the speaker"],
        "the presiding officer of a legislative assembly",
        4,
        "leader.n",
    );
    b.noun(
        "speech.faculty",
        &["speech", "speech faculty"],
        "the human faculty of uttering articulate sounds",
        8,
        "ability.n",
    );
    b.noun(
        "dialogue.n",
        &["dialogue", "dialog"],
        "the lines of conversation spoken between characters in a play or motion picture",
        8,
        "speech.communication",
    );
    b.noun(
        "monologue.n",
        &["monologue", "soliloquy"],
        "a long speech by one actor alone on the stage in a play",
        3,
        "speech.communication",
    );
    b.noun(
        "verse.line",
        &["verse", "verse line"],
        "a single line of metrical writing in a poem or play",
        5,
        "line.text",
    );
    b.noun(
        "verse.poetry",
        &["verse", "poetry", "rhyme"],
        "literature in metrical form; the writing of poems",
        6,
        "writing.written",
    );
    b.noun(
        "poem.n",
        &["poem", "verse form"],
        "a composition in verse written by a poet",
        10,
        "writing.written",
    );
    b.noun(
        "sonnet.n",
        &["sonnet"],
        "a fourteen-line verse poem with a fixed rhyme scheme, as the sonnets of Shakespeare",
        3,
        "poem.n",
    );
    b.noun(
        "tragedy.drama",
        &["tragedy"],
        "a serious play with an unhappy ending in which the protagonist is brought down",
        6,
        "drama.play",
    );
    b.noun(
        "tragedy.event",
        &["tragedy", "calamity", "disaster"],
        "an event resulting in great loss and misfortune",
        8,
        "happening.n",
    );
    b.noun(
        "history.record",
        &["history", "account", "chronicle"],
        "a written record of past events; a play dramatizing historical events",
        18,
        "writing.written",
    );
    b.noun(
        "history.study",
        &["history"],
        "the discipline that studies and records past events",
        10,
        "cognition.n",
    );
    b.noun(
        "history.past",
        &["history", "the past"],
        "the aggregate of past events considered as a whole",
        12,
        "time_period.n",
    );
    b.noun(
        "troupe.n",
        &["troupe", "company of actors"],
        "a company of theatrical performers who travel and act together on stage",
        3,
        "organization.n",
    );
    b.noun(
        "rehearsal.n",
        &["rehearsal", "practice session"],
        "a practice session in preparation for a public performance of a play",
        3,
        "activity.n",
    );
    b.noun(
        "costume.n",
        &["costume"],
        "the clothing worn by an actor to portray a character on stage",
        4,
        "clothing.n",
    );
    b.noun(
        "curtain.n",
        &["curtain", "drape"],
        "the hanging cloth that screens the stage from the audience in a theater",
        4,
        "furniture.n",
    );
    b.noun(
        "playbill.n",
        &["playbill", "program"],
        "a printed sheet listing the cast and acts of a theatrical performance",
        2,
        "document.n",
    );
    b.noun(
        "induction.opening",
        &["induction", "induct"],
        "a formal opening scene that frames an old play",
        2,
        "part.relation",
    );

    // ---- house (the Shakespeare corpus uses it both ways) ---------------------
    b.noun(
        "house.dwelling",
        &["house", "dwelling", "home"],
        "a building in which a family lives",
        120,
        "building.n",
    );
    b.noun(
        "house.family",
        &["house", "royal house", "dynasty"],
        "an aristocratic family line or royal dynasty, as the house of York",
        8,
        "family.lineage",
    );
    // (theater.building carries the "house" playhouse sense in movies.rs.)

    // ---- Elizabethan content words --------------------------------------------
    b.noun(
        "king.monarch",
        &["king", "male monarch"],
        "a male sovereign ruler of a kingdom",
        40,
        "royalty.n",
    );
    b.noun(
        "king.chess",
        &["king"],
        "the most important chess piece, which must be protected from checkmate",
        4,
        "game_piece.n",
    );
    b.noun(
        "king.card",
        &["king"],
        "a playing card bearing the picture of a king",
        3,
        "game_piece.n",
    );
    b.noun(
        "game_piece.n",
        &["game piece", "piece", "man"],
        "a counter or figure moved in playing a board game or card game",
        5,
        "game_equipment.n",
    );
    b.noun(
        "game_equipment.n",
        &["game equipment"],
        "equipment designed for playing a game",
        4,
        "equipment.n",
    );
    b.noun(
        "queen.monarch",
        &["queen", "female monarch"],
        "a female sovereign ruler of a kingdom, or the wife of a king",
        30,
        "royalty.n",
    );
    b.noun(
        "queen.chess",
        &["queen"],
        "the most powerful chess piece, able to move any distance",
        3,
        "game_piece.n",
    );
    b.noun(
        "queen.card",
        &["queen"],
        "a playing card bearing the picture of a queen",
        2,
        "game_piece.n",
    );
    b.noun(
        "queen.bee",
        &["queen", "queen bee"],
        "the fertile female bee that lays all the eggs in a hive",
        3,
        "animal.n",
    );
    b.noun(
        "lord.noble",
        &["lord", "noble", "nobleman"],
        "a man of noble rank in a kingdom",
        18,
        "royalty.n",
    );
    b.noun(
        "lord.master",
        &["lord", "master", "overlord"],
        "a person who has general authority over others",
        10,
        "leader.n",
    );
    b.noun(
        "lady.noble",
        &["lady", "noblewoman", "peeress"],
        "a woman of noble rank or refinement in a kingdom",
        15,
        "royalty.n",
    );
    b.noun(
        "lady.woman",
        &["lady"],
        "a polite name for any woman",
        25,
        "woman.female",
    );
    b.noun(
        "duke.n",
        &["duke"],
        "a nobleman of the highest hereditary rank below a prince",
        8,
        "royalty.n",
    );
    b.noun(
        "crown.headgear",
        &["crown", "diadem"],
        "the ornamental jeweled headdress worn by a king or queen as a symbol of sovereignty",
        8,
        "clothing.n",
    );
    b.noun(
        "crown.monarchy",
        &["crown", "the crown"],
        "the sovereign power of a monarchy; the authority of a king",
        6,
        "state.government",
    );
    b.noun(
        "crown.top",
        &["crown", "peak", "summit"],
        "the top or highest part of something, as of the head or a hill",
        5,
        "part.relation",
    );
    b.noun(
        "crown.coin",
        &["crown"],
        "an old British coin worth five shillings",
        2,
        "possession.n",
    );
    b.noun(
        "throne.seat",
        &["throne"],
        "the ornate ceremonial chair of a king or queen",
        5,
        "furniture.n",
    );
    b.noun(
        "throne.power",
        &["throne", "sovereignty"],
        "the position and power of a sovereign ruler",
        4,
        "occupation.n",
    );
    b.noun(
        "kingdom.realm",
        &["kingdom", "realm"],
        "the domain and territory ruled by a king or queen",
        10,
        "district.n",
    );
    b.noun(
        "kingdom.taxonomy",
        &["kingdom"],
        "the highest taxonomic group into which organisms are classified",
        4,
        "group.n",
    );
    b.noun("castle.building", &["castle"], "a large fortified building with towers and walls where a king or queen held court with the lords and ladies of the kingdom", 8, "building.n");
    b.noun(
        "castle.chess",
        &["castle", "rook"],
        "the chess piece that can move any distance along ranks and files",
        1,
        "game_piece.n",
    );
    b.noun(
        "ghost.spirit",
        &["ghost", "specter", "apparition", "shade"],
        "the visible disembodied spirit of a dead person that haunts a place",
        8,
        "character.role",
    );
    b.noun(
        "ghost.writer",
        &["ghost", "ghostwriter"],
        "a writer who gives the credit of authorship to someone else",
        2,
        "writer.n",
    );
    b.noun(
        "ghost.trace",
        &["ghost", "trace", "glimmer"],
        "a barely discernible trace or suggestion of something",
        3,
        "indication.n",
    );
    b.noun(
        "sword.n",
        &["sword", "blade", "steel"],
        "a hand weapon with a long metal blade and a hilt, used in battle or a duel",
        12,
        "weapon.n",
    );
    b.noun(
        "dagger.knife",
        &["dagger", "sticker"],
        "a short knife with a pointed blade used as a weapon for stabbing",
        5,
        "weapon.n",
    );
    b.noun(
        "dagger.mark",
        &["dagger", "obelisk"],
        "a printed character used to mark a reference in text",
        1,
        "character.letter",
    );
    b.noun(
        "battle.fight",
        &["battle", "conflict", "engagement"],
        "a hostile fight between armies in a war",
        20,
        "action.n",
    );
    b.noun(
        "battle.struggle",
        &["battle", "struggle"],
        "an energetic attempt to achieve something against opposition",
        8,
        "activity.n",
    );
    b.noun(
        "war.n",
        &["war", "warfare"],
        "the waging of an armed conflict against an enemy nation",
        30,
        "action.n",
    );
    b.noun(
        "duel.n",
        &["duel", "affaire d'honneur"],
        "a prearranged fight with deadly weapons between two people to settle a quarrel of honor",
        3,
        "action.n",
    );
    b.noun(
        "love.emotion",
        &["love", "passion"],
        "a strong positive emotion of deep affection for a person",
        45,
        "emotion.n",
    );
    b.noun(
        "love.person",
        &["love", "beloved", "dearest", "darling"],
        "a beloved person; the object of one's love",
        12,
        "person.n",
    );
    b.noun(
        "love.score",
        &["love"],
        "a score of zero in tennis",
        2,
        "point.score",
    );
    b.verb(
        "love.v",
        &["love", "adore"],
        "have a great affection for a person or thing",
        35,
        "act.deed",
    );
    b.noun(
        "death.event",
        &["death", "decease", "dying"],
        "the event of a life ending; the permanent end of a person",
        30,
        "happening.n",
    );
    b.noun(
        "death.state",
        &["death"],
        "the state of being no longer alive after life has ended",
        12,
        "state.condition",
    );
    b.noun(
        "death.personified",
        &["death", "the grim reaper"],
        "the personification of death as a hooded figure with a scythe",
        3,
        "character.role",
    );
    b.noun(
        "night.period",
        &["night", "nighttime", "dark"],
        "the time between sunset and sunrise when it is dark outside",
        40,
        "time_period.n",
    );
    b.noun(
        "night.darkness",
        &["night"],
        "the darkness of night as a condition; a figure cloaked in night",
        8,
        "state.condition",
    );
    b.noun(
        "heart.organ",
        &["heart", "pump", "ticker"],
        "the hollow muscular organ that pumps blood through the body",
        30,
        "organ.body",
    );
    b.noun(
        "heart.courage",
        &["heart", "mettle", "spirit", "courage"],
        "the courage to carry on; he lost heart",
        10,
        "trait.n",
    );
    b.noun(
        "heart.center",
        &["heart", "center", "middle"],
        "the central or innermost area of something, as the heart of the city",
        12,
        "point.location",
    );
    b.noun(
        "heart.card",
        &["heart"],
        "a playing card in the suit marked with red hearts",
        3,
        "game_piece.n",
    );
    b.noun(
        "blood.fluid",
        &["blood"],
        "the red fluid pumped by the heart through the body of a person or animal",
        25,
        "fluid.n",
    );
    b.noun(
        "blood.kinship",
        &["blood", "descent", "blood line"],
        "the descent of persons from a common ancestor; ties of blood",
        6,
        "kin.n",
    );
    b.noun(
        "honor.respect",
        &["honor", "honour", "laurels"],
        "the state of being respected and esteemed for worthy conduct",
        12,
        "state.condition",
    );
    b.noun(
        "honor.woman",
        &["honor", "purity"],
        "a woman's virtue or chastity in older usage",
        2,
        "trait.n",
    );
    b.verb(
        "honor.v",
        &["honor", "honour", "reward"],
        "bestow respect or an award upon a person",
        8,
        "act.deed",
    );
    b.noun(
        "murder.n",
        &["murder", "slaying", "execution"],
        "the unlawful premeditated killing of a person",
        15,
        "action.n",
    );
    b.verb(
        "murder.v",
        &["murder", "slay"],
        "kill a person unlawfully and with premeditation",
        10,
        "act.deed",
    );
    b.noun(
        "poison.substance",
        &["poison", "toxin", "venom"],
        "a substance that causes injury, illness or death of an organism",
        8,
        "chemical.n",
    );
    b.verb(
        "poison.v",
        &["poison"],
        "administer poison to a person or spoil with poison",
        5,
        "act.deed",
    );
    b.noun(
        "revenge.n",
        &["revenge", "vengeance", "retribution"],
        "action taken in return for an injury or offense",
        8,
        "action.n",
    );
    b.noun(
        "madness.insanity",
        &["madness", "lunacy", "insanity"],
        "the quality of being rash and foolish; mental derangement",
        6,
        "state.condition",
    );
    b.noun(
        "madness.fury",
        &["madness", "rabidity"],
        "a feeling of intense anger or fury",
        3,
        "emotion.n",
    );
    b.noun(
        "witch.n",
        &["witch", "enchantress"],
        "a woman believed to practice magic and sorcery",
        6,
        "person.n",
    );
    b.noun(
        "prophecy.n",
        &["prophecy", "prediction", "divination"],
        "a prediction uttered under divine inspiration of what will happen",
        4,
        "statement.n",
    );
    b.noun(
        "fate.n",
        &["fate", "destiny", "doom"],
        "the supposed force that predetermines events; an inevitable ending",
        10,
        "cognition.n",
    );
    b.noun(
        "storm.weather",
        &["storm", "tempest"],
        "a violent weather condition with winds and rain or snow",
        15,
        "happening.n",
    );
    b.noun(
        "storm.outburst",
        &["storm"],
        "a violent commotion or emotional disturbance, as a storm of protest",
        4,
        "happening.n",
    );
    b.noun(
        "exile.state",
        &["exile", "banishment"],
        "the state of being expelled from one's native country",
        4,
        "state.condition",
    );
    b.noun(
        "exile.person",
        &["exile", "expatriate"],
        "a person banished and voluntarily absent from their country",
        3,
        "person.n",
    );
    b.verb(
        "banish.v",
        &["banish", "exile", "expel"],
        "expel a person from their country as a punishment",
        4,
        "act.deed",
    );
    b.noun(
        "grave.burial",
        &["grave", "tomb"],
        "a place for the burial of a dead body, marked by a stone",
        8,
        "point.location",
    );
    b.adjective(
        "grave.serious",
        &["grave", "solemn", "weighty"],
        "dignified, serious and somber in character",
        6,
    );
    b.noun(
        "fool.jester",
        &["fool", "jester", "motley fool"],
        "a professional clown formerly kept by a king or noble for entertainment",
        4,
        "clown.n",
    );
    b.noun(
        "fool.person",
        &["fool", "simpleton"],
        "a person who lacks good judgment",
        10,
        "person.n",
    );
    b.noun(
        "banquet.n",
        &["banquet", "feast"],
        "a ceremonial dinner party for many guests in a great hall",
        5,
        "social_event.n",
    );
    b.noun(
        "masque.n",
        &["masque", "mask"],
        "a courtly dramatic entertainment with masks, music and dancing",
        2,
        "performance.n",
    );
}

/// Additional senses of the common Elizabethan words — WordNet gives these
/// everyday words many readings (heart 10, crown 12, blood 5, …), which is
/// precisely what makes the Shakespeare collection the paper's
/// high-ambiguity group. Registered separately for readability.
pub(super) fn register_extra_senses(b: &mut NetworkBuilder) {
    b.noun(
        "heart.essence",
        &["heart", "essence", "gist"],
        "the choicest or most vital part of some idea or experience; the heart of the matter",
        6,
        "content.cognition",
    );
    b.noun(
        "night.evening",
        &["night", "evening"],
        "the period spent out at an entertainment in the evening, as a night at the opera",
        6,
        "time_period.n",
    );
    b.noun(
        "blood.temperament",
        &["blood"],
        "temperament or disposition, as in hot blood",
        3,
        "trait.n",
    );
    b.noun(
        "blood.people",
        &["blood", "new blood"],
        "people viewed as members bringing fresh qualities to a group",
        2,
        "social_group.n",
    );
    b.noun(
        "grave.accent",
        &["grave", "grave accent"],
        "a mark placed above a vowel to indicate pronunciation",
        1,
        "character.letter",
    );
    b.verb(
        "grave.v",
        &["grave", "engrave", "inscribe"],
        "carve or cut words or a design into a surface",
        2,
        "create.v",
    );
    b.noun(
        "storm.assault",
        &["storm", "violent assault"],
        "a direct and violent military assault on a stronghold",
        2,
        "battle.fight",
    );
    b.verb(
        "storm.v",
        &["storm", "rage"],
        "attack by storm or behave violently, as if in a great rage",
        3,
        "act.deed",
    );
    b.noun(
        "soul.person",
        &["soul"],
        "a single human being; not a soul was in sight",
        5,
        "person.n",
    );
    b.noun(
        "soul.essence",
        &["soul", "soulfulness"],
        "deep feeling or emotional intensity; the essential quality of something",
        3,
        "feeling.n",
    );
    b.noun(
        "fate.outcome",
        &["fate", "destiny"],
        "the ultimate outcome that befalls a person; his fate was sealed",
        5,
        "happening.n",
    );
    b.noun(
        "fates.goddesses",
        &["fate", "the fates"],
        "the three goddesses of destiny who spin and cut the thread of life",
        1,
        "character.role",
    );
    b.noun(
        "crown.tooth",
        &["crown"],
        "the part of a tooth above the gum, or an artificial cap that replaces it",
        2,
        "body_part.n",
    );
    b.noun(
        "crown.wreath",
        &["crown", "laurel wreath", "garland"],
        "a wreath worn on the head as a mark of victory or honor",
        2,
        "clothing.n",
    );
    b.noun(
        "king.magnate",
        &["king", "magnate", "baron"],
        "a very wealthy man with control of a business, as an oil king",
        3,
        "leader.n",
    );
    b.noun(
        "kingdom.domain",
        &["kingdom", "land", "domain"],
        "a domain in which something is dominant, as the kingdom of the imagination",
        3,
        "cognition.n",
    );
    b.noun(
        "castle.mansion",
        &["castle", "palace"],
        "a large and stately mansion or residence",
        3,
        "building.n",
    );
    b.noun(
        "witch.hag",
        &["witch", "hag", "crone"],
        "an ugly and unpleasant old woman",
        2,
        "woman.female",
    );
    b.noun(
        "prophecy.vocation",
        &["prophecy", "prophesying"],
        "the act or vocation of speaking as a prophet",
        1,
        "communication.n",
    );
    b.noun(
        "war.struggle",
        &["war", "crusade", "campaign"],
        "a concerted organized struggle against something, as a war on poverty",
        6,
        "activity.n",
    );
    b.noun(
        "friend.supporter",
        &["friend", "supporter", "patron"],
        "a person who backs or supports a cause or institution, as a friend of the arts",
        5,
        "person.n",
    );
    b.noun(
        "friend.quaker",
        &["friend", "quaker"],
        "a member of the Religious Society of Friends",
        1,
        "person.n",
    );
    b.noun(
        "enemy.military",
        &["enemy", "the enemy"],
        "the opposing military force in a war",
        5,
        "unit.organization",
    );
    b.noun(
        "father.founder",
        &["father", "founding father", "founder"],
        "a person who founds or establishes some institution, as the father of the nation",
        4,
        "person.n",
    );
    b.noun(
        "father.priest",
        &["father", "padre"],
        "a title used to address a priest",
        3,
        "person.n",
    );
    b.noun(
        "mother.superior",
        &["mother", "mother superior", "abbess"],
        "the head nun of a religious community of women",
        1,
        "leader.n",
    );
    b.noun(
        "mother.origin",
        &["mother"],
        "a source or origin from which something springs, as necessity is the mother of invention",
        2,
        "point.idea",
    );
    b.noun(
        "brother.monk",
        &["brother", "monk", "friar"],
        "a male member of a religious order",
        2,
        "person.n",
    );
    b.noun(
        "brother.comrade",
        &["brother", "comrade"],
        "a male person sharing a common bond or cause with others",
        3,
        "person.n",
    );
    b.noun(
        "soldier.ant",
        &["soldier", "soldier ant"],
        "a worker ant with a large head that defends the colony",
        1,
        "animal.n",
    );
    b.noun(
        "captain.sports",
        &["captain"],
        "the leader of a sports team",
        3,
        "athlete.n",
    );
    b.noun(
        "love.sweetheart-address",
        &["love", "dear"],
        "an affectionate term of address for a beloved person",
        3,
        "word.n",
    );
    b.noun(
        "sword.figurative",
        &["sword", "blade of war"],
        "the use of armed force as an instrument of power, as living by the sword",
        1,
        "ability.n",
    );
    b.noun(
        "queen.regnant",
        &["queen"],
        "something personified as the finest of its kind, as the rose is the queen of flowers",
        1,
        "quality.n",
    );
    b.noun(
        "daughter.product",
        &["daughter"],
        "a thing regarded as descended from something else, as a daughter language",
        1,
        "abstraction.n",
    );
    b.noun(
        "son.native",
        &["son", "native son"],
        "a man regarded as the product of a place or movement, as a favorite son of the city",
        2,
        "person.n",
    );
    b.noun(
        "honor.award",
        &["honor", "honour", "accolade"],
        "a tangible symbol of respect awarded for achievement",
        3,
        "award.n",
    );
    b.noun(
        "revenge.sports",
        &["revenge"],
        "a win over an opponent who beat you in a previous contest",
        1,
        "happening.n",
    );
    b.noun(
        "poison.influence",
        &["poison"],
        "anything that corrupts or destroys, as the poison of jealousy",
        2,
        "cognition.n",
    );
    b.verb(
        "murder.v-mangle",
        &["murder", "mangle", "butcher"],
        "spoil something by poor performance, as to murder a song",
        1,
        "act.deed",
    );
    b.noun(
        "messenger.biology",
        &["messenger", "messenger molecule"],
        "a molecule that carries information between cells",
        1,
        "chemical.n",
    );
    b.noun(
        "servant.figurative",
        &["servant"],
        "a person or thing in the service of something, as a servant of the truth",
        2,
        "person.n",
    );
}
