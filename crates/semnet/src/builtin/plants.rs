//! The horticulture domain: vocabulary of the W3Schools plant-catalog
//! dataset (plant, common, botanical, zone, light, price, availability, …)
//! and the garden plants it lists. Glosses share "plant", "flower", "grow"
//! and "garden" so gloss overlap binds the domain.

use crate::builder::NetworkBuilder;

pub(super) fn register(b: &mut NetworkBuilder) {
    // ---- plant: the remaining senses (organism lives in upper.rs) -------------
    b.noun(
        "plant.factory",
        &["plant", "works", "industrial plant"],
        "a building or factory where an industrial process takes place",
        15,
        "building.n",
    );
    b.noun(
        "plant.spy",
        &["plant"],
        "a person placed secretly in a group to spy on or influence its members",
        2,
        "person.n",
    );
    b.verb(
        "plant.v",
        &["plant", "set"],
        "put a seed, bulb or young plant in the ground so that it will grow in a garden",
        8,
        "act.deed",
    );

    // ---- plant anatomy ----------------------------------------------------------
    b.noun(
        "plant_part.n",
        &["plant part", "plant structure"],
        "any part of a plant or fungus",
        5,
        "natural_object.n",
    );
    b.noun(
        "flower.bloom",
        &["flower", "bloom", "blossom"],
        "the colorful reproductive part of a plant; a plant grown in a garden for its blooms",
        18,
        "plant_part.n",
    );
    b.noun(
        "flower.plant",
        &["flower"],
        "a plant cultivated in a garden for its blooms or blossoms",
        10,
        "plant.organism",
    );
    b.noun(
        "flower.best",
        &["flower", "prime", "peak"],
        "the period of greatest vigor or prosperity, as the flower of youth",
        2,
        "time_period.n",
    );
    b.noun(
        "seed.n",
        &["seed"],
        "the small hard part of a plant from which a new plant can grow when planted in soil",
        8,
        "plant_part.n",
    );
    b.noun(
        "seed.player",
        &["seed", "seeded player"],
        "a ranked player scheduled in a tournament draw",
        2,
        "athlete.n",
    );
    b.noun(
        "root.plant",
        &["root"],
        "the underground part of a plant that absorbs water and nourishment from the soil",
        10,
        "plant_part.n",
    );
    b.noun(
        "root.origin",
        &["root", "origin", "source"],
        "the place or thing from which something develops, as the root of the problem",
        8,
        "point.idea",
    );
    b.noun(
        "root.math",
        &["root"],
        "a number that when multiplied by itself gives a specified quantity",
        3,
        "number.n",
    );
    b.noun(
        "root.word",
        &["root", "root word", "base"],
        "the form of a word after removing all affixes",
        2,
        "word.n",
    );
    b.noun(
        "leaf.plant",
        &["leaf", "leafage", "foliage"],
        "the flat green part of a plant that grows from a stem and makes food by light",
        12,
        "plant_part.n",
    );
    b.noun(
        "leaf.page",
        &["leaf", "folio"],
        "a sheet of any written or printed material, as a leaf of a book",
        3,
        "part.relation",
    );
    b.noun(
        "stem.plant",
        &["stem", "stalk"],
        "the slender part of a plant that bears the leaves and flowers above the soil",
        6,
        "plant_part.n",
    );
    b.noun(
        "stem.word",
        &["stem", "word stem"],
        "the base part of a word to which affixes are attached",
        2,
        "word.n",
    );
    b.noun(
        "stem.glass",
        &["stem"],
        "the slender upright support of a wine glass",
        1,
        "part.relation",
    );
    b.noun(
        "bulb.plant",
        &["bulb"],
        "the rounded underground storage part from which plants such as tulips grow in spring",
        4,
        "plant_part.n",
    );
    b.noun(
        "bulb.light",
        &["bulb", "light bulb", "lightbulb"],
        "the glass lamp that gives light when electricity passes through it",
        5,
        "light.lamp",
    );
    b.noun(
        "branch.tree",
        &["branch", "limb", "bough"],
        "the woody division growing from the trunk of a tree plant",
        8,
        "plant_part.n",
    );
    b.noun(
        "branch.division",
        &["branch", "subdivision", "arm"],
        "a division of an organization such as a company or of a field of study",
        8,
        "unit.organization",
    );
    b.noun(
        "branch.stream",
        &["branch", "fork"],
        "a stream or road that divides from the main one",
        3,
        "stream.n",
    );

    // ---- kinds of garden plants ---------------------------------------------------
    b.noun(
        "tree.plant",
        &["tree"],
        "a tall perennial woody plant with a single trunk, branches and leaves",
        30,
        "plant.organism",
    );
    b.noun(
        "tree.diagram",
        &["tree", "tree diagram"],
        "a figure that branches from a single root node, used to show structure",
        4,
        "picture.image",
    );
    b.noun(
        "shrub.n",
        &["shrub", "bush"],
        "a low woody perennial plant with several stems growing in a garden or the wild",
        6,
        "plant.organism",
    );
    b.noun(
        "herb.plant",
        &["herb", "herbaceous plant"],
        "a plant with a soft stem that dies down after flowering, often grown in gardens",
        5,
        "plant.organism",
    );
    b.noun(
        "herb.seasoning",
        &["herb"],
        "an aromatic plant part used to season a dish of food",
        4,
        "ingredient.food",
    );
    b.noun(
        "grass.plant",
        &["grass"],
        "a green plant with narrow leaves that covers lawns and meadows",
        12,
        "plant.organism",
    );
    b.noun(
        "fern.n",
        &["fern"],
        "a flowerless green plant with feathery fronds that grows in moist shade",
        3,
        "plant.organism",
    );
    b.noun(
        "moss.n",
        &["moss"],
        "a tiny green plant that grows in dense mats in moist shady ground",
        3,
        "plant.organism",
    );
    b.noun(
        "rose.flower",
        &["rose"],
        "a prickly garden shrub bearing fragrant flowers in many colors",
        10,
        "shrub.n",
    );
    b.noun(
        "rose.color",
        &["rose", "rosiness"],
        "a light pink color like that of a rose flower",
        3,
        "color.n",
    );
    b.noun(
        "rose.wine",
        &["rose", "blush wine", "pink wine"],
        "a pink wine made from red grapes",
        1,
        "beverage.n",
    );
    b.noun(
        "violet.flower",
        &["violet"],
        "a small low garden plant bearing purple or white flowers in spring",
        4,
        "flower.plant",
    );
    b.noun(
        "violet.color",
        &["violet", "purple"],
        "a color between blue and red; the color of a violet flower",
        3,
        "color.n",
    );
    b.noun(
        "lily.flower",
        &["lily"],
        "a garden plant growing from a bulb with large trumpet-shaped flowers",
        4,
        "flower.plant",
    );
    b.noun(
        "daisy.n",
        &["daisy"],
        "a garden flower with white petals around a yellow center",
        3,
        "flower.plant",
    );
    b.noun(
        "tulip.n",
        &["tulip"],
        "a spring garden flower growing from a bulb with cup-shaped blooms",
        3,
        "flower.plant",
    );
    b.noun(
        "orchid.n",
        &["orchid"],
        "a plant with showy exotic flowers, often grown in pots in partial shade",
        3,
        "flower.plant",
    );
    b.noun(
        "iris.flower",
        &["iris", "flag"],
        "a garden plant with sword-shaped leaves and large flowers growing from a bulb",
        3,
        "flower.plant",
    );
    b.noun(
        "iris.eye",
        &["iris"],
        "the colored ring of muscle around the pupil of the eye",
        3,
        "body_part.n",
    );
    b.noun(
        "sunflower.n",
        &["sunflower"],
        "a tall plant with a very large yellow flower head that turns toward the sun's light",
        3,
        "flower.plant",
    );
    b.noun(
        "ivy.n",
        &["ivy"],
        "a woody climbing evergreen plant that covers walls in shade",
        3,
        "plant.organism",
    );
    b.noun(
        "columbine.flower",
        &["columbine", "aquilegia"],
        "a hardy perennial garden plant with spurred flowers that tolerates shade",
        2,
        "flower.plant",
    );
    b.noun(
        "anemone.flower",
        &["anemone", "windflower"],
        "a perennial garden plant with showy flowers that grows in light shade",
        2,
        "flower.plant",
    );
    b.noun(
        "marigold.n",
        &["marigold"],
        "a garden plant with bright yellow or orange flowers that loves full sun light",
        2,
        "flower.plant",
    );
    b.noun(
        "buttercup.n",
        &["buttercup", "crowfoot"],
        "a wild plant with bright shiny yellow cup-shaped flowers",
        2,
        "flower.plant",
    );
    b.noun(
        "primrose.n",
        &["primrose"],
        "a low perennial plant bearing pale yellow spring flowers in partial shade",
        2,
        "flower.plant",
    );
    b.noun(
        "gentian.n",
        &["gentian"],
        "a mountain plant with intense blue trumpet flowers for a sunny garden",
        1,
        "flower.plant",
    );

    // ---- growing conditions (the catalog's attribute tags) --------------------------
    b.noun(
        "zone.area",
        &["zone"],
        "an area or region distinguished from adjacent parts by a distinctive feature",
        10,
        "area.n",
    );
    b.noun(
        "zone.climate",
        &["zone", "climate zone", "hardiness zone"],
        "a geographic band defined by climate where certain plants are hardy enough to grow",
        4,
        "region.n",
    );
    b.noun(
        "zone.sports",
        &["zone", "zone defense"],
        "a defensive formation in which players guard areas rather than opponents",
        2,
        "action.n",
    );
    b.verb(
        "zone.v",
        &["zone", "district"],
        "regulate land use by dividing an area into zones",
        2,
        "act.deed",
    );
    b.noun(
        "shade.shadow",
        &["shade", "shadiness"],
        "the partial darkness where the sun's light is blocked, in which some plants grow best",
        8,
        "state.condition",
    );
    b.noun(
        "shade.lamp",
        &["shade", "lampshade"],
        "the screen fitted over a lamp to soften its light",
        3,
        "covering.artifact",
    );
    b.noun(
        "shade.nuance",
        &["shade", "nuance", "subtlety"],
        "a subtle difference in meaning or degree",
        4,
        "attribute.n",
    );
    b.noun(
        "shade.color",
        &["shade", "tint", "tone"],
        "a quality of a color produced by mixing with black, as a shade of green",
        5,
        "color.n",
    );
    b.noun(
        "soil.ground",
        &["soil", "dirt", "ground"],
        "the top layer of the earth in which plants root and grow in a garden",
        10,
        "material.n",
    );
    b.noun(
        "soil.stain",
        &["soil", "grime", "filth"],
        "the state of being unclean or dirty",
        2,
        "state.condition",
    );
    b.noun(
        "water.liquid",
        &["water"],
        "the clear liquid that plants absorb through roots and all organisms need to grow",
        40,
        "fluid.n",
    );
    b.noun(
        "water.body",
        &["water", "body of water"],
        "the part of the earth's surface covered by seas and lakes",
        15,
        "natural_object.n",
    );
    b.verb(
        "water.v",
        &["water", "irrigate"],
        "provide a plant or garden with water so it can grow",
        6,
        "act.deed",
    );
    b.noun(
        "sun.light",
        &["sun", "sunlight", "sunshine", "full sun"],
        "the bright light and warmth that the sun gives, which garden plants need to grow",
        12,
        "light.radiation",
    );
    b.noun(
        "garden.n",
        &["garden"],
        "a plot of ground where flowers, shrubs or vegetables are cultivated and grow",
        12,
        "plot.land",
    );
    b.verb(
        "garden.v",
        &["garden"],
        "work in a garden cultivating plants and flowers",
        3,
        "act.deed",
    );
    b.noun(
        "pot.container",
        &["pot", "flowerpot"],
        "a container in which a plant is grown with soil",
        6,
        "container.n",
    );
    b.noun(
        "pot.cooking",
        &["pot", "cooking pot"],
        "a deep metal vessel used for cooking food",
        5,
        "container.n",
    );
    b.noun(
        "pot.money",
        &["pot", "jackpot", "kitty"],
        "the cumulative amount of money bet in a game",
        2,
        "possession.n",
    );
    b.noun(
        "nursery.plants",
        &["nursery", "garden nursery"],
        "a place where young plants and shrubs are grown for sale or transplanting",
        3,
        "building.n",
    );
    b.noun(
        "nursery.room",
        &["nursery"],
        "a room in a house set apart for a baby or young children",
        3,
        "structure.construction",
    );
    b.noun(
        "bloom.flower",
        &["bloom", "blossom", "flowering"],
        "the period or state of a plant producing flowers",
        4,
        "time_period.n",
    );
    b.verb(
        "bloom.v",
        &["bloom", "blossom", "flower"],
        "produce flowers, as a plant does in spring",
        4,
        "act.deed",
    );
    b.adjective(
        "hardy.a",
        &["hardy", "stalwart", "sturdy"],
        "able to survive under unfavorable growing conditions, as a hardy garden plant",
        3,
    );
    b.adjective(
        "annual.plant",
        &["annual", "one-year"],
        "of a plant: completing its life cycle within a single growing season",
        3,
    );
    b.noun(
        "annual.publication",
        &["annual", "yearly publication", "yearbook"],
        "a publication that appears once a year",
        2,
        "publication.n",
    );
    b.adjective(
        "perennial.a",
        &["perennial"],
        "of a plant: living and growing for several years",
        3,
    );
    b.adjective(
        "botanical.a",
        &["botanical", "botanic"],
        "of or relating to plants or the scientific study of plants",
        3,
    );
    b.noun(
        "botanical_name.n",
        &["botanical name", "scientific name", "latin name"],
        "the formal latin name by which botanists identify a plant species",
        2,
        "name.label",
    );
    b.noun("common_name.n", &["common name", "common", "vernacular name"], "the everyday name by which a plant is commonly known in a garden catalog, as opposed to its botanical name", 2, "name.label");
    b.noun(
        "botany.n",
        &["botany", "phytology"],
        "the branch of biology that studies plants and how they grow",
        3,
        "cognition.n",
    );
    b.noun(
        "species.n",
        &["species"],
        "the taxonomic group of organisms below a genus whose members can interbreed",
        8,
        "group.n",
    );
    b.noun(
        "genus.n",
        &["genus"],
        "the taxonomic group of related species of plants or animals",
        4,
        "group.n",
    );
    b.noun(
        "bee.n",
        &["bee"],
        "a winged insect that collects nectar and pollen from flowers",
        6,
        "animal.n",
    );
    b.noun(
        "butterfly.insect",
        &["butterfly"],
        "an insect with large colorful wings that visits garden flowers",
        4,
        "animal.n",
    );
    b.noun(
        "butterfly.stroke",
        &["butterfly", "butterfly stroke"],
        "a swimming stroke with both arms lifted together",
        1,
        "action.n",
    );
    b.noun(
        "spring.season",
        &["spring", "springtime"],
        "the season of growth when plants bloom after winter",
        12,
        "season.n",
    );
    b.noun(
        "spring.device",
        &["spring"],
        "a coiled metal device that returns to shape after being compressed",
        4,
        "device.n",
    );
    b.noun(
        "spring.water",
        &["spring", "fountain", "natural spring"],
        "a natural flow of ground water emerging from the earth",
        4,
        "stream.n",
    );
    b.verb(
        "spring.v",
        &["spring", "leap", "bound"],
        "move forward by leaps and bounds",
        4,
        "act.deed",
    );
    b.noun(
        "season.n",
        &["season"],
        "one of the four natural divisions of the year: spring, summer, fall and winter",
        15,
        "time_period.n",
    );
    b.noun(
        "summer.n",
        &["summer", "summertime"],
        "the warmest season of the year, when garden plants grow strongly",
        12,
        "season.n",
    );
    b.noun(
        "winter.n",
        &["winter", "wintertime"],
        "the coldest season of the year, when most plants stop growing",
        12,
        "season.n",
    );
    b.noun(
        "fall.season",
        &["fall", "autumn"],
        "the season between summer and winter when leaves fall",
        8,
        "season.n",
    );
    b.noun(
        "fall.drop",
        &["fall", "spill", "tumble"],
        "the sudden event of losing balance and dropping downward",
        6,
        "happening.n",
    );
    b.verb(
        "fall.v",
        &["fall", "descend"],
        "move downward under the force of gravity",
        15,
        "act.deed",
    );
}
