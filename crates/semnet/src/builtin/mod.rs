//! **MiniWordNet**: the built-in reference semantic network.
//!
//! The paper disambiguates against WordNet 2.1. Princeton's database files
//! cannot be redistributed inside this crate, so MiniWordNet re-creates, by
//! hand, the part of WordNet the evaluation actually touches:
//!
//! * a WordNet-style **upper ontology** (entity → physical entity /
//!   abstraction → …) giving every concept a taxonomy depth and a lowest
//!   common subsumer (needed by edge- and node-based similarity),
//! * the **domain vocabularies** of the ten evaluation datasets
//!   (Table 3 of the paper): films, theater/Shakespeare, retail products,
//!   bibliographic records, music catalogs, food menus, plant catalogs,
//!   personnel records, and clubs,
//! * the **polysemy anchors** the paper's examples rely on: *head* with 33
//!   senses (WordNet 2.1's maximum polysemy, used to normalize Proposition
//!   1), *state* with 8 senses (the `personnel` example of Section 4.2),
//!   *star*, *cast*, *picture*, *play*, *line*, and the ambiguous proper
//!   names *Kelly* (Grace / Gene / Emmett) and *Stewart* (James / Jackie /
//!   Martha) from Figure 1,
//! * Brown-corpus-style **concept frequencies** (Figure 2) so the weighted
//!   network `S̄N` supports information-content similarity,
//! * glosses written with deliberate lexical overlap inside each domain so
//!   gloss-based (Lesk-style) similarity is informative.

mod commerce;
mod food;
mod general;
mod geography;
mod movies;
mod music;
mod organization;
mod people;
mod plants;
mod polysemy;
mod publishing;
mod theater;
mod upper;

use std::sync::OnceLock;

use crate::builder::NetworkBuilder;
use crate::network::SemanticNetwork;

/// Builds a fresh copy of the MiniWordNet network.
///
/// Most callers should use [`mini_wordnet`], which caches a shared
/// instance.
pub fn build_mini_wordnet() -> SemanticNetwork {
    let mut b = NetworkBuilder::new();
    upper::register(&mut b);
    people::register(&mut b);
    geography::register(&mut b);
    polysemy::register(&mut b);
    movies::register(&mut b);
    theater::register(&mut b);
    theater::register_extra_senses(&mut b);
    commerce::register(&mut b);
    publishing::register(&mut b);
    music::register(&mut b);
    food::register(&mut b);
    plants::register(&mut b);
    organization::register(&mut b);
    general::register(&mut b);
    b.build()
        .expect("MiniWordNet must be internally consistent")
}

/// The shared MiniWordNet instance (built once, on first use).
pub fn mini_wordnet() -> &'static SemanticNetwork {
    static NET: OnceLock<SemanticNetwork> = OnceLock::new();
    NET.get_or_init(build_mini_wordnet)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_successfully() {
        let sn = mini_wordnet();
        assert!(
            sn.len() > 400,
            "expected a substantial network, got {}",
            sn.len()
        );
    }

    #[test]
    fn head_has_maximum_polysemy_33() {
        // Proposition 1: Max(senses(SN)) = 33 in WordNet 2.1, for "head".
        let sn = mini_wordnet();
        assert_eq!(sn.polysemy("head"), 33);
        assert_eq!(sn.max_polysemy(), 33);
    }

    #[test]
    fn state_has_8_senses() {
        // Section 4.2: "word 'state' has 8 different meanings".
        let sn = mini_wordnet();
        assert_eq!(sn.polysemy("state"), 8);
    }

    #[test]
    fn figure1_vocabulary_present() {
        let sn = mini_wordnet();
        for word in [
            "kelly", "stewart", "star", "cast", "picture", "film", "director", "plot", "genre",
        ] {
            assert!(sn.has_word(word), "missing {word:?}");
        }
        assert_eq!(sn.polysemy("kelly"), 3, "Kelly: Grace, Gene, Emmett");
        assert_eq!(sn.polysemy("stewart"), 3);
        assert!(sn.polysemy("star") >= 5);
        assert!(sn.polysemy("cast") >= 5);
    }

    #[test]
    fn every_concept_reaches_a_root() {
        // The taxonomy must be connected enough for LCS-based similarity:
        // every noun concept has a finite depth.
        let sn = mini_wordnet();
        let orphans: Vec<_> = sn
            .all_concepts()
            .filter(|&c| sn.depth(c) == u32::MAX && sn.concept(c).pos == crate::PartOfSpeech::Noun)
            .map(|c| sn.concept(c).key.clone())
            .collect();
        assert!(orphans.is_empty(), "orphan noun concepts: {orphans:?}");
    }

    #[test]
    fn glosses_are_nonempty() {
        let sn = mini_wordnet();
        for c in sn.all_concepts() {
            assert!(
                !sn.concept(c).gloss.trim().is_empty(),
                "empty gloss on {}",
                sn.concept(c).key
            );
        }
    }

    #[test]
    fn frequencies_are_plausible() {
        let sn = mini_wordnet();
        assert!(sn.total_frequency() > 1000);
        // First sense of "state" should be a frequent one.
        let first = sn.senses("state")[0];
        assert!(sn.frequency(first) >= 20);
    }

    #[test]
    fn text_format_roundtrip_of_full_network() {
        let sn = build_mini_wordnet();
        let text = crate::format::to_text(&sn);
        let sn2 = crate::format::from_text(&text).unwrap();
        assert_eq!(sn.len(), sn2.len());
        assert_eq!(sn.max_polysemy(), sn2.max_polysemy());
        assert_eq!(sn.total_frequency(), sn2.total_frequency());
        for id in sn.all_concepts() {
            let key = &sn.concept(id).key;
            let id2 = sn2.by_key(key).unwrap();
            assert_eq!(
                sn.edges(id).len(),
                sn2.edges(id2).len(),
                "edge count differs on {key}"
            );
            assert_eq!(sn.depth(id), sn2.depth(id2), "depth differs on {key}");
        }
    }

    #[test]
    fn domain_vocabularies_covered() {
        let sn = mini_wordnet();
        // One probe word per evaluation dataset.
        let probes = [
            ("play", "Shakespeare"),
            ("product", "Amazon"),
            ("proceedings", "SIGMOD"),
            ("movie", "IMDB"),
            ("publisher", "Niagara bib"),
            ("artist", "CD catalog"),
            ("menu", "food menu"),
            ("botanical", "plant catalog"),
            ("personnel", "personnel"),
            ("club", "club"),
        ];
        for (word, dataset) in probes {
            assert!(
                sn.has_word(word),
                "dataset {dataset} probe word {word:?} missing"
            );
        }
    }

    #[test]
    fn shared_instance_is_cached() {
        let a: *const SemanticNetwork = mini_wordnet();
        let b: *const SemanticNetwork = mini_wordnet();
        assert_eq!(a, b);
    }
}
