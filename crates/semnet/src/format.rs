//! A line-oriented text format for semantic networks, so users can export a
//! real WordNet (or any other knowledge base) and load it in place of the
//! built-in MiniWordNet.
//!
//! ```text
//! # comment
//! concept <key> | <pos> | <freq> | lemma1, lemma2 | <gloss>
//! rel <from-key> <relation> <to-key>
//! ```
//!
//! Relations use the names of [`RelationKind::name`]; inverse edges must
//! not be listed (they are inserted automatically on load).

use crate::builder::{BuildError, NetworkBuilder};
use crate::model::{PartOfSpeech, RelationKind};
use crate::network::SemanticNetwork;

/// Errors raised when reading the text format.
#[derive(Debug)]
pub enum FormatError {
    /// A syntactic problem at the given 1-based line.
    Syntax {
        /// Line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The parsed network failed validation.
    Build(BuildError),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Syntax { line, message } => write!(f, "line {line}: {message}"),
            Self::Build(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Serializes a network to the text format. Only the canonical direction of
/// each symmetric pair is written (the one with the smaller source id, and
/// for is-a/part-of/member-of the upward/outward direction).
pub fn to_text(sn: &SemanticNetwork) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "# xsdf semantic network: {} concepts", sn.len()).unwrap();
    for id in sn.all_concepts() {
        let c = sn.concept(id);
        writeln!(
            out,
            "concept {} | {} | {} | {} | {}",
            c.key,
            c.pos.code(),
            c.frequency,
            c.lemmas.join(", "),
            c.gloss.replace('\n', " "),
        )
        .unwrap();
    }
    for id in sn.all_concepts() {
        for &(kind, to) in sn.edges(id) {
            if is_canonical(kind, id.0, to.0) {
                writeln!(
                    out,
                    "rel {} {} {}",
                    sn.concept(id).key,
                    kind.name(),
                    sn.concept(to).key
                )
                .unwrap();
            }
        }
    }
    out
}

/// Picks one direction of each edge pair for serialization.
fn is_canonical(kind: RelationKind, from: u32, to: u32) -> bool {
    match kind {
        // Directed pairs: write the "source" direction only.
        RelationKind::Hypernym
        | RelationKind::InstanceHypernym
        | RelationKind::PartOf
        | RelationKind::MemberOf
        | RelationKind::Attribute
        | RelationKind::DerivedFrom => true,
        RelationKind::Hyponym
        | RelationKind::InstanceHyponym
        | RelationKind::HasPart
        | RelationKind::HasMember => false,
        // Symmetric kinds: write the smaller-id direction.
        RelationKind::Antonym | RelationKind::SimilarTo => from < to,
    }
}

/// Parses the text format into a semantic network.
pub fn from_text(text: &str) -> Result<SemanticNetwork, FormatError> {
    let mut builder = NetworkBuilder::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("concept ") {
            let parts: Vec<&str> = rest.splitn(5, '|').map(str::trim).collect();
            if parts.len() != 5 {
                return Err(FormatError::Syntax {
                    line: line_no,
                    message: "expected `concept key | pos | freq | lemmas | gloss`".into(),
                });
            }
            let pos = parts[1]
                .chars()
                .next()
                .and_then(PartOfSpeech::from_code)
                .ok_or_else(|| FormatError::Syntax {
                    line: line_no,
                    message: format!("bad part of speech {:?}", parts[1]),
                })?;
            let freq: u32 = parts[2].parse().map_err(|_| FormatError::Syntax {
                line: line_no,
                message: format!("bad frequency {:?}", parts[2]),
            })?;
            let lemmas: Vec<&str> = parts[3]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            builder.concept(parts[0], &lemmas, parts[4], freq, pos);
        } else if let Some(rest) = line.strip_prefix("rel ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 {
                return Err(FormatError::Syntax {
                    line: line_no,
                    message: "expected `rel from relation to`".into(),
                });
            }
            let kind = RelationKind::from_name(parts[1]).ok_or_else(|| FormatError::Syntax {
                line: line_no,
                message: format!("unknown relation {:?}", parts[1]),
            })?;
            builder.relate(parts[0], kind, parts[2]);
        } else {
            return Err(FormatError::Syntax {
                line: line_no,
                message: format!("unrecognized directive: {line:?}"),
            });
        }
    }
    builder.build().map_err(FormatError::Build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConceptId;

    const SAMPLE: &str = "\
# tiny network
concept entity.n | n | 100 | entity | that which exists
concept person.n | n | 50 | person, individual | a human being
concept actor.n | n | 10 | actor, histrion | a theatrical performer
rel person.n isa entity.n
rel actor.n isa person.n
";

    #[test]
    fn parse_sample() {
        let sn = from_text(SAMPLE).unwrap();
        assert_eq!(sn.len(), 3);
        assert_eq!(sn.senses("individual").len(), 1);
        let actor = sn.by_key("actor.n").unwrap();
        assert_eq!(sn.depth(actor), 2);
        assert_eq!(sn.concept(actor).gloss, "a theatrical performer");
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let sn = from_text(SAMPLE).unwrap();
        let text = to_text(&sn);
        let sn2 = from_text(&text).unwrap();
        assert_eq!(sn.len(), sn2.len());
        for id in sn.all_concepts() {
            let c1 = sn.concept(id);
            let id2 = sn2.by_key(&c1.key).unwrap();
            let c2 = sn2.concept(id2);
            assert_eq!(c1.lemmas, c2.lemmas);
            assert_eq!(c1.gloss, c2.gloss);
            assert_eq!(c1.frequency, c2.frequency);
            assert_eq!(c1.pos, c2.pos);
            assert_eq!(sn.edges(id).len(), sn2.edges(id2).len());
        }
    }

    #[test]
    fn bad_pos_rejected() {
        let err = from_text("concept a | z | 1 | a | gloss").unwrap_err();
        assert!(matches!(err, FormatError::Syntax { line: 1, .. }));
    }

    #[test]
    fn bad_freq_rejected() {
        let err = from_text("concept a | n | many | a | gloss").unwrap_err();
        assert!(matches!(err, FormatError::Syntax { .. }));
    }

    #[test]
    fn unknown_relation_rejected() {
        let err = from_text("concept a | n | 1 | a | g\nconcept b | n | 1 | b | g\nrel a loves b")
            .unwrap_err();
        assert!(matches!(err, FormatError::Syntax { line: 3, .. }));
    }

    #[test]
    fn dangling_relation_is_build_error() {
        let err = from_text("concept a | n | 1 | a | g\nrel a isa ghost").unwrap_err();
        assert!(matches!(err, FormatError::Build(_)));
    }

    #[test]
    fn unrecognized_directive_rejected() {
        let err = from_text("banana split").unwrap_err();
        assert!(matches!(err, FormatError::Syntax { line: 1, .. }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let sn = from_text("\n# hi\n\nconcept a | n | 1 | a | g\n").unwrap();
        assert_eq!(sn.len(), 1);
        assert_eq!(sn.concept(ConceptId(0)).key, "a");
    }

    #[test]
    fn gloss_may_contain_pipes_free_text() {
        // splitn(5) means the gloss keeps everything after the 4th pipe.
        let sn = from_text("concept a | n | 1 | a | gloss with | pipe").unwrap();
        assert_eq!(sn.concept(ConceptId(0)).gloss, "gloss with | pipe");
    }
}
