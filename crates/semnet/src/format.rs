//! A line-oriented text format for semantic networks, so users can export a
//! real WordNet (or any other knowledge base) and load it in place of the
//! built-in MiniWordNet.
//!
//! ```text
//! # comment
//! concept <key> | <pos> | <freq> | lemma1, lemma2 | <gloss>
//! rel <from-key> <relation> <to-key>
//! ```
//!
//! Relations use the names of [`RelationKind::name`]; inverse edges must
//! not be listed (they are inserted automatically on load).
//!
//! ## Escaping
//!
//! Field separators and whitespace that the parser would otherwise eat are
//! backslash-escaped, making `to_text → from_text` lossless: `\\` `\|` `\,`
//! plus `\n` `\r` `\t` for literal newline/CR/tab, and `\s` for a space.
//! Keys escape *every* space (`rel` lines are whitespace-split); lemma and
//! gloss fields escape only boundary spaces, so interior spaces stay
//! readable while the parser's field trim can no longer mutate content.
//! Unescaped `|` after the fourth separator is tolerated and kept verbatim
//! in the gloss (old exports relied on this). Unknown escapes and trailing
//! backslashes are syntax errors. One documented gap: non-space Unicode
//! whitespace at a field boundary is trimmed on read.

use std::collections::{HashMap, HashSet};

use crate::builder::{BuildError, NetworkBuilder};
use crate::model::{PartOfSpeech, RelationKind};
use crate::network::SemanticNetwork;

/// Errors raised when reading the text format.
#[derive(Debug)]
pub enum FormatError {
    /// A syntactic problem at the given 1-based line.
    Syntax {
        /// Line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A `concept` line redefines a key an earlier line already defined.
    DuplicateConcept {
        /// Line number of the *second* definition.
        line: usize,
        /// The redefined key.
        key: String,
    },
    /// A `rel` line repeats an earlier relation — either verbatim or as
    /// the inverse direction (which the loader inserts automatically).
    DuplicateRelation {
        /// Line number of the repeated relation.
        line: usize,
        /// The repeated relation, as written.
        relation: String,
    },
    /// The parsed network failed validation.
    Build(BuildError),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Syntax { line, message } => write!(f, "line {line}: {message}"),
            Self::DuplicateConcept { line, key } => {
                write!(f, "line {line}: duplicate concept key {key:?}")
            }
            Self::DuplicateRelation { line, relation } => write!(
                f,
                "line {line}: duplicate relation `{relation}` (inverse directions count)"
            ),
            Self::Build(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Escapes one character if it is a format metacharacter; pushes it
/// verbatim otherwise. `escape_space` additionally rewrites `' '` → `\s`.
fn push_escaped(out: &mut String, c: char, escape_space: bool) {
    match c {
        '\\' => out.push_str("\\\\"),
        '|' => out.push_str("\\|"),
        ',' => out.push_str("\\,"),
        '\n' => out.push_str("\\n"),
        '\r' => out.push_str("\\r"),
        '\t' => out.push_str("\\t"),
        ' ' if escape_space => out.push_str("\\s"),
        _ => out.push(c),
    }
}

/// Escapes a concept key. Keys appear in whitespace-split `rel` lines, so
/// every space is escaped, not just boundary ones.
fn escape_key(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        push_escaped(&mut out, c, true);
    }
    out
}

/// Escapes a lemma or gloss field: metacharacters everywhere, spaces only
/// at the boundaries (interior spaces survive the parser's trim as-is).
fn escape_field(s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    let leading = chars.iter().take_while(|&&c| c == ' ').count();
    let trailing = chars.iter().rev().take_while(|&&c| c == ' ').count();
    let mut out = String::with_capacity(s.len());
    for (i, &c) in chars.iter().enumerate() {
        let boundary = i < leading || i >= chars.len() - trailing;
        push_escaped(&mut out, c, boundary);
    }
    out
}

/// Reverses [`escape_key`]/[`escape_field`].
fn unescape(s: &str, line: usize) -> Result<String, FormatError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('|') => out.push('|'),
            Some(',') => out.push(','),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('s') => out.push(' '),
            Some(other) => {
                return Err(FormatError::Syntax {
                    line,
                    message: format!("unknown escape `\\{other}`"),
                })
            }
            None => {
                return Err(FormatError::Syntax {
                    line,
                    message: "trailing backslash".into(),
                })
            }
        }
    }
    Ok(out)
}

/// Splits on unescaped occurrences of `sep`, producing at most `max`
/// parts (the final part keeps any further separators verbatim — glosses
/// may contain free-text `|`). Parts are still escaped.
fn split_unescaped(s: &str, sep: char, max: usize) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == sep && parts.len() + 1 < max {
            parts.push(&s[start..i]);
            start = i + sep.len_utf8();
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Serializes a network to the text format. Only the canonical direction of
/// each symmetric pair is written (the one with the smaller source id, and
/// for is-a/part-of/member-of the upward/outward direction). The output
/// reloads losslessly via [`from_text`]: metacharacters in keys, lemmas,
/// and glosses are escaped rather than mutated.
pub fn to_text(sn: &SemanticNetwork) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "# xsdf semantic network: {} concepts", sn.len()).unwrap();
    for id in sn.all_concepts() {
        let c = sn.concept(id);
        let lemmas: Vec<String> = c.lemmas.iter().map(|l| escape_field(l)).collect();
        writeln!(
            out,
            "concept {} | {} | {} | {} | {}",
            escape_key(&c.key),
            c.pos.code(),
            c.frequency,
            lemmas.join(", "),
            escape_field(&c.gloss),
        )
        .unwrap();
    }
    for id in sn.all_concepts() {
        for &(kind, to) in sn.edges(id) {
            if is_canonical(kind, id.0, to.0) {
                writeln!(
                    out,
                    "rel {} {} {}",
                    escape_key(&sn.concept(id).key),
                    kind.name(),
                    escape_key(&sn.concept(to).key)
                )
                .unwrap();
            }
        }
    }
    out
}

/// Picks one direction of each edge pair for serialization.
fn is_canonical(kind: RelationKind, from: u32, to: u32) -> bool {
    match kind {
        // Directed pairs: write the "source" direction only.
        RelationKind::Hypernym
        | RelationKind::InstanceHypernym
        | RelationKind::PartOf
        | RelationKind::MemberOf => true,
        RelationKind::Hyponym
        | RelationKind::InstanceHyponym
        | RelationKind::HasPart
        | RelationKind::HasMember => false,
        // Self-inverse kinds are stored in both directions; write the
        // smaller-id one only (`<=` keeps self-loops serializable).
        RelationKind::Antonym
        | RelationKind::SimilarTo
        | RelationKind::Attribute
        | RelationKind::DerivedFrom => from <= to,
    }
}

/// One direction-independent identity per relation: a relation and its
/// automatic inverse describe the same edge pair, so both normalize to the
/// lexicographically smaller rendering before duplicate detection.
fn canonical_relation(from: &str, kind: RelationKind, to: &str) -> String {
    let forward = format!("{from}\u{0}{}\u{0}{to}", kind.name());
    let backward = format!("{to}\u{0}{}\u{0}{from}", kind.inverse().name());
    forward.min(backward)
}

/// Parses the text format into a semantic network. Duplicate `concept`
/// keys and duplicate `rel` lines (including a relation restated as its
/// inverse) are reported with their line number instead of being silently
/// last-write-wins'd or double-inserted.
pub fn from_text(text: &str) -> Result<SemanticNetwork, FormatError> {
    let mut builder = NetworkBuilder::new();
    let mut seen_keys: HashMap<String, usize> = HashMap::new();
    let mut seen_rels: HashSet<String> = HashSet::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("concept ") {
            let parts: Vec<&str> = split_unescaped(rest, '|', 5)
                .into_iter()
                .map(str::trim)
                .collect();
            if parts.len() != 5 {
                return Err(FormatError::Syntax {
                    line: line_no,
                    message: "expected `concept key | pos | freq | lemmas | gloss`".into(),
                });
            }
            let key = unescape(parts[0], line_no)?;
            if seen_keys.insert(key.clone(), line_no).is_some() {
                return Err(FormatError::DuplicateConcept { line: line_no, key });
            }
            let pos = parts[1]
                .chars()
                .next()
                .and_then(PartOfSpeech::from_code)
                .ok_or_else(|| FormatError::Syntax {
                    line: line_no,
                    message: format!("bad part of speech {:?}", parts[1]),
                })?;
            let freq: u32 = parts[2].parse().map_err(|_| FormatError::Syntax {
                line: line_no,
                message: format!("bad frequency {:?}", parts[2]),
            })?;
            let mut lemmas = Vec::new();
            for lemma in split_unescaped(parts[3], ',', usize::MAX) {
                let lemma = unescape(lemma.trim(), line_no)?;
                if !lemma.is_empty() {
                    lemmas.push(lemma);
                }
            }
            let lemma_refs: Vec<&str> = lemmas.iter().map(String::as_str).collect();
            let gloss = unescape(parts[4], line_no)?;
            builder.concept(&key, &lemma_refs, &gloss, freq, pos);
        } else if let Some(rest) = line.strip_prefix("rel ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 {
                return Err(FormatError::Syntax {
                    line: line_no,
                    message: "expected `rel from relation to`".into(),
                });
            }
            let kind = RelationKind::from_name(parts[1]).ok_or_else(|| FormatError::Syntax {
                line: line_no,
                message: format!("unknown relation {:?}", parts[1]),
            })?;
            let from = unescape(parts[0], line_no)?;
            let to = unescape(parts[2], line_no)?;
            if !seen_rels.insert(canonical_relation(&from, kind, &to)) {
                return Err(FormatError::DuplicateRelation {
                    line: line_no,
                    relation: format!("{from} {} {to}", kind.name()),
                });
            }
            builder.relate(&from, kind, &to);
        } else {
            return Err(FormatError::Syntax {
                line: line_no,
                message: format!("unrecognized directive: {line:?}"),
            });
        }
    }
    builder.build().map_err(FormatError::Build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConceptId;

    const SAMPLE: &str = "\
# tiny network
concept entity.n | n | 100 | entity | that which exists
concept person.n | n | 50 | person, individual | a human being
concept actor.n | n | 10 | actor, histrion | a theatrical performer
rel person.n isa entity.n
rel actor.n isa person.n
";

    #[test]
    fn parse_sample() {
        let sn = from_text(SAMPLE).unwrap();
        assert_eq!(sn.len(), 3);
        assert_eq!(sn.senses("individual").len(), 1);
        let actor = sn.by_key("actor.n").unwrap();
        assert_eq!(sn.depth(actor), 2);
        assert_eq!(sn.concept(actor).gloss, "a theatrical performer");
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let sn = from_text(SAMPLE).unwrap();
        let text = to_text(&sn);
        let sn2 = from_text(&text).unwrap();
        assert_eq!(sn.len(), sn2.len());
        for id in sn.all_concepts() {
            let c1 = sn.concept(id);
            let id2 = sn2.by_key(&c1.key).unwrap();
            let c2 = sn2.concept(id2);
            assert_eq!(c1.lemmas, c2.lemmas);
            assert_eq!(c1.gloss, c2.gloss);
            assert_eq!(c1.frequency, c2.frequency);
            assert_eq!(c1.pos, c2.pos);
            assert_eq!(sn.edges(id).len(), sn2.edges(id2).len());
        }
    }

    /// Round-trips a single-concept network and returns the reloaded copy.
    fn roundtrip_one(key: &str, lemmas: &[&str], gloss: &str) -> SemanticNetwork {
        let mut b = NetworkBuilder::new();
        b.concept(key, lemmas, gloss, 1, PartOfSpeech::Noun);
        let sn = b.build().unwrap();
        from_text(&to_text(&sn)).unwrap()
    }

    #[test]
    fn lemma_with_comma_does_not_split() {
        let sn = roundtrip_one("a.n", &["earth, the planet", "world"], "g");
        let c = sn.concept(sn.by_key("a.n").unwrap());
        assert_eq!(c.lemmas, vec!["earth, the planet", "world"]);
    }

    #[test]
    fn pipes_in_fields_do_not_shift() {
        let sn = roundtrip_one("odd|key", &["pipe|lemma"], "a|b");
        let c = sn.concept(sn.by_key("odd|key").unwrap());
        assert_eq!(c.lemmas, vec!["pipe|lemma"]);
        assert_eq!(c.gloss, "a|b");
        assert_eq!(c.frequency, 1);
    }

    #[test]
    fn gloss_newlines_and_boundary_spaces_survive() {
        let sn = roundtrip_one("a.n", &["a"], "  two\nlines\twith tab  ");
        let c = sn.concept(sn.by_key("a.n").unwrap());
        assert_eq!(c.gloss, "  two\nlines\twith tab  ");
    }

    #[test]
    fn keys_with_spaces_survive_rel_lines() {
        let mut b = NetworkBuilder::new();
        b.concept("new york.n", &["new york"], "a city", 2, PartOfSpeech::Noun);
        b.concept("city.n", &["city"], "a settlement", 5, PartOfSpeech::Noun);
        b.relate("new york.n", RelationKind::InstanceHypernym, "city.n");
        let sn = b.build().unwrap();
        let sn2 = from_text(&to_text(&sn)).unwrap();
        let ny = sn2.by_key("new york.n").unwrap();
        assert_eq!(sn2.edges(ny).len(), 1);
    }

    #[test]
    fn duplicate_concept_key_rejected_with_line() {
        let err = from_text("concept a | n | 1 | a | g\nconcept a | n | 2 | a | g").unwrap_err();
        match err {
            FormatError::DuplicateConcept { line, key } => {
                assert_eq!(line, 2);
                assert_eq!(key, "a");
            }
            other => panic!("expected duplicate-concept error, got {other}"),
        }
    }

    #[test]
    fn duplicate_rel_rejected_with_line() {
        let text = "concept a | n | 1 | a | g\nconcept b | n | 1 | b | g\n\
                    rel a isa b\nrel a isa b";
        let err = from_text(text).unwrap_err();
        assert!(matches!(
            err,
            FormatError::DuplicateRelation { line: 4, .. }
        ));
    }

    #[test]
    fn inverse_restatement_rejected_as_duplicate() {
        // `b has-kind a` restates `a isa b` (the loader inserts inverses).
        let text = "concept a | n | 1 | a | g\nconcept b | n | 1 | b | g\n\
                    rel a isa b\nrel b has-kind a";
        let err = from_text(text).unwrap_err();
        assert!(matches!(
            err,
            FormatError::DuplicateRelation { line: 4, .. }
        ));
    }

    #[test]
    fn symmetric_duplicate_rejected_both_directions() {
        let text = "concept a | n | 1 | a | g\nconcept b | n | 1 | b | g\n\
                    rel a antonym b\nrel b antonym a";
        let err = from_text(text).unwrap_err();
        assert!(matches!(
            err,
            FormatError::DuplicateRelation { line: 4, .. }
        ));
    }

    #[test]
    fn unknown_escape_rejected() {
        let err = from_text("concept a | n | 1 | a | bad \\x escape").unwrap_err();
        assert!(matches!(err, FormatError::Syntax { line: 1, .. }));
        let err = from_text("concept a | n | 1 | a | trailing\\").unwrap_err();
        assert!(matches!(err, FormatError::Syntax { line: 1, .. }));
    }

    #[test]
    fn bad_pos_rejected() {
        let err = from_text("concept a | z | 1 | a | gloss").unwrap_err();
        assert!(matches!(err, FormatError::Syntax { line: 1, .. }));
    }

    #[test]
    fn bad_freq_rejected() {
        let err = from_text("concept a | n | many | a | gloss").unwrap_err();
        assert!(matches!(err, FormatError::Syntax { .. }));
    }

    #[test]
    fn unknown_relation_rejected() {
        let err = from_text("concept a | n | 1 | a | g\nconcept b | n | 1 | b | g\nrel a loves b")
            .unwrap_err();
        assert!(matches!(err, FormatError::Syntax { line: 3, .. }));
    }

    #[test]
    fn dangling_relation_is_build_error() {
        let err = from_text("concept a | n | 1 | a | g\nrel a isa ghost").unwrap_err();
        assert!(matches!(err, FormatError::Build(_)));
    }

    #[test]
    fn unrecognized_directive_rejected() {
        let err = from_text("banana split").unwrap_err();
        assert!(matches!(err, FormatError::Syntax { line: 1, .. }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let sn = from_text("\n# hi\n\nconcept a | n | 1 | a | g\n").unwrap();
        assert_eq!(sn.len(), 1);
        assert_eq!(sn.concept(ConceptId(0)).key, "a");
    }

    #[test]
    fn gloss_may_contain_pipes_free_text() {
        // Only the first four unescaped pipes separate fields; the gloss
        // keeps everything after them (old exports relied on this).
        let sn = from_text("concept a | n | 1 | a | gloss with | pipe").unwrap();
        assert_eq!(sn.concept(ConceptId(0)).gloss, "gloss with | pipe");
    }
}
