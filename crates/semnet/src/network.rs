//! The [`SemanticNetwork`] container: concepts, typed edges, and the
//! word → senses index used for sense lookup (with stemming fallback).

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::artifacts::GlossArtifacts;
use crate::model::{Concept, ConceptId, Edge, RelationKind};

/// A semantic network `SN = (C, L, G, E, R, f, g)` (Definition 2), with
/// optional concept frequencies making it the weighted network `S̄N`.
///
/// Construct via [`crate::NetworkBuilder`] or load from the text
/// [`crate::format`].
#[derive(Debug, Clone)]
pub struct SemanticNetwork {
    pub(crate) concepts: Vec<Concept>,
    /// Outgoing typed edges per concept, parallel to `concepts`.
    pub(crate) adjacency: Vec<Vec<(RelationKind, ConceptId)>>,
    /// lemma (lowercase) → sense list, most frequent sense first.
    pub(crate) word_index: HashMap<String, Vec<ConceptId>>,
    /// key → concept.
    pub(crate) key_index: HashMap<String, ConceptId>,
    /// Minimal is-a depth of each concept (root concepts have depth 0);
    /// `u32::MAX` for concepts with no hypernym path to a root.
    pub(crate) depths: Vec<u32>,
    /// Cumulative frequency of each concept's subtree (own frequency plus
    /// all is-a descendants), for information-content measures.
    pub(crate) cumulative_freq: Vec<u64>,
    /// Sum of all concept frequencies (the corpus size proxy).
    pub(crate) total_freq: u64,
    /// Cached maximum polysemy over the word index.
    pub(crate) max_polysemy: usize,
    /// Lazily-built precomputation artifacts for the scoring hot path
    /// (interned gloss token sequences, neighbor sets). Built at most once
    /// per network; a pure function of `concepts` + `adjacency`, so clones
    /// carrying an already-built table stay consistent.
    pub(crate) artifacts: OnceLock<GlossArtifacts>,
}

impl SemanticNetwork {
    /// Number of concepts `|C|`.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// `true` if the network holds no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Access a concept by id.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    /// Looks up a concept by its stable key.
    pub fn by_key(&self, key: &str) -> Option<ConceptId> {
        self.key_index.get(key).copied()
    }

    /// The senses of a word or multi-word expression (lowercase lookup),
    /// most frequent first. Empty slice for unknown words.
    pub fn senses(&self, word: &str) -> &[ConceptId] {
        self.word_index.get(word).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sense lookup with normalization fallbacks: the word as given, its
    /// lowercase form, WordNet-morphy-style plural detachment, then
    /// `stem(word)` via the supplied stemmer.
    pub fn senses_normalized(&self, word: &str, stem: impl Fn(&str) -> String) -> &[ConceptId] {
        let direct = self.senses(word);
        if !direct.is_empty() {
            return direct;
        }
        let lower = word.to_lowercase();
        let lowered = self.senses(&lower);
        if !lowered.is_empty() {
            return lowered;
        }
        for variant in lingproc::pipeline::morphy_variants(&lower) {
            let senses = self.senses(&variant);
            if !senses.is_empty() {
                return senses;
            }
        }
        self.senses(&stem(&lower))
    }

    /// `true` if the word (or expression) has at least one sense — the
    /// lexicon predicate the pre-processing pipeline consumes.
    pub fn has_word(&self, word: &str) -> bool {
        !self.senses(word).is_empty()
    }

    /// The number of senses of a word; 0 for unknown words.
    pub fn polysemy(&self, word: &str) -> usize {
        self.senses(word).len()
    }

    /// `Max(senses(SN))`: the maximum polysemy of any word in the network
    /// (Proposition 1's normalizer; 33 in WordNet 2.1, for *head*).
    pub fn max_polysemy(&self) -> usize {
        self.max_polysemy
    }

    /// Outgoing typed edges of a concept.
    pub fn edges(&self, id: ConceptId) -> &[(RelationKind, ConceptId)] {
        &self.adjacency[id.index()]
    }

    /// Neighbors reachable through a specific relation kind.
    pub fn related(
        &self,
        id: ConceptId,
        kind: RelationKind,
    ) -> impl Iterator<Item = ConceptId> + '_ {
        self.adjacency[id.index()]
            .iter()
            .filter(move |(k, _)| *k == kind)
            .map(|&(_, c)| c)
    }

    /// Direct hypernyms (is-a parents, including instance-of).
    pub fn hypernyms(&self, id: ConceptId) -> impl Iterator<Item = ConceptId> + '_ {
        self.adjacency[id.index()]
            .iter()
            .filter(|(k, _)| k.is_upward())
            .map(|&(_, c)| c)
    }

    /// The minimal is-a depth of a concept (roots have depth 0).
    pub fn depth(&self, id: ConceptId) -> u32 {
        self.depths[id.index()]
    }

    /// The maximum finite taxonomy depth in the network.
    pub fn max_depth(&self) -> u32 {
        self.depths
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Raw corpus frequency of a concept.
    pub fn frequency(&self, id: ConceptId) -> u32 {
        self.concepts[id.index()].frequency
    }

    /// Cumulative frequency (the concept plus all is-a descendants), the
    /// `p(c)` numerator of Resnik/Lin information content.
    pub fn cumulative_frequency(&self, id: ConceptId) -> u64 {
        self.cumulative_freq[id.index()]
    }

    /// Sum of all concept frequencies.
    pub fn total_frequency(&self) -> u64 {
        self.total_freq
    }

    /// Information content `IC(c) = -ln(p(c))` with
    /// `p(c) = (cum_freq(c) + 1) / (total + |C|)` (add-one smoothed so every
    /// concept has finite IC).
    pub fn information_content(&self, id: ConceptId) -> f64 {
        let p = (self.cumulative_frequency(id) as f64 + 1.0)
            / (self.total_freq as f64 + self.concepts.len() as f64);
        -p.ln()
    }

    /// Iterates over all concept ids.
    pub fn all_concepts(&self) -> impl Iterator<Item = ConceptId> {
        (0..self.concepts.len() as u32).map(ConceptId)
    }

    /// Iterates over all edges (each stored direction once).
    pub fn all_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, out)| {
            out.iter().map(move |&(kind, to)| Edge {
                from: ConceptId(i as u32),
                kind,
                to,
            })
        })
    }

    /// All distinct words in the index (diagnostics / tests).
    pub fn vocabulary_size(&self) -> usize {
        self.word_index.len()
    }

    /// The precomputed gloss/neighbor artifact table, built on first use
    /// and shared by every subsequent caller (including concurrent batch
    /// workers — `OnceLock` serializes the single build).
    pub fn gloss_artifacts(&self) -> &GlossArtifacts {
        self.artifacts.get_or_init(|| GlossArtifacts::build(self))
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::NetworkBuilder;
    use crate::model::{PartOfSpeech, RelationKind};

    fn toy() -> crate::SemanticNetwork {
        let mut b = NetworkBuilder::new();
        b.concept(
            "entity.n",
            &["entity"],
            "that which exists",
            100,
            PartOfSpeech::Noun,
        );
        b.concept(
            "person.n",
            &["person", "individual"],
            "a human being",
            80,
            PartOfSpeech::Noun,
        );
        b.concept(
            "actor.n",
            &["actor"],
            "a theatrical performer",
            10,
            PartOfSpeech::Noun,
        );
        b.concept(
            "star.performer",
            &["star"],
            "an actor who plays a principal role",
            5,
            PartOfSpeech::Noun,
        );
        b.concept(
            "star.celestial",
            &["star", "sun"],
            "a hot ball of gas",
            20,
            PartOfSpeech::Noun,
        );
        b.relate("person.n", RelationKind::Hypernym, "entity.n");
        b.relate("actor.n", RelationKind::Hypernym, "person.n");
        b.relate("star.performer", RelationKind::Hypernym, "actor.n");
        b.relate("star.celestial", RelationKind::Hypernym, "entity.n");
        b.build().unwrap()
    }

    #[test]
    fn sense_lookup_sorted_by_frequency() {
        let sn = toy();
        let senses = sn.senses("star");
        assert_eq!(senses.len(), 2);
        // celestial (freq 20) before performer (freq 5).
        assert_eq!(sn.concept(senses[0]).key, "star.celestial");
        assert_eq!(sn.concept(senses[1]).key, "star.performer");
    }

    #[test]
    fn synonym_lemmas_indexed() {
        let sn = toy();
        assert_eq!(sn.senses("sun").len(), 1);
        assert_eq!(sn.senses("individual").len(), 1);
        assert!(sn.senses("unknown-word").is_empty());
    }

    #[test]
    fn polysemy_and_max() {
        let sn = toy();
        assert_eq!(sn.polysemy("star"), 2);
        assert_eq!(sn.polysemy("actor"), 1);
        assert_eq!(sn.max_polysemy(), 2);
    }

    #[test]
    fn normalized_lookup_falls_back() {
        let sn = toy();
        // Capitalized form resolves via lowercase.
        assert_eq!(sn.senses_normalized("Star", |w| w.to_string()).len(), 2);
        // "actors" resolves via the stemming callback.
        let senses = sn.senses_normalized("actors", |w| w.trim_end_matches('s').to_string());
        assert_eq!(senses.len(), 1);
    }

    #[test]
    fn depths_follow_taxonomy() {
        let sn = toy();
        let entity = sn.by_key("entity.n").unwrap();
        let star = sn.by_key("star.performer").unwrap();
        assert_eq!(sn.depth(entity), 0);
        assert_eq!(sn.depth(star), 3);
        assert_eq!(sn.max_depth(), 3);
    }

    #[test]
    fn inverse_edges_inserted() {
        let sn = toy();
        let person = sn.by_key("person.n").unwrap();
        let actor = sn.by_key("actor.n").unwrap();
        let hyponyms: Vec<_> = sn.related(person, RelationKind::Hyponym).collect();
        assert!(hyponyms.contains(&actor));
    }

    #[test]
    fn cumulative_frequency_accumulates_up() {
        let sn = toy();
        let entity = sn.by_key("entity.n").unwrap();
        let person = sn.by_key("person.n").unwrap();
        // person subtree: person(80) + actor(10) + star.performer(5).
        assert_eq!(sn.cumulative_frequency(person), 95);
        // entity: everything = 100+80+10+5+20.
        assert_eq!(sn.cumulative_frequency(entity), 215);
        assert_eq!(sn.total_frequency(), 215);
    }

    #[test]
    fn information_content_decreases_up_the_taxonomy() {
        let sn = toy();
        let entity = sn.by_key("entity.n").unwrap();
        let star = sn.by_key("star.performer").unwrap();
        assert!(sn.information_content(star) > sn.information_content(entity));
    }

    #[test]
    fn has_word_predicate() {
        let sn = toy();
        assert!(sn.has_word("star"));
        assert!(!sn.has_word("xyzzy"));
    }
}
